//! Web-Based Administration over the network-gateway deployment.
//!
//! The paper's point (§4.5, Figure 1): once MetaComm fronts the directory
//! with LTAP, *any* tool that speaks LDAP administers the telecom devices —
//! "for example, any LDAP enabled Web browser". Here the "browser" is a
//! scripted LDAP client talking BER/LDAPv3 over TCP to the served gateway.
//!
//! ```text
//! cargo run --example wba_admin            # run the canned admin script
//! cargo run --example wba_admin -- shell   # interactive admin shell
//! ```

use ldap::client::TcpDirectory;
use ldap::{Directory, Dn, Entry, Filter, Modification, Scope};
use metacomm::MetaCommBuilder;
use msgplat::MsgPlat;
use pbx::{DialPlan, Pbx};
use std::io::{BufRead, Write};

fn main() {
    let west = Pbx::new("pbx-west", DialPlan::with_prefix("9", 4));
    let mp = MsgPlat::new("mp");
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(west.store().clone(), "9???")
        .add_msgplat(mp.store().clone(), "*")
        .build()
        .expect("assemble");

    // §5.5 gateway deployment: LTAP served over TCP.
    let server = system.serve("127.0.0.1:0").expect("serve gateway");
    let addr = server.addr().to_string();
    println!("LTAP gateway serving LDAP on {addr}\n");

    let client = TcpDirectory::connect(&addr).expect("connect");

    let interactive = std::env::args().nth(1).as_deref() == Some("shell");
    if interactive {
        shell(&client, &system, &west, &mp);
        return;
    }

    // ---- canned administration session over the wire -------------------
    script(&client, &system, &west, &mp);
    system.shutdown();
}

fn script(client: &TcpDirectory, system: &metacomm::MetaComm, west: &Pbx, mp: &MsgPlat) {
    // 1. Create a person with a phone, exactly as an LDAP browser would.
    let dn = Dn::parse("cn=Jill Lu,o=Lucent").unwrap();
    let mut e = Entry::new(dn.clone());
    for (k, v) in [
        ("objectClass", "top"),
        ("objectClass", "person"),
        ("objectClass", "organizationalPerson"),
        ("objectClass", "definityUser"),
        ("objectClass", "messagingUser"),
        ("cn", "Jill Lu"),
        ("sn", "Lu"),
        ("definityExtension", "9500"),
        ("mpMailbox", "9500"),
        ("lastUpdater", "browser"),
    ] {
        e.add_value(k, v);
    }
    client.add(e).expect("LDAP add over TCP");
    system.settle();
    println!("> ldapadd cn=Jill Lu  (extension 9500, mailbox 9500)");
    println!("{}", west.craft("list stations").unwrap());
    println!("{}", mp.console("list subscribers").unwrap());

    // 2. Modify her coverage path — one LDAP modify, one device change.
    client
        .modify(
            &dn,
            &[
                Modification::set("definityCoveragePath", "7"),
                Modification::set("lastUpdater", "browser"),
            ],
        )
        .expect("LDAP modify");
    system.settle();
    println!("> ldapmodify definityCoveragePath=7");
    println!("{}", west.craft("display station 9500").unwrap());

    // 3. Search — reads bypass the Update Manager entirely.
    let hits = client
        .search(
            &Dn::parse("o=Lucent").unwrap(),
            Scope::Sub,
            &Filter::parse("(&(objectClass=person)(definityExtension>=9000))").unwrap(),
            &[
                "cn".into(),
                "definityExtension".into(),
                "mpMailboxId".into(),
            ],
            0,
        )
        .expect("LDAP search");
    println!("> ldapsearch '(definityExtension>=9000)'");
    for h in &hits {
        println!(
            "  {} ext={} mbid={}",
            h.first("cn").unwrap_or("?"),
            h.first("definityExtension").unwrap_or("-"),
            h.first("mpMailboxId").unwrap_or("-"),
        );
    }

    // 4. Delete — person removed from the directory AND both devices.
    client.delete(&dn).expect("LDAP delete");
    system.settle();
    println!("\n> ldapdelete cn=Jill Lu");
    println!(
        "station 9500 gone: {}; mailbox 9500 gone: {}",
        west.store().get("9500").is_none(),
        mp.store().get("9500").is_none(),
    );
}

/// A minimal interactive admin shell over the LDAP connection.
fn shell(client: &TcpDirectory, system: &metacomm::MetaComm, west: &Pbx, mp: &MsgPlat) {
    println!("commands: add <cn> <sn> <ext> | phone <cn> <number> | show <cn>");
    println!("          find <filter> | craft <ossi-cmd> | console <mp-cmd>");
    println!("          mappings | trace | quit");
    let stdin = std::io::stdin();
    loop {
        print!("wba> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        let parts: Vec<&str> = line.trim().splitn(3, ' ').collect();
        let result: Result<String, String> = match parts.as_slice() {
            ["quit"] | ["exit"] => return,
            ["add", cn, rest] => {
                let mut it = rest.split(' ');
                let sn = it.next().unwrap_or(cn);
                let ext = it.next().unwrap_or("9000");
                let mut e = Entry::new(Dn::parse(&format!("cn={cn},o=Lucent")).unwrap());
                for (k, v) in [
                    ("objectClass", "top"),
                    ("objectClass", "person"),
                    ("objectClass", "organizationalPerson"),
                    ("objectClass", "definityUser"),
                    ("cn", *cn),
                    ("sn", sn),
                    ("definityExtension", ext),
                ] {
                    e.add_value(k, v);
                }
                client
                    .add(e)
                    .map(|_| format!("added {cn} ext {ext}"))
                    .map_err(|e| e.to_string())
            }
            ["phone", cn, number] => client
                .modify(
                    &Dn::parse(&format!("cn={cn},o=Lucent")).unwrap(),
                    &[Modification::set("telephoneNumber", *number)],
                )
                .map(|_| "ok".to_string())
                .map_err(|e| e.to_string()),
            ["show", cn] | ["show", cn, _] => client
                .get(&Dn::parse(&format!("cn={cn},o=Lucent")).unwrap())
                .map(|e| {
                    e.map(|e| e.to_string())
                        .unwrap_or_else(|| "(no such person)".into())
                })
                .map_err(|e| e.to_string()),
            ["find", rest @ ..] => {
                let f = rest.join(" ");
                Filter::parse(&f)
                    .and_then(|f| {
                        client.search(&Dn::parse("o=Lucent").unwrap(), Scope::Sub, &f, &[], 0)
                    })
                    .map(|hits| {
                        hits.iter()
                            .map(|h| h.dn().to_string())
                            .collect::<Vec<_>>()
                            .join("\n")
                    })
                    .map_err(|e| e.to_string())
            }
            ["mappings"] | ["mappings", ..] => {
                Ok(lexpress::disasm::describe(system.engine().bundle()))
            }
            ["trace"] | ["trace", ..] => Ok(system
                .recent_traces()
                .iter()
                .rev()
                .take(10)
                .map(|t| {
                    let devices = t
                        .device_ops
                        .iter()
                        .map(|(name, kind, cond, applied)| {
                            format!(
                                "{name}:{kind}{}{}",
                                if *cond { "~" } else { "" },
                                if *applied { "" } else { "!" }
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" ");
                    format!(
                        "#{} [{}] {} derived={:?} devices=[{devices}] -> {}",
                        t.seq, t.origin, t.op, t.derived_attrs, t.outcome
                    )
                })
                .collect::<Vec<_>>()
                .join("\n")),
            ["craft", rest @ ..] => west.craft(&rest.join(" ")).map_err(|e| e.to_string()),
            ["console", rest @ ..] => mp.console(&rest.join(" ")).map_err(|e| e.to_string()),
            other => Err(format!("unknown command {other:?}")),
        };
        system.settle();
        match result {
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
