//! Disconnected operation and recovery (paper §4.4 / §5.1):
//!
//! "A device is synchronized with the directory … after the directory and
//! the device have temporarily become unable to communicate with each
//! other, and updates that should have been sent from one to the other
//! have been lost — this can occur due to process crash or network
//! problems."
//!
//! This example simulates a link outage, keeps administering the device
//! through its proprietary interface (the paper's availability argument:
//! "updates can still be made directly to the device even if the directory
//! becomes inaccessible"), injects the §5.1 UM-crash between a
//! ModifyRDN/Modify pair, and then shows resynchronization eliminating
//! every inconsistency.
//!
//! ```text
//! cargo run --example disconnection_recovery
//! ```

use metacomm::MetaCommBuilder;
use pbx::{Channel, DialPlan, Pbx, Record};

fn main() {
    println!("=== Disconnected operation and resynchronization ===\n");
    let switch = Pbx::new("pbx-west", DialPlan::with_prefix("9", 4));
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(switch.store().clone(), "9???")
        .build()
        .expect("assemble");
    let wba = system.wba();

    // Normal operation: three people, fully propagated.
    for (cn, sn, ext) in [
        ("John Doe", "Doe", "9100"),
        ("Pat Smith", "Smith", "9200"),
        ("Jill Lu", "Lu", "9300"),
    ] {
        wba.add_person_with_extension(cn, sn, ext, "2B").unwrap();
    }
    system.settle();
    println!("Steady state: 3 people in directory, 3 stations on switch.\n");

    // ---- The link goes down. -------------------------------------------
    // We model "notifications lost" by administering the device through
    // the Metacomm channel (which produces no DDU events) — the device
    // keeps working, the directory silently goes stale.
    println!("-- link down: craft keeps administering the switch --");
    switch
        .store()
        .change(
            "9100",
            Record::from_pairs([("Room", "4F-007")]),
            Channel::Metacomm, // lost notification
        )
        .unwrap();
    switch.store().remove("9300", Channel::Metacomm).unwrap(); // lost removal
    switch
        .store()
        .add(
            Record::from_pairs([
                ("Extension", "9400"),
                ("Name", "Dickens, Tim"),
                ("CoveragePath", "1"),
            ]),
            Channel::Metacomm, // lost add
        )
        .unwrap();
    println!("   changed 9100's room, removed 9300, added 9400 — all unseen.\n");

    // Directory is now stale on all three counts:
    let john = wba.person("John Doe").unwrap().unwrap();
    println!(
        "Directory says John's room = {:?} (device says {:?})",
        john.first("roomNumber").unwrap_or("-"),
        switch
            .store()
            .get("9100")
            .unwrap()
            .get("Room")
            .unwrap_or("-"),
    );
    println!(
        "Directory still shows Jill's extension: {}",
        wba.person("Jill Lu")
            .unwrap()
            .unwrap()
            .has_attr("definityExtension")
    );
    println!(
        "Directory knows Tim Dickens: {}\n",
        wba.person("Tim Dickens").unwrap().is_some()
    );

    // ---- Link restored: resynchronize (isolated under LTAP quiesce). ----
    let report = system.synchronize_device("pbx-west").expect("resync");
    println!("-- link restored: synchronize_device(pbx-west) --");
    println!(
        "   added={} repaired={} cleared={} unchanged={}\n",
        report.added, report.repaired, report.cleared, report.unchanged
    );

    let john = wba.person("John Doe").unwrap().unwrap();
    println!("John's room now: {:?}", john.first("roomNumber").unwrap());
    println!(
        "Jill's stale extension cleared: {}",
        !wba.person("Jill Lu")
            .unwrap()
            .unwrap()
            .has_attr("definityExtension")
    );
    println!(
        "Tim Dickens materialized: {}\n",
        wba.person("Tim Dickens").unwrap().is_some()
    );

    // ---- §5.1: crash between ModifyRDN and Modify. -----------------------
    println!("-- injecting UM crash between ModifyRDN and Modify (§5.1) --");
    system.inject_crash_between_pair();
    switch
        .craft(r#"change station 9200 name "Smith, Patricia" room 5A-100"#)
        .unwrap();
    system.settle();
    let renamed = wba
        .person("Patricia Smith")
        .unwrap()
        .expect("rename half applied");
    println!(
        "   entry renamed to Patricia Smith but room still {:?} — inconsistent for readers",
        renamed.first("roomNumber").unwrap()
    );
    println!("   (writers are blocked only while the lock is held; an error was logged)");
    for e in system.browse_errors().unwrap() {
        println!(
            "   error log: {}",
            e.first("metacommErrorText").unwrap_or("?")
        );
    }

    let report = system.synchronize_device("pbx-west").expect("resync 2");
    println!(
        "\n-- UM 'restarts' and resynchronizes: repaired={} --",
        report.repaired
    );
    let patricia = wba.person("Patricia Smith").unwrap().unwrap();
    println!(
        "Patricia's room now: {:?} — inconsistency eliminated.",
        patricia.first("roomNumber").unwrap()
    );
    system.shutdown();
    println!("\nDone.");
}
