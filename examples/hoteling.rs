//! Hoteling (paper §4.5): "shared workspaces that are reserved as needed" —
//! the application the paper cites as enabled by MetaComm's simplified
//! administration. An authorized program redirects a person's telephone
//! extension to the port in whichever room they reserve.
//!
//! ```text
//! cargo run --example hoteling
//! ```
//!
//! The hoteling service below is an ordinary LDAP application: it only
//! talks to the directory; MetaComm propagates every reservation to the
//! switch.

use ldap::{Directory, Filter, Scope};
use metacomm::{MetaComm, MetaCommBuilder, Wba};
use pbx::{DialPlan, Pbx};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A tiny hoteling service: rooms with ports, reservations by person.
struct Hoteling<'a> {
    wba: Wba<Arc<ltap::Gateway>>,
    system: &'a MetaComm,
    /// room → port designator
    rooms: BTreeMap<String, String>,
}

impl<'a> Hoteling<'a> {
    fn new(system: &'a MetaComm, rooms: &[(&str, &str)]) -> Hoteling<'a> {
        Hoteling {
            wba: system.wba(),
            system,
            rooms: rooms
                .iter()
                .map(|(r, p)| (r.to_string(), p.to_string()))
                .collect(),
        }
    }

    /// Who currently occupies `room`?
    fn occupant(&self, room: &str) -> Option<String> {
        self.wba
            .find(&format!("(roomNumber={room})"))
            .ok()?
            .first()
            .and_then(|e| e.first("cn"))
            .map(str::to_string)
    }

    /// Reserve `room` for `cn`: fails when occupied, otherwise redirects
    /// the person's extension to the room (and its port).
    fn reserve(&self, cn: &str, room: &str) -> Result<(), String> {
        let port = self
            .rooms
            .get(room)
            .ok_or_else(|| format!("no such room {room}"))?;
        if let Some(holder) = self.occupant(room) {
            if holder != cn {
                return Err(format!("{room} is reserved by {holder}"));
            }
        }
        // One directory update; MetaComm moves the extension's port.
        let dn = ldap::Dn::parse(&format!("cn={cn},{}", self.wba.suffix())).unwrap();
        self.wba
            .directory()
            .modify(
                &dn,
                &[
                    ldap::Modification::set("roomNumber", room),
                    ldap::Modification::set("definityPort", port.clone()),
                    ldap::Modification::set("lastUpdater", "hoteling"),
                ],
            )
            .map_err(|e| e.to_string())?;
        self.system.settle();
        Ok(())
    }

    fn release(&self, cn: &str) -> Result<(), String> {
        let dn = ldap::Dn::parse(&format!("cn={cn},{}", self.wba.suffix())).unwrap();
        self.wba
            .directory()
            .modify(
                &dn,
                &[
                    ldap::Modification::delete_attr("roomNumber"),
                    ldap::Modification::delete_attr("definityPort"),
                    ldap::Modification::set("lastUpdater", "hoteling"),
                ],
            )
            .map_err(|e| e.to_string())?;
        self.system.settle();
        Ok(())
    }
}

fn main() {
    println!("=== Hoteling on top of MetaComm (paper §4.5) ===\n");
    let switch = Pbx::new("pbx-west", DialPlan::with_prefix("9", 4));
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(switch.store().clone(), "9???")
        .build()
        .expect("assemble");
    let wba = system.wba();
    for (cn, sn, ext) in [("John Doe", "Doe", "9100"), ("Pat Smith", "Smith", "9200")] {
        wba.add_person_with_extension(cn, sn, ext, "HOME").unwrap();
    }
    system.settle();

    let hotel = Hoteling::new(
        &system,
        &[
            ("HOT-101", "01A0101"),
            ("HOT-102", "01A0102"),
            ("HOT-103", "01A0103"),
        ],
    );

    // John reserves HOT-101.
    hotel.reserve("John Doe", "HOT-101").expect("reserve");
    println!("John Doe reserved HOT-101.");
    println!(
        "  switch sees: {}",
        switch
            .craft("display station 9100")
            .unwrap()
            .replace('\n', " | ")
    );

    // Pat tries the same room: refused by the *application*, not the device.
    let err = hotel.reserve("Pat Smith", "HOT-101").unwrap_err();
    println!("\nPat Smith tried HOT-101: {err}");

    // Pat takes HOT-102 instead.
    hotel.reserve("Pat Smith", "HOT-102").expect("reserve 2");
    println!("Pat Smith reserved HOT-102.");
    println!(
        "  switch sees: {}",
        switch
            .craft("display station 9200")
            .unwrap()
            .replace('\n', " | ")
    );

    // John checks out; the room frees up and the switch port is cleared.
    hotel.release("John Doe").expect("release");
    println!("\nJohn Doe checked out of HOT-101.");
    assert!(hotel.occupant("HOT-101").is_none());
    println!(
        "  switch sees: {}",
        switch
            .craft("display station 9100")
            .unwrap()
            .replace('\n', " | ")
    );

    // Now Pat can move to the corner office.
    hotel.reserve("Pat Smith", "HOT-101").expect("move");
    println!("\nPat Smith moved to HOT-101.");

    // The whole floor, straight from the directory:
    println!("\nFloor plan from the directory:");
    let people = system
        .directory()
        .search(
            system.suffix(),
            Scope::Sub,
            &Filter::parse("(objectClass=person)").unwrap(),
            &[],
            0,
        )
        .unwrap();
    for p in people {
        println!(
            "  {:<12} ext {:<6} room {:<8} port {}",
            p.first("cn").unwrap_or("?"),
            p.first("definityExtension").unwrap_or("-"),
            p.first("roomNumber").unwrap_or("(none)"),
            p.first("definityPort").unwrap_or("-"),
        );
    }
    system.shutdown();
    println!("\nDone.");
}
