//! Directory replication (paper §2): "LDAP servers make extensive use of
//! replication to make directory information highly available … directory
//! systems maintain a relaxed write-write consistency by ensuring that
//! updates eventually result in the same values for object attributes
//! being present in each copy of the object."
//!
//! Two sites (Murray Hill and Westminster) replicate the people subtree,
//! take concurrent writes during a WAN partition, and converge through
//! anti-entropy — per-attribute last-writer-wins, exactly the consistency
//! model MetaComm's Update Manager extends to the devices.
//!
//! ```text
//! cargo run --example replicated_directory
//! ```

use ldap::attr::Attribute;
use ldap::dn::Dn;
use ldap::entry::Entry;
use ldap::repl::Replica;

fn show(replica: &Replica, label: &str, dn: &Dn) {
    match replica.get(dn) {
        Some(e) => println!(
            "  {label:<12} room={:<8} phone={:<18} mail={}",
            e.first("roomNumber").unwrap_or("-"),
            e.first("telephoneNumber").unwrap_or("-"),
            e.first("mail").unwrap_or("-"),
        ),
        None => println!("  {label:<12} (entry absent)"),
    }
}

fn main() {
    println!("=== Replicated directory: relaxed write-write consistency ===\n");
    let mh = Replica::new("murray-hill");
    let wm = Replica::new("westminster");

    // Murray Hill creates John and replicates to Westminster.
    let dn = Dn::parse("cn=John Doe,o=Lucent").unwrap();
    let entry = Entry::with_attrs(
        dn.clone(),
        [
            ("objectClass", "person"),
            ("cn", "John Doe"),
            ("sn", "Doe"),
            ("telephoneNumber", "+1 908 582 9123"),
            ("roomNumber", "2B-401"),
        ],
    );
    mh.put_entry(&entry).unwrap();
    mh.sync_with(&wm);
    println!("After initial replication:");
    show(&mh, "murray-hill", &dn);
    show(&wm, "westminster", &dn);

    // --- WAN partition: both sites keep taking writes. -------------------
    println!("\n-- partition: concurrent writes at both sites --");
    mh.set_attr(&dn, Attribute::single("roomNumber", "3F-100"))
        .unwrap();
    mh.set_attr(&dn, Attribute::single("mail", "jdoe@lucent.com"))
        .unwrap();
    wm.set_attr(&dn, Attribute::single("roomNumber", "WM-205"))
        .unwrap();
    wm.set_attr(&dn, Attribute::single("telephoneNumber", "+1 303 538 1000"))
        .unwrap();
    println!("During the partition (divergent):");
    show(&mh, "murray-hill", &dn);
    show(&wm, "westminster", &dn);

    // --- Heal: one round of anti-entropy. ---------------------------------
    mh.sync_with(&wm);
    println!("\nAfter anti-entropy (converged, per-attribute last-writer-wins):");
    show(&mh, "murray-hill", &dn);
    show(&wm, "westminster", &dn);
    assert_eq!(mh.digest(), wm.digest(), "replicas must agree");

    // Conflicting delete vs. update.
    println!("\n-- partition again: delete at one site, update at the other --");
    wm.delete_entry(&dn).unwrap();
    mh.set_attr(&dn, Attribute::single("roomNumber", "4A-001"))
        .unwrap();
    mh.sync_with(&wm);
    println!("After healing (the delete was stamped later, so it wins):");
    show(&mh, "murray-hill", &dn);
    show(&wm, "westminster", &dn);
    assert_eq!(mh.digest(), wm.digest());

    // Recreate resurrects everywhere.
    mh.put_entry(&entry).unwrap();
    mh.sync_with(&wm);
    println!("\nAfter recreating John at Murray Hill:");
    show(&mh, "murray-hill", &dn);
    show(&wm, "westminster", &dn);
    assert_eq!(mh.digest(), wm.digest());

    println!(
        "\nThis per-attribute convergence is the guarantee the paper says \
         directories provide;\nMetaComm *extends* it to meta-directory \
         updates by reapplying direct device updates\n(see experiment E2)."
    );
}
