//! Quickstart: assemble the full MetaComm architecture of the paper's
//! Figure 1 and drive one update down each path.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The deployment: two Definity-style switches partitioned by extension
//! range, one voice-messaging platform, an LDAP directory with the
//! integrated schema, the LTAP trigger gateway, and the Update Manager —
//! plus the Figure 2 sample tree.

use ldap::{Directory, Filter, Scope};
use metacomm::MetaCommBuilder;
use msgplat::MsgPlat;
use pbx::{DialPlan, Pbx};

fn main() {
    println!("=== MetaComm quickstart (paper Figure 1 architecture) ===\n");

    // --- the legacy devices -------------------------------------------
    let west = Pbx::new("pbx-west", DialPlan::with_prefix("9", 4));
    let east = Pbx::new("pbx-east", DialPlan::with_prefix("3", 4));
    let mp = MsgPlat::new("mp");

    // --- the meta-directory -------------------------------------------
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(west.store().clone(), "9???")
        .add_pbx(east.store().clone(), "3???")
        .add_msgplat(mp.store().clone(), "*")
        .build()
        .expect("assemble MetaComm");

    // Build the paper's Figure 2 organizational tree around the people.
    let dir = system.directory();
    for unit in ["Marketing", "Accounting", "R&D", "DEN Group"] {
        let mut e = ldap::Entry::new(ldap::Dn::parse(&format!("ou={unit},o=Lucent")).unwrap());
        e.add_value("objectClass", "top");
        e.add_value("objectClass", "organizationalUnit");
        e.add_value("ou", unit);
        dir.add(e).expect("add org unit");
    }
    println!("Figure 2 tree created: o=Lucent with 4 organizational units.\n");

    // --- Path 1: administer through the directory (WBA → LTAP → UM) ---
    let wba = system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .expect("add John");
    wba.assign_mailbox("John Doe", "9123", "executive")
        .expect("mailbox");
    system.settle();
    println!("WBA added John Doe with extension 9123 + mailbox:");
    println!(
        "  pbx-west: {}",
        west.craft("display station 9123").unwrap().trim_end()
    );
    println!(
        "  mp      : {}",
        mp.console("display subscriber 9123").unwrap().trim_end()
    );

    // --- Path 2: a direct device update (craft terminal → filter → UM) -
    east.craft(r#"add station 3456 name "Smith, Pat" room 2C-115"#)
        .expect("craft add");
    system.settle();
    let pat = wba.person("Pat Smith").unwrap().expect("materialized");
    println!("\nCraft terminal added station 3456 directly at pbx-east;");
    println!("the directory materialized it:\n{pat}");

    // --- The flagship update: a phone-number change --------------------
    // The transitive closure recomputes the extension; the partitioning
    // constraint turns the modify into delete@west + add@east.
    wba.set_phone("John Doe", "+1 908 582 3999")
        .expect("renumber");
    system.settle();
    println!("Changed John's phone to +1 908 582 3999:");
    println!(
        "  pbx-west has 9123? {}   pbx-east has 3999? {}",
        west.store().get("9123").is_some(),
        east.store().get("3999").is_some()
    );

    // --- Any LDAP tool works: a search over the gateway ----------------
    let people = dir
        .search(
            system.suffix(),
            Scope::Sub,
            &Filter::parse("(&(objectClass=person)(telephoneNumber=*))").unwrap(),
            &[
                "cn".into(),
                "telephoneNumber".into(),
                "definityExtension".into(),
            ],
            0,
        )
        .unwrap();
    println!("\nDirectory view (any LDAP client sees this):");
    for p in &people {
        println!(
            "  {:<22} phone={:<18} ext={}",
            p.first("cn").unwrap_or("?"),
            p.first("telephoneNumber").unwrap_or("-"),
            p.first("definityExtension").unwrap_or("-")
        );
    }

    // --- Stats ----------------------------------------------------------
    let um = system.um_stats();
    use std::sync::atomic::Ordering::Relaxed;
    println!(
        "\nUpdate Manager: {} updates, {} device ops ({} reapplied, {} skipped by partition)",
        um.updates.load(Relaxed),
        um.device_ops.load(Relaxed),
        um.reapplied.load(Relaxed),
        um.skipped.load(Relaxed),
    );
    system.shutdown();
    println!("\nDone.");
}
