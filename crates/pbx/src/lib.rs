//! # pbx — a Definity®-style PBX simulator
//!
//! Stands in for the proprietary Lucent Definity switch the paper
//! integrates (see DESIGN.md §1 for the substitution argument). It exposes
//! exactly the surfaces MetaComm interacts with:
//!
//! - a station [`store`] with **single-record atomic updates only**, no
//!   triggers, and weak (string) typing;
//! - commit-time change notifications distinguishing craft-terminal updates
//!   (direct device updates, DDUs) from MetaComm's own administration
//!   session;
//! - an [`ossi`] craft-terminal command interface — the legacy path device
//!   administrators keep using alongside the directory;
//! - a [`dialplan`] partitioning extensions across switches, mirrored by
//!   the lexpress partitioning constraints on the directory side.

pub mod dialplan;
pub mod error;
pub mod ossi;
pub mod record;
pub mod store;

pub use dialplan::DialPlan;
pub use error::{PbxError, Result};
pub use record::{fields, Record};
pub use store::{Channel, DeviceEvent, EventKind, Store};

/// A complete simulated switch: store + dial plan + craft interface.
///
/// ```
/// use pbx::{Pbx, DialPlan};
/// let pbx = Pbx::new("pbx-west", DialPlan::with_prefix("9", 4));
/// pbx.craft(r#"add station 9123 name "Doe, John" room 2B-401"#).unwrap();
/// assert_eq!(pbx.store().len(), 1);
/// ```
pub struct Pbx {
    store: std::sync::Arc<Store>,
}

impl Pbx {
    pub fn new(name: impl Into<String>, plan: DialPlan) -> Pbx {
        Pbx {
            store: std::sync::Arc::new(Store::new(name, plan)),
        }
    }

    pub fn store(&self) -> &std::sync::Arc<Store> {
        &self.store
    }

    pub fn name(&self) -> &str {
        self.store.name()
    }

    /// Execute a craft-terminal command (a direct device update).
    pub fn craft(&self, line: &str) -> Result<String> {
        ossi::execute(&self.store, line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example() {
        let pbx = Pbx::new("pbx-west", DialPlan::with_prefix("9", 4));
        pbx.craft(r#"add station 9123 name "Doe, John""#).unwrap();
        assert_eq!(pbx.name(), "pbx-west");
        assert_eq!(pbx.store().len(), 1);
    }
}
