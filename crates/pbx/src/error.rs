//! PBX administration errors.

use std::fmt;

/// Errors surfaced by the PBX administration surface. The underlying store
/// is weakly typed; these errors come from the admin-interface boundary and
/// record-level invariants only (faithful to the paper's "extremely weak
/// typing and transactional support").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbxError {
    /// No station with that extension.
    NoSuchStation(String),
    /// A station with that extension already exists.
    DuplicateStation(String),
    /// The extension is not owned by this switch's dial plan.
    OutsideDialPlan { extension: String, plan: String },
    /// Field-level validation at the admin boundary.
    InvalidField { field: String, detail: String },
    /// Malformed OSSI command.
    BadCommand(String),
}

impl fmt::Display for PbxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbxError::NoSuchStation(x) => write!(f, "no station {x}"),
            PbxError::DuplicateStation(x) => write!(f, "station {x} already administered"),
            PbxError::OutsideDialPlan { extension, plan } => {
                write!(f, "extension {extension} outside dial plan {plan}")
            }
            PbxError::InvalidField { field, detail } => {
                write!(f, "invalid {field}: {detail}")
            }
            PbxError::BadCommand(c) => write!(f, "bad command: {c}"),
        }
    }
}

impl std::error::Error for PbxError {}

pub type Result<T> = std::result::Result<T, PbxError>;
