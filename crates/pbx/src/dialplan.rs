//! Dial plan: the extension ranges a switch owns.
//!
//! The partitioning constraints the paper describes ("a particular PBX
//! accepts updates for phone numbers beginning with +1 908-582-9…") are the
//! directory-side reflection of these ranges.

use crate::error::{PbxError, Result};
use std::fmt;

/// An inclusive extension range expressed as a digit prefix plus length,
/// e.g. prefix `9`, length 4 owns `9000`–`9999`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Range {
    pub prefix: String,
    pub length: usize,
}

/// The set of extension ranges one switch owns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DialPlan {
    ranges: Vec<Range>,
}

impl DialPlan {
    pub fn new() -> DialPlan {
        DialPlan::default()
    }

    /// A plan owning all `length`-digit extensions starting with `prefix`.
    pub fn with_prefix(prefix: &str, length: usize) -> DialPlan {
        let mut p = DialPlan::new();
        p.add_range(prefix, length);
        p
    }

    pub fn add_range(&mut self, prefix: &str, length: usize) {
        self.ranges.push(Range {
            prefix: prefix.to_string(),
            length,
        });
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Does this switch own `extension`? An empty plan owns everything
    /// (unpartitioned deployments).
    pub fn owns(&self, extension: &str) -> bool {
        if self.ranges.is_empty() {
            return true;
        }
        self.ranges.iter().any(|r| {
            extension.len() == r.length
                && extension.starts_with(&r.prefix)
                && extension.chars().all(|c| c.is_ascii_digit())
        })
    }

    /// Validate at the admin boundary.
    pub fn check(&self, extension: &str, plan_name: &str) -> Result<()> {
        if extension.is_empty() || !extension.chars().all(|c| c.is_ascii_digit()) {
            return Err(PbxError::InvalidField {
                field: "Extension".into(),
                detail: format!("`{extension}` is not a digit string"),
            });
        }
        if !self.owns(extension) {
            return Err(PbxError::OutsideDialPlan {
                extension: extension.to_string(),
                plan: plan_name.to_string(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for DialPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ranges.is_empty() {
            return f.write_str("any");
        }
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}{}", r.prefix, "x".repeat(r.length - r.prefix.len()))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_ownership() {
        let p = DialPlan::with_prefix("9", 4);
        assert!(p.owns("9123"));
        assert!(p.owns("9000"));
        assert!(!p.owns("8123"));
        assert!(!p.owns("91234"), "wrong length");
        assert!(!p.owns("9x23"), "non-digit");
    }

    #[test]
    fn multiple_ranges() {
        let mut p = DialPlan::new();
        p.add_range("9", 4);
        p.add_range("35", 4);
        assert!(p.owns("9123"));
        assert!(p.owns("3555"));
        assert!(!p.owns("3455"));
        assert_eq!(p.to_string(), "9xxx,35xx");
    }

    #[test]
    fn empty_plan_owns_everything() {
        let p = DialPlan::new();
        assert!(p.owns("12345"));
        assert_eq!(p.to_string(), "any");
    }

    #[test]
    fn check_errors() {
        let p = DialPlan::with_prefix("9", 4);
        assert!(matches!(
            p.check("abcd", "west"),
            Err(PbxError::InvalidField { .. })
        ));
        assert!(matches!(
            p.check("8000", "west"),
            Err(PbxError::OutsideDialPlan { .. })
        ));
        p.check("9001", "west").unwrap();
    }
}
