//! OSSI-style craft terminal: the "proprietary interface" through which
//! device administrators keep working when MetaComm is deployed (Figure 1's
//! direct-update path into the Definity).
//!
//! Command set (a simplified OSSI/SAT flavour):
//!
//! ```text
//! add station 9123 name "Doe, John" room 2B-401 cov 1 cor 1
//! change station 9123 room 2C-115
//! display station 9123
//! remove station 9123
//! list stations
//! ```

use crate::error::{PbxError, Result};
use crate::record::{fields, Record};
use crate::store::{Channel, Store};
use std::fmt::Write as _;

/// Map OSSI field keywords to record fields.
fn field_for(keyword: &str) -> Option<&'static str> {
    match keyword {
        "name" => Some(fields::NAME),
        "room" => Some(fields::ROOM),
        "port" => Some(fields::PORT),
        "type" => Some(fields::SET_TYPE),
        "cov" | "coverage" => Some(fields::COVERAGE_PATH),
        "cor" => Some(fields::COR),
        _ => None,
    }
}

/// Execute one craft command against a switch; returns the terminal output.
pub fn execute(store: &Store, line: &str) -> Result<String> {
    let tokens = tokenize(line)?;
    let mut it = tokens.iter();
    let verb = it.next().map(String::as_str).unwrap_or("");
    match verb {
        "add" | "change" => {
            expect_kw(&mut it, "station", line)?;
            let ext = it
                .next()
                .ok_or_else(|| PbxError::BadCommand(format!("missing extension: {line}")))?;
            let mut rec = Record::new();
            if verb == "add" {
                rec.set(fields::EXTENSION, ext.clone());
            }
            while let Some(kw) = it.next() {
                let field = field_for(kw)
                    .ok_or_else(|| PbxError::BadCommand(format!("unknown field `{kw}`")))?;
                let value = it
                    .next()
                    .ok_or_else(|| PbxError::BadCommand(format!("missing value for `{kw}`")))?;
                validate_field(field, value)?;
                rec.set(field, value.clone());
            }
            if verb == "add" {
                store.add(rec, Channel::Craft)?;
                Ok(format!("station {ext} administered"))
            } else {
                store.change(ext, rec, Channel::Craft)?;
                Ok(format!("station {ext} changed"))
            }
        }
        "remove" => {
            expect_kw(&mut it, "station", line)?;
            let ext = it
                .next()
                .ok_or_else(|| PbxError::BadCommand(format!("missing extension: {line}")))?;
            store.remove(ext, Channel::Craft)?;
            Ok(format!("station {ext} removed"))
        }
        "display" => {
            expect_kw(&mut it, "station", line)?;
            let ext = it
                .next()
                .ok_or_else(|| PbxError::BadCommand(format!("missing extension: {line}")))?;
            let rec = store
                .get(ext)
                .ok_or_else(|| PbxError::NoSuchStation(ext.clone()))?;
            let mut out = String::new();
            writeln!(out, "STATION {ext}").expect("write");
            for (k, v) in rec.fields() {
                if k != fields::EXTENSION {
                    writeln!(out, "  {k:<16} {v}").expect("write");
                }
            }
            Ok(out)
        }
        "list" => {
            match it.next().map(String::as_str) {
                Some("stations") => {}
                other => {
                    return Err(PbxError::BadCommand(format!(
                        "expected `stations`, got {other:?}"
                    )))
                }
            }
            let mut out = String::new();
            writeln!(out, "{:<8} {:<24} {:<10}", "EXT", "NAME", "ROOM").expect("write");
            for ext in store.extensions() {
                let r = store.get(&ext).expect("listed");
                writeln!(
                    out,
                    "{:<8} {:<24} {:<10}",
                    ext,
                    r.get(fields::NAME).unwrap_or(""),
                    r.get(fields::ROOM).unwrap_or("")
                )
                .expect("write");
            }
            Ok(out)
        }
        other => Err(PbxError::BadCommand(format!("unknown verb `{other}`"))),
    }
}

/// Field validation at the admin boundary (the only typing the device has).
fn validate_field(field: &str, value: &str) -> Result<()> {
    match field {
        fields::COVERAGE_PATH | fields::COR
            if !value.is_empty() && !value.chars().all(|c| c.is_ascii_digit()) =>
        {
            Err(PbxError::InvalidField {
                field: field.into(),
                detail: format!("`{value}` must be numeric"),
            })
        }
        // board-slot-port like 01A0101; accept alphanumeric only
        fields::PORT if !value.is_empty() && !value.chars().all(|c| c.is_ascii_alphanumeric()) => {
            Err(PbxError::InvalidField {
                field: field.into(),
                detail: format!("`{value}` is not a port designator"),
            })
        }
        _ => Ok(()),
    }
}

fn expect_kw<'a>(it: &mut impl Iterator<Item = &'a String>, kw: &str, line: &str) -> Result<()> {
    match it.next() {
        Some(t) if t == kw => Ok(()),
        _ => Err(PbxError::BadCommand(format!("expected `{kw}` in `{line}`"))),
    }
}

fn tokenize(line: &str) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            let mut closed = false;
            for c in chars.by_ref() {
                if c == '"' {
                    closed = true;
                    break;
                }
                s.push(c);
            }
            if !closed {
                return Err(PbxError::BadCommand(format!(
                    "unterminated quote in `{line}`"
                )));
            }
            out.push(s);
        } else {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                s.push(c);
                chars.next();
            }
            out.push(s);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialplan::DialPlan;

    fn store() -> Store {
        Store::new("pbx-west", DialPlan::with_prefix("9", 4))
    }

    #[test]
    fn add_display_change_remove() {
        let s = store();
        execute(&s, r#"add station 9123 name "Doe, John" room 2B-401 cov 1"#).unwrap();
        let shown = execute(&s, "display station 9123").unwrap();
        assert!(shown.contains("Doe, John"));
        assert!(shown.contains("2B-401"));
        execute(&s, "change station 9123 room 2C-115").unwrap();
        assert_eq!(s.get("9123").unwrap().get(fields::ROOM), Some("2C-115"));
        execute(&s, "remove station 9123").unwrap();
        assert!(s.get("9123").is_none());
    }

    #[test]
    fn list_stations_table() {
        let s = store();
        execute(&s, r#"add station 9200 name "Smith, Pat""#).unwrap();
        execute(&s, r#"add station 9100 name "Doe, John""#).unwrap();
        let out = execute(&s, "list stations").unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("9100"));
        assert!(lines[2].starts_with("9200"));
    }

    #[test]
    fn validation_errors() {
        let s = store();
        assert!(matches!(
            execute(&s, "add station 8123 name X"),
            Err(PbxError::OutsideDialPlan { .. })
        ));
        assert!(matches!(
            execute(&s, "add station 9123 cov abc"),
            Err(PbxError::InvalidField { .. })
        ));
        assert!(matches!(
            execute(&s, "add station 9123 port 01-A"),
            Err(PbxError::InvalidField { .. })
        ));
    }

    #[test]
    fn bad_commands() {
        let s = store();
        for bad in [
            "frobnicate station 9123",
            "add trunk 9123",
            "add station",
            "add station 9123 name",
            "add station 9123 unknownfield x",
            r#"add station 9123 name "unterminated"#,
            "list trunks",
            "display station 9999",
        ] {
            assert!(execute(&s, bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn craft_commands_notify_as_craft_channel() {
        let s = store();
        let rx = s.subscribe();
        execute(&s, "add station 9123 name X").unwrap();
        assert_eq!(rx.recv().unwrap().channel, Channel::Craft);
    }
}
