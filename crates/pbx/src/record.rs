//! Weakly-typed device records.
//!
//! The Definity stores administration data as flat field/value forms; every
//! value is a string and the device itself enforces almost nothing — the
//! "extremely weak typing" the paper's consistency machinery must survive.

use std::collections::BTreeMap;
use std::fmt;

/// The well-known station fields this simulator administers. Anything else
/// is accepted too (weak typing) but these are what the OSSI interface and
/// the MetaComm mappings use.
pub mod fields {
    pub const EXTENSION: &str = "Extension";
    pub const NAME: &str = "Name";
    pub const ROOM: &str = "Room";
    pub const PORT: &str = "Port";
    pub const SET_TYPE: &str = "Type";
    pub const COVERAGE_PATH: &str = "CoveragePath";
    pub const COR: &str = "Cor";
}

/// A flat, string-typed record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Record {
    map: BTreeMap<String, String>,
}

impl Record {
    pub fn new() -> Record {
        Record::default()
    }

    pub fn from_pairs<K: Into<String>, V: Into<String>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Record {
        let mut r = Record::new();
        for (k, v) in pairs {
            r.set(k, v);
        }
        r
    }

    pub fn get(&self, field: &str) -> Option<&str> {
        self.map.get(field).map(String::as_str)
    }

    pub fn set(&mut self, field: impl Into<String>, value: impl Into<String>) {
        self.map.insert(field.into(), value.into());
    }

    pub fn unset(&mut self, field: &str) -> Option<String> {
        self.map.remove(field)
    }

    pub fn fields(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Overlay `other`'s fields onto a copy of `self`; empty values in
    /// `other` clear the field (Definity semantics for blanking a form
    /// field).
    pub fn updated_with(&self, other: &Record) -> Record {
        let mut out = self.clone();
        for (k, v) in other.fields() {
            if v.is_empty() {
                out.unset(k);
            } else {
                out.set(k, v);
            }
        }
        out
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.fields() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{k}={v:?}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut r = Record::from_pairs([("Extension", "9123"), ("Name", "Doe, John")]);
        assert_eq!(r.get("Extension"), Some("9123"));
        assert_eq!(r.get("Missing"), None);
        r.set("Room", "2B-401");
        assert_eq!(r.len(), 3);
        assert_eq!(r.unset("Room"), Some("2B-401".into()));
        assert!(r.get("Room").is_none());
    }

    #[test]
    fn update_with_blanking() {
        let r = Record::from_pairs([("Extension", "9123"), ("Name", "Doe"), ("Room", "2B")]);
        let patch = Record::from_pairs([("Name", "Smith"), ("Room", "")]);
        let out = r.updated_with(&patch);
        assert_eq!(out.get("Name"), Some("Smith"));
        assert_eq!(out.get("Room"), None, "empty value blanks the field");
        assert_eq!(out.get("Extension"), Some("9123"));
    }

    #[test]
    fn weak_typing_accepts_anything() {
        let mut r = Record::new();
        r.set("CoveragePath", "not-a-number");
        r.set("SomeUnknownField", "☎");
        assert_eq!(r.get("SomeUnknownField"), Some("☎"));
    }
}
