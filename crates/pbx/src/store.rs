//! The switch's station store: single-record atomic updates, commit-time
//! change notifications, no triggers, no multi-record transactions.

use crate::dialplan::DialPlan;
use crate::error::{PbxError, Result};
use crate::record::{fields, Record};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Where an update came in through. MetaComm's filter session is
/// distinguished so reapplied updates do not echo as fresh direct-device
/// updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// A craft/administrator session at the device (a DDU in paper terms).
    Craft,
    /// The MetaComm protocol converter's administration session.
    Metacomm,
}

/// What happened at commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    Add,
    Change,
    Remove,
}

/// A commit-time change notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceEvent {
    pub kind: EventKind,
    /// Key (extension) the operation addressed.
    pub key: String,
    /// Record image before the commit (None for Add).
    pub old: Option<Record>,
    /// Record image after the commit (None for Remove).
    pub new: Option<Record>,
    pub channel: Channel,
}

/// The station store of one switch.
pub struct Store {
    name: String,
    plan: DialPlan,
    inner: Mutex<Inner>,
}

struct Inner {
    stations: BTreeMap<String, Record>,
    subscribers: Vec<Sender<DeviceEvent>>,
    /// Commit counter (diagnostics / tests).
    commits: u64,
}

impl Store {
    pub fn new(name: impl Into<String>, plan: DialPlan) -> Store {
        Store {
            name: name.into(),
            plan,
            inner: Mutex::new(Inner {
                stations: BTreeMap::new(),
                subscribers: Vec::new(),
                commits: 0,
            }),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn plan(&self) -> &DialPlan {
        &self.plan
    }

    pub fn len(&self) -> usize {
        self.inner.lock().stations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn commits(&self) -> u64 {
        self.inner.lock().commits
    }

    /// Subscribe to commit notifications.
    pub fn subscribe(&self) -> Receiver<DeviceEvent> {
        let (tx, rx) = unbounded();
        self.inner.lock().subscribers.push(tx);
        rx
    }

    fn notify(inner: &mut Inner, event: DeviceEvent) {
        inner.commits += 1;
        inner
            .subscribers
            .retain(|tx| tx.send(event.clone()).is_ok());
    }

    pub fn get(&self, extension: &str) -> Option<Record> {
        self.inner.lock().stations.get(extension).cloned()
    }

    /// Full dump (synchronization support, paper §4.1's "method to retrieve
    /// all relevant data").
    pub fn dump(&self) -> Vec<Record> {
        self.inner.lock().stations.values().cloned().collect()
    }

    /// Administer a new station. The record must carry an `Extension` field
    /// owned by this switch's dial plan.
    pub fn add(&self, record: Record, channel: Channel) -> Result<()> {
        let ext = record
            .get(fields::EXTENSION)
            .ok_or_else(|| PbxError::InvalidField {
                field: fields::EXTENSION.into(),
                detail: "missing".into(),
            })?
            .to_string();
        self.plan.check(&ext, &self.name)?;
        let mut inner = self.inner.lock();
        if inner.stations.contains_key(&ext) {
            return Err(PbxError::DuplicateStation(ext));
        }
        inner.stations.insert(ext.clone(), record.clone());
        Store::notify(
            &mut inner,
            DeviceEvent {
                kind: EventKind::Add,
                key: ext,
                old: None,
                new: Some(record),
                channel,
            },
        );
        Ok(())
    }

    /// Change non-key fields of an existing station (empty values blank the
    /// field). Changing `Extension` itself is not supported by the form —
    /// real Definity administration removes and re-adds (which is exactly
    /// what lexpress partitioning translates a renumbering into).
    pub fn change(&self, extension: &str, patch: Record, channel: Channel) -> Result<()> {
        if let Some(new_ext) = patch.get(fields::EXTENSION) {
            if new_ext != extension {
                return Err(PbxError::InvalidField {
                    field: fields::EXTENSION.into(),
                    detail: "extension cannot be changed; remove and re-add".into(),
                });
            }
        }
        let mut inner = self.inner.lock();
        let old = inner
            .stations
            .get(extension)
            .cloned()
            .ok_or_else(|| PbxError::NoSuchStation(extension.to_string()))?;
        let new = old.updated_with(&patch);
        inner.stations.insert(extension.to_string(), new.clone());
        Store::notify(
            &mut inner,
            DeviceEvent {
                kind: EventKind::Change,
                key: extension.to_string(),
                old: Some(old),
                new: Some(new),
                channel,
            },
        );
        Ok(())
    }

    /// Remove a station.
    pub fn remove(&self, extension: &str, channel: Channel) -> Result<()> {
        let mut inner = self.inner.lock();
        let old = inner
            .stations
            .remove(extension)
            .ok_or_else(|| PbxError::NoSuchStation(extension.to_string()))?;
        Store::notify(
            &mut inner,
            DeviceEvent {
                kind: EventKind::Remove,
                key: extension.to_string(),
                old: Some(old),
                new: None,
                channel,
            },
        );
        Ok(())
    }

    /// List extensions in order.
    pub fn extensions(&self) -> Vec<String> {
        self.inner.lock().stations.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        Store::new("pbx-west", DialPlan::with_prefix("9", 4))
    }

    fn station(ext: &str, name: &str) -> Record {
        Record::from_pairs([
            (fields::EXTENSION, ext),
            (fields::NAME, name),
            (fields::COVERAGE_PATH, "1"),
        ])
    }

    #[test]
    fn add_change_remove_with_events() {
        let s = store();
        let rx = s.subscribe();
        s.add(station("9123", "Doe, John"), Channel::Craft).unwrap();
        s.change(
            "9123",
            Record::from_pairs([(fields::ROOM, "2B-401")]),
            Channel::Craft,
        )
        .unwrap();
        s.remove("9123", Channel::Craft).unwrap();
        let events: Vec<DeviceEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Add);
        assert!(events[0].old.is_none());
        assert_eq!(events[1].kind, EventKind::Change);
        assert_eq!(
            events[1].new.as_ref().unwrap().get(fields::ROOM),
            Some("2B-401")
        );
        assert_eq!(
            events[1].old.as_ref().unwrap().get(fields::ROOM),
            None,
            "old image has no room"
        );
        assert_eq!(events[2].kind, EventKind::Remove);
        assert!(events[2].new.is_none());
        assert_eq!(s.commits(), 3);
    }

    #[test]
    fn channel_is_carried() {
        let s = store();
        let rx = s.subscribe();
        s.add(station("9123", "X"), Channel::Metacomm).unwrap();
        assert_eq!(rx.recv().unwrap().channel, Channel::Metacomm);
    }

    #[test]
    fn dial_plan_enforced_on_add() {
        let s = store();
        assert!(matches!(
            s.add(station("8123", "X"), Channel::Craft),
            Err(PbxError::OutsideDialPlan { .. })
        ));
    }

    #[test]
    fn duplicate_and_missing() {
        let s = store();
        s.add(station("9123", "X"), Channel::Craft).unwrap();
        assert!(matches!(
            s.add(station("9123", "Y"), Channel::Craft),
            Err(PbxError::DuplicateStation(_))
        ));
        assert!(matches!(
            s.change("9999", Record::new(), Channel::Craft),
            Err(PbxError::NoSuchStation(_))
        ));
        assert!(matches!(
            s.remove("9999", Channel::Craft),
            Err(PbxError::NoSuchStation(_))
        ));
    }

    #[test]
    fn extension_change_rejected() {
        let s = store();
        s.add(station("9123", "X"), Channel::Craft).unwrap();
        let err = s
            .change(
                "9123",
                Record::from_pairs([(fields::EXTENSION, "9200")]),
                Channel::Craft,
            )
            .unwrap_err();
        assert!(matches!(err, PbxError::InvalidField { .. }));
    }

    #[test]
    fn dump_and_extensions_ordered() {
        let s = store();
        s.add(station("9200", "B"), Channel::Craft).unwrap();
        s.add(station("9100", "A"), Channel::Craft).unwrap();
        assert_eq!(s.extensions(), vec!["9100", "9200"]);
        assert_eq!(s.dump().len(), 2);
    }

    #[test]
    fn blanking_clears_field() {
        let s = store();
        s.add(station("9123", "X"), Channel::Craft).unwrap();
        s.change(
            "9123",
            Record::from_pairs([(fields::COVERAGE_PATH, "")]),
            Channel::Craft,
        )
        .unwrap();
        assert_eq!(s.get("9123").unwrap().get(fields::COVERAGE_PATH), None);
    }

    #[test]
    fn dropped_subscriber_pruned() {
        let s = store();
        {
            let _rx = s.subscribe();
        } // dropped
        let rx2 = s.subscribe();
        s.add(station("9123", "X"), Channel::Craft).unwrap();
        assert_eq!(rx2.try_iter().count(), 1);
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_admin_sessions_keep_single_record_atomicity() {
        let s = Arc::new(Store::new("pbx", DialPlan::with_prefix("9", 4)));
        s.add(
            Record::from_pairs([(fields::EXTENSION, "9123"), (fields::NAME, "X")]),
            Channel::Metacomm,
        )
        .unwrap();
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    s.change(
                        "9123",
                        Record::from_pairs([(fields::ROOM, format!("{t}-{i}").as_str())]),
                        Channel::Craft,
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exactly the seeded commits + 400 changes; record still coherent.
        assert_eq!(s.commits(), 1 + 8 * 50);
        let rec = s.get("9123").unwrap();
        assert!(rec.get(fields::ROOM).is_some());
        assert_eq!(rec.get(fields::NAME), Some("X"));
    }

    #[test]
    fn events_are_delivered_in_commit_order() {
        let s = Store::new("pbx", DialPlan::with_prefix("9", 4));
        let rx = s.subscribe();
        s.add(
            Record::from_pairs([(fields::EXTENSION, "9123"), (fields::NAME, "A")]),
            Channel::Craft,
        )
        .unwrap();
        for i in 0..20 {
            s.change(
                "9123",
                Record::from_pairs([(fields::ROOM, format!("R{i}").as_str())]),
                Channel::Craft,
            )
            .unwrap();
        }
        let events: Vec<DeviceEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 21);
        // Each change's old image equals the previous change's new image.
        for w in events.windows(2) {
            assert_eq!(w[0].new, w[1].old, "event chain must be gapless");
        }
    }
}
