//! The LTAP gateway: "pretends to be an LDAP server — LDAP commands
//! intended for the LDAP server are intercepted by LTAP which does trigger
//! processing in addition to servicing the original LDAP command" (§4.3).
//!
//! The gateway implements [`Directory`], so it can be used
//!
//! * **as a library** bound into an application (in-process calls), or
//! * **as a network gateway** by serving it with `ldap::server::Server` —
//!   the §5.5 deployment trade-off, measurable in experiment E5.
//!
//! Reads pass straight through (the UM machine "does not need to do any
//! read processing"); updates take the quiesce pass, the per-entry lock,
//! fire before-triggers (which may veto or take over servicing), apply,
//! then fire after-triggers.

use crate::lock::LockManager;
use crate::quiesce::QuiesceGate;
use crate::session::SyncSession;
use crate::trigger::{Disposition, LtapOp, Timing, TriggerContext, TriggerHandler, TriggerSpec};
use ldap::dit::Scope;
use ldap::dn::{Dn, Rdn};
use ldap::entry::{Entry, Modification};
use ldap::error::Result;
use ldap::filter::Filter;
use ldap::Directory;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifies a registered trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerId(u64);

struct Registered {
    id: TriggerId,
    spec: TriggerSpec,
    handler: Arc<dyn TriggerHandler>,
}

/// Gateway statistics (experiment E5 instrumentation).
#[derive(Debug, Default)]
pub struct Stats {
    pub reads: AtomicUsize,
    pub updates: AtomicUsize,
    pub triggers_fired: AtomicUsize,
    pub vetoed: AtomicUsize,
    pub handled_by_trigger: AtomicUsize,
    /// Cumulative wall time inside [`Gateway::trap`] (quiesce + lock +
    /// triggers + apply), nanoseconds. Counted for failed trips too.
    pub update_ns: AtomicU64,
    /// Cumulative wall time inside pass-through reads, nanoseconds.
    pub read_ns: AtomicU64,
}

/// The trigger gateway.
pub struct Gateway {
    inner: Arc<dyn Directory>,
    locks: LockManager,
    quiesce: QuiesceGate,
    triggers: RwLock<Vec<Registered>>,
    next_id: AtomicU64,
    stats: Stats,
}

impl Gateway {
    pub fn new(inner: Arc<dyn Directory>) -> Arc<Gateway> {
        Arc::new(Gateway {
            inner,
            locks: LockManager::new(),
            quiesce: QuiesceGate::new(),
            triggers: RwLock::new(Vec::new()),
            next_id: AtomicU64::new(1),
            stats: Stats::default(),
        })
    }

    /// The directory behind the gateway.
    pub fn inner(&self) -> &Arc<dyn Directory> {
        &self.inner
    }

    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Register a trigger; triggers fire in registration order.
    pub fn register(&self, spec: TriggerSpec, handler: Arc<dyn TriggerHandler>) -> TriggerId {
        let id = TriggerId(self.next_id.fetch_add(1, Ordering::SeqCst));
        self.triggers.write().push(Registered { id, spec, handler });
        id
    }

    pub fn unregister(&self, id: TriggerId) -> bool {
        let mut ts = self.triggers.write();
        let before = ts.len();
        ts.retain(|r| r.id != id);
        ts.len() != before
    }

    pub fn trigger_count(&self) -> usize {
        self.triggers.read().len()
    }

    /// Open a synchronization session: quiesces the gateway (all ordinary
    /// updates drain and block) and returns a handle applying operations
    /// directly, bypassing trigger processing — the paper's persistent
    /// connection + quiesce combination (§5.1).
    pub fn begin_sync(self: &Arc<Self>) -> SyncSession {
        SyncSession::open(self.clone())
    }

    pub(crate) fn quiesce_gate(&self) -> &QuiesceGate {
        &self.quiesce
    }

    /// Apply an operation tagged with its originating repository — the
    /// persistent-connection extension MetaComm's device filters use when
    /// relaying direct device updates (§4.4: "the update is eventually sent
    /// back to the UM after proper LTAP locks are obtained").
    pub fn apply_tagged(&self, op: LtapOp, origin: &str) -> Result<()> {
        self.trap(op, Some(origin))
    }

    /// The trapped update path shared by all four update operations.
    /// Wall time is accumulated into [`Stats::update_ns`] whether the trip
    /// succeeds, is vetoed, or fails downstream.
    fn trap(&self, op: LtapOp, origin: Option<&str>) -> Result<()> {
        let t0 = std::time::Instant::now();
        let r = self.trap_inner(op, origin);
        self.stats
            .update_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    fn trap_inner(&self, op: LtapOp, origin: Option<&str>) -> Result<()> {
        let _pass = self.quiesce.enter_update();
        self.stats.updates.fetch_add(1, Ordering::Relaxed);
        let key = op.dn().norm_key();
        let _lock = self.locks.lock(key);
        // Pre-image for trigger filters / handlers.
        let pre_image = match &op {
            LtapOp::Add(_) => None,
            other => self.inner.get(other.dn())?,
        };
        // Entry the filters evaluate against: new entry for add, pre-image
        // otherwise.
        let affected: Option<&Entry> = match &op {
            LtapOp::Add(e) => Some(e),
            _ => pre_image.as_ref(),
        };
        // Before-triggers.
        let mut handled = false;
        {
            let triggers = self.triggers.read();
            for t in triggers.iter() {
                if t.spec.timing != Timing::Before || !t.spec.matches(&op, affected) {
                    continue;
                }
                self.stats.triggers_fired.fetch_add(1, Ordering::Relaxed);
                let ctx = TriggerContext {
                    op: &op,
                    pre_image: pre_image.as_ref(),
                    origin,
                    directory: self.inner.as_ref(),
                };
                match t.handler.fire(&ctx) {
                    Ok(Disposition::Proceed) => {}
                    Ok(Disposition::Handled) => {
                        handled = true;
                        self.stats
                            .handled_by_trigger
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Err(e) => {
                        self.stats.vetoed.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            }
        }
        if !handled {
            self.apply_inner(&op)?;
        }
        // After-triggers (results ignored).
        let triggers = self.triggers.read();
        for t in triggers.iter() {
            if t.spec.timing != Timing::After || !t.spec.matches(&op, affected) {
                continue;
            }
            self.stats.triggers_fired.fetch_add(1, Ordering::Relaxed);
            let ctx = TriggerContext {
                op: &op,
                pre_image: pre_image.as_ref(),
                origin,
                directory: self.inner.as_ref(),
            };
            let _ = t.handler.fire(&ctx);
        }
        Ok(())
    }

    fn apply_inner(&self, op: &LtapOp) -> Result<()> {
        match op {
            LtapOp::Add(e) => self.inner.add(e.clone()),
            LtapOp::Modify(dn, mods) => self.inner.modify(dn, mods),
            LtapOp::Delete(dn) => self.inner.delete(dn),
            LtapOp::ModifyRdn {
                dn,
                new_rdn,
                delete_old,
                new_superior,
            } => self
                .inner
                .modify_rdn(dn, new_rdn, *delete_old, new_superior.as_ref()),
        }
    }
}

impl Directory for Gateway {
    fn add(&self, entry: Entry) -> Result<()> {
        self.trap(LtapOp::Add(entry), None)
    }

    fn delete(&self, dn: &Dn) -> Result<()> {
        self.trap(LtapOp::Delete(dn.clone()), None)
    }

    fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        self.trap(LtapOp::Modify(dn.clone(), mods.to_vec()), None)
    }

    fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        self.trap(
            LtapOp::ModifyRdn {
                dn: dn.clone(),
                new_rdn: new_rdn.clone(),
                delete_old,
                new_superior: new_superior.cloned(),
            },
            None,
        )
    }

    fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        // Reads pass through untouched — no locks, no quiesce.
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let r = self.inner.search(base, scope, filter, attrs, size_limit);
        self.stats
            .read_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let r = self.inner.compare(dn, attr, value);
        self.stats
            .read_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let r = self
            .inner
            .search_capped(base, scope, filter, attrs, size_limit);
        self.stats
            .read_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let r = self
            .inner
            .search_visit(base, scope, filter, attrs, size_limit, visit);
        self.stats
            .read_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldap::dit::{figure2_tree, Dit};
    use ldap::error::{LdapError, ResultCode};
    use parking_lot::Mutex;

    fn gateway() -> (Arc<Gateway>, Arc<Dit>) {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        (Gateway::new(dit.clone()), dit)
    }

    #[test]
    fn reads_pass_through() {
        let (gw, _dit) = gateway();
        let hits = gw
            .search(
                &Dn::parse("o=Lucent").unwrap(),
                Scope::Sub,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(hits.len(), 9);
        assert_eq!(gw.stats().reads.load(Ordering::Relaxed), 1);
        assert_eq!(gw.stats().updates.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn before_trigger_sees_pre_image_and_proceeds() {
        let (gw, dit) = gateway();
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        gw.register(
            TriggerSpec::all_updates("audit", Dn::parse("o=Lucent").unwrap()),
            Arc::new(move |ctx: &TriggerContext<'_>| {
                let pre = ctx
                    .pre_image
                    .map(|e| e.first("sn").unwrap_or("").to_string())
                    .unwrap_or_default();
                seen2.lock().push(format!("{:?}:{}", ctx.op.kind(), pre));
                Ok(Disposition::Proceed)
            }),
        );
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        gw.modify(&john, &[Modification::set("telephoneNumber", "9123")])
            .unwrap();
        assert_eq!(
            dit.get(&john).unwrap().unwrap().first("telephoneNumber"),
            Some("9123")
        );
        assert_eq!(seen.lock().as_slice(), &["Modify:Doe".to_string()]);
    }

    #[test]
    fn veto_aborts_operation() {
        let (gw, dit) = gateway();
        gw.register(
            TriggerSpec::all_updates("no-deletes", Dn::root()),
            Arc::new(|ctx: &TriggerContext<'_>| {
                if ctx.op.kind() == crate::trigger::OpKind::Delete {
                    Err(LdapError::unwilling("deletes forbidden by policy"))
                } else {
                    Ok(Disposition::Proceed)
                }
            }),
        );
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let err = gw.delete(&john).unwrap_err();
        assert_eq!(err.code, ResultCode::UnwillingToPerform);
        assert!(
            ldap::Dit::exists(&dit, &john),
            "delete must not have been applied"
        );
        assert_eq!(gw.stats().vetoed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn handled_trigger_takes_over_servicing() {
        let (gw, dit) = gateway();
        // The handler rewrites every telephone change to a normalized form
        // and services the operation itself.
        gw.register(
            TriggerSpec::all_updates("normalize", Dn::root()),
            Arc::new(|ctx: &TriggerContext<'_>| {
                if let LtapOp::Modify(dn, mods) = ctx.op {
                    let rewritten: Vec<Modification> = mods
                        .iter()
                        .map(|m| {
                            if m.attr.norm() == "telephonenumber" {
                                Modification::set(
                                    "telephoneNumber",
                                    format!("+1 908 582 {}", m.values[0]),
                                )
                            } else {
                                m.clone()
                            }
                        })
                        .collect();
                    ctx.directory.modify(dn, &rewritten)?;
                    return Ok(Disposition::Handled);
                }
                Ok(Disposition::Proceed)
            }),
        );
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        gw.modify(&john, &[Modification::set("telephoneNumber", "9123")])
            .unwrap();
        assert_eq!(
            dit.get(&john).unwrap().unwrap().first("telephoneNumber"),
            Some("+1 908 582 9123"),
            "the handler's transformed op must be the one applied"
        );
        assert_eq!(gw.stats().handled_by_trigger.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn after_triggers_fire_post_apply() {
        let (gw, _dit) = gateway();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        gw.register(
            TriggerSpec::all_updates("post", Dn::root()).after(),
            Arc::new(move |_: &TriggerContext<'_>| {
                c2.fetch_add(1, Ordering::SeqCst);
                Ok(Disposition::Proceed)
            }),
        );
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        gw.modify(&john, &[Modification::set("telephoneNumber", "1")])
            .unwrap();
        // Failed ops do not fire after-triggers.
        let _ = gw.delete(&Dn::parse("cn=ghost,o=Lucent").unwrap());
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unregister_stops_firing() {
        let (gw, _dit) = gateway();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        let id = gw.register(
            TriggerSpec::all_updates("tmp", Dn::root()),
            Arc::new(move |_: &TriggerContext<'_>| {
                c2.fetch_add(1, Ordering::SeqCst);
                Ok(Disposition::Proceed)
            }),
        );
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        gw.modify(&john, &[Modification::set("description", "a")])
            .unwrap();
        assert!(gw.unregister(id));
        assert!(!gw.unregister(id));
        gw.modify(&john, &[Modification::set("description", "b")])
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn served_over_tcp_as_network_gateway() {
        // §5.5: the gateway deployment — LDAP clients talk to LTAP over the
        // wire; triggers still fire.
        let (gw, dit) = gateway();
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        gw.register(
            TriggerSpec::all_updates("count", Dn::root()),
            Arc::new(move |_: &TriggerContext<'_>| {
                f2.fetch_add(1, Ordering::SeqCst);
                Ok(Disposition::Proceed)
            }),
        );
        let server = ldap::server::Server::start(gw, "127.0.0.1:0").unwrap();
        let client = ldap::client::TcpDirectory::connect(&server.addr().to_string()).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        client
            .modify(&john, &[Modification::set("telephoneNumber", "9123")])
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(
            dit.get(&john).unwrap().unwrap().first("telephoneNumber"),
            Some("9123")
        );
    }
}
