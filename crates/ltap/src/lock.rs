//! Entry-level lock manager (paper §4.3: "LTAP also provides locking
//! facilities, forbidding updates to an entry while trigger processing is
//! being performed on that entry").

use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use std::time::Duration;

/// Locks normalized-DN keys. Fair enough for the workload: waiters block on
/// a condvar and retry.
#[derive(Default)]
pub struct LockManager {
    locked: Mutex<HashSet<String>>,
    cv: Condvar,
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Acquire the lock for `key`, blocking until available.
    pub fn lock(&self, key: impl Into<String>) -> LockGuard<'_> {
        let key = key.into();
        let mut locked = self.locked.lock();
        while locked.contains(&key) {
            self.cv.wait(&mut locked);
        }
        locked.insert(key.clone());
        LockGuard { mgr: self, key }
    }

    /// Acquire with a timeout; `None` when the wait expires (used to avoid
    /// deadlocking the UM against itself in pathological schedules).
    pub fn try_lock_for(&self, key: impl Into<String>, dur: Duration) -> Option<LockGuard<'_>> {
        let key = key.into();
        let deadline = std::time::Instant::now() + dur;
        let mut locked = self.locked.lock();
        while locked.contains(&key) {
            if self.cv.wait_until(&mut locked, deadline).timed_out() {
                return None;
            }
        }
        locked.insert(key.clone());
        Some(LockGuard { mgr: self, key })
    }

    /// Is `key` currently held? (diagnostics/tests)
    pub fn is_locked(&self, key: &str) -> bool {
        self.locked.lock().contains(key)
    }

    /// Number of currently held locks.
    pub fn held(&self) -> usize {
        self.locked.lock().len()
    }
}

/// RAII guard releasing the entry lock on drop.
pub struct LockGuard<'a> {
    mgr: &'a LockManager,
    key: String,
}

impl LockGuard<'_> {
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        let mut locked = self.mgr.locked.lock();
        locked.remove(&self.key);
        self.mgr.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_lock_unlock() {
        let m = LockManager::new();
        {
            let g = m.lock("cn=a");
            assert!(m.is_locked("cn=a"));
            assert_eq!(g.key(), "cn=a");
            assert_eq!(m.held(), 1);
        }
        assert!(!m.is_locked("cn=a"));
    }

    #[test]
    fn distinct_keys_dont_block() {
        let m = LockManager::new();
        let _a = m.lock("cn=a");
        let _b = m.lock("cn=b");
        assert_eq!(m.held(), 2);
    }

    #[test]
    fn try_lock_times_out_and_succeeds() {
        let m = LockManager::new();
        let g = m.lock("cn=a");
        assert!(m.try_lock_for("cn=a", Duration::from_millis(30)).is_none());
        drop(g);
        assert!(m.try_lock_for("cn=a", Duration::from_millis(30)).is_some());
    }

    #[test]
    fn contended_lock_serializes() {
        let m = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _g = m.lock("cn=hot");
                    // Critical section: read-modify-write without tearing.
                    let v = *counter.lock();
                    std::thread::yield_now();
                    *counter.lock() = v + 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 50);
        assert_eq!(m.held(), 0);
    }
}
