//! # ltap — the Lightweight Trigger Access Process
//!
//! A reconstruction of LTAP (Lieuwen, Arlein, Gehani — used by MetaComm,
//! ICDE 2000 §4.3/§5.1): a gateway that pretends to be an LDAP server,
//! intercepting update commands to add *active* (trigger) functionality to
//! trigger-less LDAP servers, plus
//!
//! - entry-level [`lock`]ing while trigger processing runs;
//! - the [`quiesce`] facility and persistent synchronization
//!   [`session`]s MetaComm added (§5.1);
//! - both deployments of §5.5: bind the [`gateway::Gateway`] in-process
//!   (library mode) or serve it over TCP with `ldap::server::Server`
//!   (gateway mode);
//! - the simple LTAP-based [`security`] model §7 mentions: declarative
//!   policies compiled into vetoing before-triggers.

pub mod gateway;
pub mod lock;
pub mod quiesce;
pub mod security;
pub mod session;
pub mod trigger;

pub use gateway::{Gateway, Stats, TriggerId};
pub use lock::{LockGuard, LockManager};
pub use quiesce::QuiesceGate;
pub use security::SecurityPolicy;
pub use session::SyncSession;
pub use trigger::{
    Disposition, LtapOp, OpKind, Timing, TriggerContext, TriggerHandler, TriggerSpec,
};
