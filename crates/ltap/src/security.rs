//! The simple LTAP-based security model (paper §7: "the current system
//! uses a very simple security mechanism (based on the security model of
//! LTAP)").
//!
//! Security is expressed as a *vetoing before-trigger*: a declarative
//! [`SecurityPolicy`] compiled into a [`TriggerHandler`] that rejects
//! disallowed client operations with `InsufficientAccessRights` while the
//! entry lock is held. Operations arriving over tagged persistent
//! connections (MetaComm's own device relays) are trusted and exempt.

use crate::trigger::{Disposition, LtapOp, TriggerContext, TriggerHandler};
use ldap::dn::Dn;
use ldap::entry::ModOp;
use ldap::{LdapError, ResultCode};
use std::sync::Arc;

/// A declarative update-security policy.
#[derive(Debug, Clone, Default)]
pub struct SecurityPolicy {
    /// Attributes ordinary clients may never write (e.g. the
    /// platform-generated `mpMailboxId`).
    readonly_attrs: Vec<String>,
    /// Subtrees ordinary clients may not update at all.
    protected_subtrees: Vec<Dn>,
    /// Deny entry deletion by ordinary clients.
    deny_delete: bool,
    /// Deny renames (ModifyRDN) by ordinary clients.
    deny_rename: bool,
}

impl SecurityPolicy {
    pub fn new() -> SecurityPolicy {
        SecurityPolicy::default()
    }

    /// Forbid clients from writing `attr` (internal relays still can).
    pub fn readonly_attr(mut self, attr: &str) -> Self {
        self.readonly_attrs.push(attr.to_ascii_lowercase());
        self
    }

    /// Forbid all client updates under `base`.
    pub fn protect_subtree(mut self, base: Dn) -> Self {
        self.protected_subtrees.push(base);
        self
    }

    /// Forbid client deletes.
    pub fn deny_delete(mut self) -> Self {
        self.deny_delete = true;
        self
    }

    /// Forbid client renames.
    pub fn deny_rename(mut self) -> Self {
        self.deny_rename = true;
        self
    }

    fn deny(reason: impl std::fmt::Display) -> ldap::Result<Disposition> {
        Err(LdapError::new(
            ResultCode::InsufficientAccessRights,
            format!("denied by security policy: {reason}"),
        ))
    }

    /// Evaluate one trapped operation.
    fn check(&self, ctx: &TriggerContext<'_>) -> ldap::Result<Disposition> {
        // Tagged persistent connections are MetaComm's own relays: trusted.
        if ctx.origin.is_some() {
            return Ok(Disposition::Proceed);
        }
        let dn = ctx.op.dn();
        for base in &self.protected_subtrees {
            if dn.is_within(base) {
                return Self::deny(format_args!("subtree {base} is protected"));
            }
        }
        match ctx.op {
            LtapOp::Delete(_) if self.deny_delete => Self::deny("deletes are disabled"),
            LtapOp::ModifyRdn { .. } if self.deny_rename => Self::deny("renames are disabled"),
            LtapOp::Add(e) => {
                for attr in &self.readonly_attrs {
                    if e.has_attr(attr) {
                        return Self::deny(format_args!("attribute {attr} is read-only"));
                    }
                }
                Ok(Disposition::Proceed)
            }
            LtapOp::Modify(_, mods) => {
                for m in mods {
                    let name = m.attr.norm();
                    if self.readonly_attrs.iter().any(|a| a == name) {
                        // Echoing the existing value back is tolerated
                        // (clients copying an entry through a browser);
                        // changing or clearing it is not.
                        let unchanged = matches!(m.op, ModOp::Replace)
                            && ctx.pre_image.is_some_and(|pre| {
                                let cur = pre.values(name);
                                cur == m.values.as_slice()
                            });
                        if !unchanged {
                            return Self::deny(format_args!("attribute {} is read-only", m.attr));
                        }
                    }
                }
                Ok(Disposition::Proceed)
            }
            _ => Ok(Disposition::Proceed),
        }
    }

    /// Compile the policy into a trigger handler. Register it *before* the
    /// Update Manager's handler so vetoes happen first.
    pub fn into_handler(self) -> Arc<dyn TriggerHandler> {
        Arc::new(move |ctx: &TriggerContext<'_>| self.check(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::Gateway;
    use crate::trigger::TriggerSpec;
    use ldap::dit::{figure2_tree, Dit};
    use ldap::entry::{Entry, Modification};
    use ldap::Directory;

    fn secured(policy: SecurityPolicy) -> (Arc<Gateway>, Arc<Dit>) {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let gw = Gateway::new(dit.clone());
        gw.register(
            TriggerSpec::all_updates("security", Dn::root()),
            policy.into_handler(),
        );
        (gw, dit)
    }

    #[test]
    fn readonly_attribute_enforced() {
        let policy = SecurityPolicy::new().readonly_attr("mpMailboxId");
        let (gw, _dit) = secured(policy);
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        // Plain write denied.
        let err = gw
            .modify(&john, &[Modification::set("mpMailboxId", "MB-999999")])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::InsufficientAccessRights);
        // Other attributes unaffected.
        gw.modify(&john, &[Modification::set("description", "fine")])
            .unwrap();
        // Adds carrying the attribute denied too.
        let mut e = Entry::new(Dn::parse("cn=New,o=Lucent").unwrap());
        e.add_value("objectClass", "person");
        e.add_value("cn", "New");
        e.add_value("sn", "New");
        e.add_value("mpMailboxId", "MB-000001");
        assert_eq!(
            gw.add(e).unwrap_err().code,
            ResultCode::InsufficientAccessRights
        );
    }

    #[test]
    fn echoing_current_value_is_tolerated() {
        let policy = SecurityPolicy::new().readonly_attr("mpMailboxId");
        let (gw, dit) = secured(policy);
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        ldap::Dit::modify(&dit, &john, &[Modification::set("mpMailboxId", "MB-1")]).unwrap();
        // Replacing with the identical value (browser round trip) passes…
        gw.modify(&john, &[Modification::set("mpMailboxId", "MB-1")])
            .unwrap();
        // …but changing it does not.
        assert!(gw
            .modify(&john, &[Modification::set("mpMailboxId", "MB-2")])
            .is_err());
    }

    #[test]
    fn tagged_relays_bypass_the_policy() {
        let policy = SecurityPolicy::new()
            .readonly_attr("mpMailboxId")
            .deny_delete();
        let (gw, _dit) = secured(policy);
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        // An internal persistent connection (MetaComm's relay) may write it.
        gw.apply_tagged(
            crate::trigger::LtapOp::Modify(
                john.clone(),
                vec![Modification::set("mpMailboxId", "MB-000042")],
            ),
            "mp",
        )
        .unwrap();
        // And may delete.
        gw.apply_tagged(crate::trigger::LtapOp::Delete(john), "mp")
            .unwrap();
    }

    #[test]
    fn protected_subtree() {
        let policy =
            SecurityPolicy::new().protect_subtree(Dn::parse("o=Accounting,o=Lucent").unwrap());
        let (gw, _dit) = secured(policy);
        let tim = Dn::parse("cn=Tim Dickens,o=Accounting,o=Lucent").unwrap();
        assert_eq!(
            gw.modify(&tim, &[Modification::set("description", "x")])
                .unwrap_err()
                .code,
            ResultCode::InsufficientAccessRights
        );
        assert_eq!(
            gw.delete(&tim).unwrap_err().code,
            ResultCode::InsufficientAccessRights
        );
        // Outside the subtree: fine.
        let jill = Dn::parse("cn=Jill Lu,o=R&D,o=Lucent").unwrap();
        gw.modify(&jill, &[Modification::set("description", "x")])
            .unwrap();
    }

    #[test]
    fn deny_delete_and_rename() {
        let policy = SecurityPolicy::new().deny_delete().deny_rename();
        let (gw, _dit) = secured(policy);
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        assert!(gw.delete(&john).is_err());
        assert!(gw
            .modify_rdn(&john, &ldap::Rdn::new("cn", "X"), true, None)
            .is_err());
        // Ordinary modifies still pass.
        gw.modify(&john, &[Modification::set("description", "ok")])
            .unwrap();
    }
}
