//! The quiesce facility (paper §5.1): "in order to guarantee that
//! synchronization requests are executed in isolation, all updates must be
//! disallowed while a synchronization request is being processed. To
//! support this, a new quiesce facility was added to LTAP."
//!
//! Semantics: ordinary updates hold a *pass*; a quiesce waits for all
//! outstanding passes to drain and blocks new ones until released.

use parking_lot::{Condvar, Mutex};

#[derive(Default)]
struct State {
    active_updates: usize,
    quiesced: bool,
}

/// Quiesce gate shared by the gateway's update paths.
#[derive(Default)]
pub struct QuiesceGate {
    state: Mutex<State>,
    cv: Condvar,
}

impl QuiesceGate {
    pub fn new() -> QuiesceGate {
        QuiesceGate::default()
    }

    /// Take an update pass, blocking while a quiesce is in force.
    pub fn enter_update(&self) -> UpdatePass<'_> {
        let mut s = self.state.lock();
        while s.quiesced {
            self.cv.wait(&mut s);
        }
        s.active_updates += 1;
        UpdatePass { gate: self }
    }

    /// Quiesce: block new updates and wait for in-flight ones to finish.
    /// Only one quiesce can be in force at a time; a second caller waits.
    pub fn quiesce(&self) -> QuiescePass<'_> {
        let mut s = self.state.lock();
        while s.quiesced {
            self.cv.wait(&mut s);
        }
        s.quiesced = true;
        while s.active_updates > 0 {
            self.cv.wait(&mut s);
        }
        QuiescePass { gate: self }
    }

    /// Is a quiesce currently in force?
    pub fn is_quiesced(&self) -> bool {
        self.state.lock().quiesced
    }

    /// In-flight ordinary updates.
    pub fn active_updates(&self) -> usize {
        self.state.lock().active_updates
    }
}

/// RAII pass held by an ordinary update.
pub struct UpdatePass<'a> {
    gate: &'a QuiesceGate,
}

impl Drop for UpdatePass<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock();
        s.active_updates -= 1;
        self.gate.cv.notify_all();
    }
}

/// RAII pass held by a synchronization session.
pub struct QuiescePass<'a> {
    gate: &'a QuiesceGate,
}

impl Drop for QuiescePass<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock();
        s.quiesced = false;
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn updates_flow_when_not_quiesced() {
        let g = QuiesceGate::new();
        let p1 = g.enter_update();
        let p2 = g.enter_update();
        assert_eq!(g.active_updates(), 2);
        drop(p1);
        drop(p2);
        assert_eq!(g.active_updates(), 0);
    }

    #[test]
    fn quiesce_waits_for_drain_and_blocks_new_updates() {
        let g = Arc::new(QuiesceGate::new());
        let in_quiesce = Arc::new(AtomicUsize::new(0));
        let update_ran_during_quiesce = Arc::new(AtomicUsize::new(0));

        let pass = g.enter_update();
        // Quiesce from another thread: must block until `pass` drops.
        let g2 = g.clone();
        let iq = in_quiesce.clone();
        let ur = update_ran_during_quiesce.clone();
        let g3 = g.clone();
        let quiescer = std::thread::spawn(move || {
            let _q = g2.quiesce();
            iq.store(1, Ordering::SeqCst);
            // While held, a new update must not get through.
            let g4 = g3.clone();
            let ur2 = ur.clone();
            let prober = std::thread::spawn(move || {
                let _p = g4.enter_update();
                ur2.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(
                ur.load(Ordering::SeqCst),
                0,
                "update leaked through quiesce"
            );
            drop(_q);
            prober.join().unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            in_quiesce.load(Ordering::SeqCst),
            0,
            "quiesce should wait for drain"
        );
        drop(pass);
        quiescer.join().unwrap();
        assert_eq!(update_ran_during_quiesce.load(Ordering::SeqCst), 1);
        assert!(!g.is_quiesced());
    }

    #[test]
    fn sequential_quiesces() {
        let g = QuiesceGate::new();
        {
            let _q1 = g.quiesce();
            assert!(g.is_quiesced());
        }
        {
            let _q2 = g.quiesce();
            assert!(g.is_quiesced());
        }
        assert!(!g.is_quiesced());
    }
}
