//! Synchronization sessions — the two LTAP modifications MetaComm required
//! (paper §5.1): *persistent connections* that carry a sequence of updates,
//! and execution in isolation under the *quiesce* facility.

use crate::gateway::Gateway;
use crate::quiesce::QuiescePass;
use ldap::dit::Scope;
use ldap::dn::{Dn, Rdn};
use ldap::entry::{Entry, Modification};
use ldap::error::Result;
use ldap::filter::Filter;
use ldap::Directory;
use std::sync::Arc;

/// An open synchronization session. While it lives, all ordinary updates
/// through the gateway are blocked; the session's own operations go
/// directly to the backing directory without trigger processing (the UM is
/// the one driving the session — re-triggering it would loop).
pub struct SyncSession {
    gateway: Arc<Gateway>,
    // Safety: the pass borrows the gateway's gate; we hold an Arc to the
    // gateway for 'static lifetime, so transmute the pass lifetime.
    _pass: QuiescePass<'static>,
    ops_applied: usize,
}

impl SyncSession {
    pub(crate) fn open(gateway: Arc<Gateway>) -> SyncSession {
        // Acquire the quiesce against the gateway's gate. The gate lives
        // inside `gateway`, which this session keeps alive via Arc, so
        // extending the guard lifetime to 'static is sound.
        let pass = gateway.quiesce_gate().quiesce();
        let pass: QuiescePass<'static> = unsafe { std::mem::transmute(pass) };
        SyncSession {
            gateway,
            _pass: pass,
            ops_applied: 0,
        }
    }

    /// Number of operations applied in this session.
    pub fn ops_applied(&self) -> usize {
        self.ops_applied
    }

    fn dir(&self) -> &Arc<dyn Directory> {
        self.gateway.inner()
    }

    pub fn add(&mut self, entry: Entry) -> Result<()> {
        self.dir().add(entry)?;
        self.ops_applied += 1;
        Ok(())
    }

    pub fn delete(&mut self, dn: &Dn) -> Result<()> {
        self.dir().delete(dn)?;
        self.ops_applied += 1;
        Ok(())
    }

    pub fn modify(&mut self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        self.dir().modify(dn, mods)?;
        self.ops_applied += 1;
        Ok(())
    }

    pub fn modify_rdn(
        &mut self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        self.dir()
            .modify_rdn(dn, new_rdn, delete_old, new_superior)?;
        self.ops_applied += 1;
        Ok(())
    }

    /// Reads within the session (consistency checks during resync).
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        self.dir().search(base, scope, filter, attrs, size_limit)
    }

    pub fn get(&self, dn: &Dn) -> Result<Option<Entry>> {
        self.dir().get(dn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::{Disposition, TriggerContext, TriggerSpec};
    use ldap::dit::{figure2_tree, Dit};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn session_applies_without_triggering() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let gw = Gateway::new(dit);
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        gw.register(
            TriggerSpec::all_updates("um", Dn::root()),
            Arc::new(move |_: &TriggerContext<'_>| {
                f2.fetch_add(1, Ordering::SeqCst);
                Ok(Disposition::Proceed)
            }),
        );
        let mut session = gw.begin_sync();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        session
            .modify(&john, &[Modification::set("telephoneNumber", "9001")])
            .unwrap();
        session
            .modify(&john, &[Modification::set("roomNumber", "2B-401")])
            .unwrap();
        assert_eq!(session.ops_applied(), 2);
        assert_eq!(fired.load(Ordering::SeqCst), 0, "sync must not re-trigger");
        assert_eq!(
            session.get(&john).unwrap().unwrap().first("roomNumber"),
            Some("2B-401")
        );
        drop(session);
        // Ordinary updates trigger again afterwards.
        gw.modify(&john, &[Modification::set("description", "x")])
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn session_blocks_ordinary_updates_until_dropped() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let gw = Gateway::new(dit);
        let session = gw.begin_sync();
        let gw2 = gw;
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = done.clone();
        let updater = std::thread::spawn(move || {
            let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
            gw2.modify(&john, &[Modification::set("description", "later")])
                .unwrap();
            d2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            done.load(Ordering::SeqCst),
            0,
            "update ran during sync isolation"
        );
        drop(session);
        updater.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
