//! Trigger specifications and handler interface.

use ldap::dn::{Dn, Rdn};
use ldap::entry::{Entry, Modification};
use ldap::filter::Filter;
use ldap::Directory;

/// The update operations LTAP can trap.
#[derive(Debug, Clone, PartialEq)]
pub enum LtapOp {
    Add(Entry),
    Modify(Dn, Vec<Modification>),
    Delete(Dn),
    ModifyRdn {
        dn: Dn,
        new_rdn: Rdn,
        delete_old: bool,
        new_superior: Option<Dn>,
    },
}

impl LtapOp {
    /// The DN the operation addresses (the pre-rename DN for ModifyRdn).
    pub fn dn(&self) -> &Dn {
        match self {
            LtapOp::Add(e) => e.dn(),
            LtapOp::Modify(dn, _) => dn,
            LtapOp::Delete(dn) => dn,
            LtapOp::ModifyRdn { dn, .. } => dn,
        }
    }

    pub fn kind(&self) -> OpKind {
        match self {
            LtapOp::Add(_) => OpKind::Add,
            LtapOp::Modify(..) => OpKind::Modify,
            LtapOp::Delete(_) => OpKind::Delete,
            LtapOp::ModifyRdn { .. } => OpKind::ModifyRdn,
        }
    }
}

/// Operation kinds for trigger masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Add,
    Modify,
    Delete,
    ModifyRdn,
}

/// When the trigger fires relative to servicing the command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timing {
    /// Fires while the entry lock is held, before the server applies the
    /// command; may veto (error) or take over servicing ([`Disposition::Handled`]).
    Before,
    /// Fires after a successful apply; return values are ignored.
    After,
}

/// What a before-trigger tells the gateway to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Continue: apply the original operation.
    Proceed,
    /// The handler serviced the operation itself (possibly transformed);
    /// the gateway must not apply the original.
    Handled,
}

/// A trigger registration: which operations, where in the tree, and an
/// optional entry filter.
#[derive(Debug, Clone)]
pub struct TriggerSpec {
    pub name: String,
    pub timing: Timing,
    pub ops: Vec<OpKind>,
    /// Subtree the trigger watches (root = everything).
    pub base: Dn,
    /// Optional filter over the affected entry (pre-image for
    /// modify/delete/rename, the new entry for add).
    pub filter: Option<Filter>,
}

impl TriggerSpec {
    /// A before-trigger on every update under `base`.
    pub fn all_updates(name: impl Into<String>, base: Dn) -> TriggerSpec {
        TriggerSpec {
            name: name.into(),
            timing: Timing::Before,
            ops: vec![
                OpKind::Add,
                OpKind::Modify,
                OpKind::Delete,
                OpKind::ModifyRdn,
            ],
            base,
            filter: None,
        }
    }

    pub fn after(mut self) -> TriggerSpec {
        self.timing = Timing::After;
        self
    }

    pub fn with_filter(mut self, f: Filter) -> TriggerSpec {
        self.filter = Some(f);
        self
    }

    pub fn matches(&self, op: &LtapOp, affected: Option<&Entry>) -> bool {
        if !self.ops.contains(&op.kind()) {
            return false;
        }
        if !op.dn().is_within(&self.base) {
            return false;
        }
        match (&self.filter, affected) {
            (Some(f), Some(e)) => f.matches(e),
            (Some(_), None) => false,
            (None, _) => true,
        }
    }
}

/// Context handed to a firing trigger.
pub struct TriggerContext<'a> {
    pub op: &'a LtapOp,
    /// Entry image before the operation (None for Add).
    pub pre_image: Option<&'a Entry>,
    /// Origin tag carried by persistent-connection clients (MetaComm device
    /// filters relaying DDUs tag their operations with the device name);
    /// `None` for ordinary LDAP clients.
    pub origin: Option<&'a str>,
    /// The directory behind the gateway. A `Handled` trigger uses this to
    /// service the (possibly transformed) operation itself; the entry lock
    /// is already held by the gateway.
    pub directory: &'a dyn Directory,
}

/// Trigger callbacks. For [`Timing::Before`] triggers the result decides
/// whether the gateway proceeds; an `Err` aborts the client operation with
/// that error. For [`Timing::After`] triggers the result is ignored.
pub trait TriggerHandler: Send + Sync {
    fn fire(&self, ctx: &TriggerContext<'_>) -> ldap::Result<Disposition>;
}

/// Closures are handlers.
impl<F> TriggerHandler for F
where
    F: Fn(&TriggerContext<'_>) -> ldap::Result<Disposition> + Send + Sync,
{
    fn fire(&self, ctx: &TriggerContext<'_>) -> ldap::Result<Disposition> {
        self(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dn: &str) -> Entry {
        Entry::with_attrs(
            Dn::parse(dn).unwrap(),
            [("objectClass", "person"), ("cn", "X"), ("sn", "X")],
        )
    }

    #[test]
    fn spec_matching() {
        let spec = TriggerSpec::all_updates("t", Dn::parse("o=Lucent").unwrap());
        let op = LtapOp::Delete(Dn::parse("cn=X,o=Marketing,o=Lucent").unwrap());
        assert!(spec.matches(&op, Some(&entry("cn=X,o=Marketing,o=Lucent"))));
        let outside = LtapOp::Delete(Dn::parse("cn=X,o=Other").unwrap());
        assert!(!spec.matches(&outside, None));
    }

    #[test]
    fn op_mask() {
        let spec = TriggerSpec {
            name: "adds-only".into(),
            timing: Timing::Before,
            ops: vec![OpKind::Add],
            base: Dn::root(),
            filter: None,
        };
        assert!(spec.matches(&LtapOp::Add(entry("cn=X,o=L")), Some(&entry("cn=X,o=L"))));
        assert!(!spec.matches(&LtapOp::Delete(Dn::parse("cn=X,o=L").unwrap()), None));
    }

    #[test]
    fn filter_scoping() {
        let spec = TriggerSpec::all_updates("t", Dn::root())
            .with_filter(Filter::parse("(objectClass=person)").unwrap());
        let e = entry("cn=X,o=L");
        let op = LtapOp::Modify(e.dn().clone(), vec![]);
        assert!(spec.matches(&op, Some(&e)));
        let org = Entry::with_attrs(
            Dn::parse("o=L").unwrap(),
            [("objectClass", "organization"), ("o", "L")],
        );
        let op2 = LtapOp::Modify(org.dn().clone(), vec![]);
        assert!(!spec.matches(&op2, Some(&org)));
        // Filtered trigger with no affected image: no match.
        assert!(!spec.matches(&op, None));
    }

    #[test]
    fn op_dn_extraction() {
        let dn = Dn::parse("cn=X,o=L").unwrap();
        assert_eq!(
            LtapOp::ModifyRdn {
                dn: dn.clone(),
                new_rdn: Rdn::new("cn", "Y"),
                delete_old: true,
                new_superior: None,
            }
            .dn(),
            &dn
        );
        assert_eq!(LtapOp::Modify(dn, vec![]).kind(), OpKind::Modify);
    }
}
