//! A standalone LDAP server: serve an LDIF file (or the paper's Figure 2
//! sample tree) over TCP.
//!
//! ```text
//! cargo run -p ldap --example server -- 127.0.0.1:3890
//! cargo run -p ldap --example server -- 127.0.0.1:3890 data.ldif
//! ```

use ldap::dit::{figure2_tree, Dit};
use ldap::ldif::{parse, Record};
use ldap::server::Server;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:3890".into());
    let dit = Dit::new();
    match args.next() {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("read LDIF file");
            let mut n = 0;
            for record in parse(&text).expect("parse LDIF") {
                match record {
                    Record::Content(e) | Record::Add(e) => {
                        ldap::Dit::add(&dit, e).expect("load entry");
                        n += 1;
                    }
                    other => panic!("only content records supported at load: {other:?}"),
                }
            }
            eprintln!("loaded {n} entries from {path}");
        }
        None => {
            figure2_tree(&dit).expect("sample tree");
            eprintln!("no LDIF given; serving the paper's Figure 2 sample tree");
        }
    }
    let server = Server::start(dit, &addr).expect("bind");
    eprintln!("ldap server listening on {}", server.addr());
    eprintln!(
        "try: cargo run -p ldap --example ldaptool -- {} search '(objectClass=person)'",
        server.addr()
    );
    loop {
        std::thread::park();
    }
}
