//! A miniature ldapsearch/ldapmodify: the "any LDAP tool" of the paper,
//! speaking BER/LDAPv3 over TCP.
//!
//! ```text
//! ldaptool <addr> search <filter> [base] [attr...]   # print entries as LDIF
//! ldaptool <addr> modify                              # read change records
//!                                                     # (LDIF) from stdin
//! ldaptool <addr> delete <dn>
//! ldaptool <addr> compare <dn> <attr> <value>
//! ```

use ldap::client::TcpDirectory;
use ldap::ldif::{parse, to_ldif, Record};
use ldap::{Directory, Dn, Filter, Scope};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let dir = TcpDirectory::connect(&args[0]).expect("connect");
    match args[1].as_str() {
        "search" if args.len() >= 3 => {
            let filter = Filter::parse(&args[2]).expect("filter");
            let base = Dn::parse(args.get(3).map(String::as_str).unwrap_or("")).expect("base DN");
            let attrs: Vec<String> = args.iter().skip(4).cloned().collect();
            let hits = dir
                .search(&base, Scope::Sub, &filter, &attrs, 0)
                .expect("search");
            print!("{}", to_ldif(&hits));
            eprintln!("# {} entries", hits.len());
        }
        "modify" => {
            let mut text = String::new();
            std::io::stdin().read_to_string(&mut text).expect("stdin");
            let mut applied = 0;
            for record in parse(&text).expect("parse LDIF") {
                match record {
                    Record::Content(e) | Record::Add(e) => dir.add(e).expect("add"),
                    Record::Delete(dn) => dir.delete(&dn).expect("delete"),
                    Record::Modify(dn, mods) => dir.modify(&dn, &mods).expect("modify"),
                    Record::ModRdn {
                        dn,
                        new_rdn,
                        delete_old,
                        new_superior,
                    } => dir
                        .modify_rdn(&dn, &new_rdn, delete_old, new_superior.as_ref())
                        .expect("modrdn"),
                }
                applied += 1;
            }
            eprintln!("# applied {applied} change records");
        }
        "delete" if args.len() == 3 => {
            dir.delete(&Dn::parse(&args[2]).expect("dn"))
                .expect("delete");
            eprintln!("# deleted {}", args[2]);
        }
        "compare" if args.len() == 5 => {
            let hit = dir
                .compare(&Dn::parse(&args[2]).expect("dn"), &args[3], &args[4])
                .expect("compare");
            println!("{}", if hit { "TRUE" } else { "FALSE" });
        }
        _ => usage(),
    }
    dir.unbind();
}

fn usage() -> ! {
    eprintln!(
        "usage: ldaptool <addr> search <filter> [base] [attr...]\n       \
         ldaptool <addr> modify   (LDIF change records on stdin)\n       \
         ldaptool <addr> delete <dn>\n       \
         ldaptool <addr> compare <dn> <attr> <value>"
    );
    std::process::exit(2);
}
