//! LDAP result codes and the crate-wide error type.
//!
//! Result codes follow RFC 2251 §4.1.10; only the subset a directory server
//! actually returns is enumerated, everything else maps to [`ResultCode::Other`].

use std::fmt;

/// LDAP result codes (RFC 2251 §4.1.10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ResultCode {
    Success = 0,
    OperationsError = 1,
    ProtocolError = 2,
    TimeLimitExceeded = 3,
    SizeLimitExceeded = 4,
    CompareFalse = 5,
    CompareTrue = 6,
    AuthMethodNotSupported = 7,
    NoSuchAttribute = 16,
    UndefinedAttributeType = 17,
    ConstraintViolation = 19,
    AttributeOrValueExists = 20,
    InvalidAttributeSyntax = 21,
    NoSuchObject = 32,
    InvalidDnSyntax = 34,
    InvalidCredentials = 49,
    InsufficientAccessRights = 50,
    Busy = 51,
    Unavailable = 52,
    UnwillingToPerform = 53,
    NamingViolation = 64,
    ObjectClassViolation = 65,
    NotAllowedOnNonLeaf = 66,
    NotAllowedOnRdn = 67,
    EntryAlreadyExists = 68,
    ObjectClassModsProhibited = 69,
    Other = 80,
}

impl ResultCode {
    /// Numeric wire value of the code.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Inverse of [`ResultCode::code`]; unknown values map to `Other`.
    pub fn from_code(code: u32) -> ResultCode {
        use ResultCode::*;
        match code {
            0 => Success,
            1 => OperationsError,
            2 => ProtocolError,
            3 => TimeLimitExceeded,
            4 => SizeLimitExceeded,
            5 => CompareFalse,
            6 => CompareTrue,
            7 => AuthMethodNotSupported,
            16 => NoSuchAttribute,
            17 => UndefinedAttributeType,
            19 => ConstraintViolation,
            20 => AttributeOrValueExists,
            21 => InvalidAttributeSyntax,
            32 => NoSuchObject,
            34 => InvalidDnSyntax,
            49 => InvalidCredentials,
            50 => InsufficientAccessRights,
            51 => Busy,
            52 => Unavailable,
            53 => UnwillingToPerform,
            64 => NamingViolation,
            65 => ObjectClassViolation,
            66 => NotAllowedOnNonLeaf,
            67 => NotAllowedOnRdn,
            68 => EntryAlreadyExists,
            69 => ObjectClassModsProhibited,
            _ => Other,
        }
    }

    /// `true` for `Success`, `CompareTrue` and `CompareFalse` — the codes
    /// that do not indicate a failed operation.
    pub fn is_non_error(self) -> bool {
        matches!(
            self,
            ResultCode::Success | ResultCode::CompareTrue | ResultCode::CompareFalse
        )
    }
}

impl fmt::Display for ResultCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}({})", self, self.code())
    }
}

/// Crate-wide error: an LDAP result code plus a human-readable diagnostic,
/// mirroring the `LDAPResult` wire structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdapError {
    pub code: ResultCode,
    pub message: String,
}

impl LdapError {
    pub fn new(code: ResultCode, message: impl Into<String>) -> Self {
        LdapError {
            code,
            message: message.into(),
        }
    }

    pub fn no_such_object(dn: impl fmt::Display) -> Self {
        Self::new(ResultCode::NoSuchObject, format!("no such object: {dn}"))
    }

    pub fn already_exists(dn: impl fmt::Display) -> Self {
        Self::new(
            ResultCode::EntryAlreadyExists,
            format!("entry already exists: {dn}"),
        )
    }

    pub fn invalid_dn(detail: impl fmt::Display) -> Self {
        Self::new(ResultCode::InvalidDnSyntax, format!("invalid DN: {detail}"))
    }

    pub fn protocol(detail: impl fmt::Display) -> Self {
        Self::new(ResultCode::ProtocolError, detail.to_string())
    }

    pub fn unwilling(detail: impl fmt::Display) -> Self {
        Self::new(ResultCode::UnwillingToPerform, detail.to_string())
    }
}

impl fmt::Display for LdapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for LdapError {}

impl From<std::io::Error> for LdapError {
    fn from(e: std::io::Error) -> Self {
        LdapError::new(ResultCode::Unavailable, format!("i/o error: {e}"))
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LdapError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_code_round_trip() {
        for code in [
            ResultCode::Success,
            ResultCode::NoSuchObject,
            ResultCode::EntryAlreadyExists,
            ResultCode::ObjectClassViolation,
            ResultCode::NotAllowedOnNonLeaf,
            ResultCode::CompareTrue,
            ResultCode::CompareFalse,
            ResultCode::InvalidDnSyntax,
        ] {
            assert_eq!(ResultCode::from_code(code.code()), code);
        }
    }

    #[test]
    fn unknown_code_maps_to_other() {
        assert_eq!(ResultCode::from_code(9999), ResultCode::Other);
    }

    #[test]
    fn non_error_codes() {
        assert!(ResultCode::Success.is_non_error());
        assert!(ResultCode::CompareTrue.is_non_error());
        assert!(ResultCode::CompareFalse.is_non_error());
        assert!(!ResultCode::NoSuchObject.is_non_error());
    }

    #[test]
    fn error_display_contains_code_and_message() {
        let e = LdapError::no_such_object("cn=x,o=y");
        let s = e.to_string();
        assert!(s.contains("NoSuchObject"));
        assert!(s.contains("cn=x,o=y"));
    }
}
