//! The Directory Information Tree: an in-memory hierarchical entry store
//! implementing the LDAP update and search operations.
//!
//! Faithful to the paper's constraints:
//! - each individual update (add / delete / modify / modifyRDN) is atomic;
//! - there is **no way to group updates into a transaction** — a
//!   ModifyRDN+Modify pair is two separately observable steps (§5.1);
//! - deletes apply to leaves only;
//! - RDN uniqueness among siblings is enforced.
//!
//! ## Equality indexes
//!
//! Searches over equality (and AND-with-equality) filters are served from
//! per-attribute equality indexes instead of a full subtree scan. The
//! indexes are maintained inside the same write lock as every update, so
//! they are always consistent with the entry map, and the planner re-runs
//! the full filter over each candidate — results are bit-identical to the
//! scan path, in the same (BFS, parents-first) order, including size-limit
//! behavior. See [`DEFAULT_INDEXED_ATTRS`] and [`Dit::with_schema_indexed`].
//!
//! ## Storage representations
//!
//! Two interchangeable backings sit behind every operation (DESIGN.md §16):
//!
//! - **Compact** (the default): a DN arena maps each normalized DN to a
//!   `u32` [`DnId`]; entries, sibling lists, and index postings all hold
//!   ids instead of duplicated key `String`s, entries use the flattened
//!   interned attribute representation, and a bulk-load mode
//!   ([`Dit::begin_bulk`]) defers index and sibling-order maintenance to
//!   one build pass — this is what makes million-entry cold starts fit in
//!   memory and time budgets.
//! - **Legacy** (`with_compact_store(false)` on the builder): the original
//!   string-keyed maps, kept as the ablation baseline until parity is
//!   proven (tests/prop_compact_store.rs pins search-stream, LDIF, and
//!   restart-digest identity).
//!
//! Every search path produces bit-identical streams on both backings: the
//! compact arm's sibling lists are sorted by full normalized key, which is
//! exactly the order the legacy `BTreeSet`s iterate in.

use crate::attr::norm_value;
use crate::dn::{Dn, Rdn};
use crate::entry::{Entry, Modification};
use crate::error::{LdapError, Result, ResultCode};
use crate::filter::Filter;
use crate::schema::{Schema, SchemaRef};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Search scopes (RFC 2251 §4.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Immediate children of the base.
    One,
    /// The base and all descendants.
    Sub,
}

impl Scope {
    pub fn code(self) -> u32 {
        match self {
            Scope::Base => 0,
            Scope::One => 1,
            Scope::Sub => 2,
        }
    }

    pub fn from_code(c: u32) -> Result<Scope> {
        match c {
            0 => Ok(Scope::Base),
            1 => Ok(Scope::One),
            2 => Ok(Scope::Sub),
            _ => Err(LdapError::protocol(format!("bad scope {c}"))),
        }
    }
}

/// What changed, for observers (replication, tests).
#[derive(Debug, Clone)]
pub enum ChangeOp {
    Add(Entry),
    Delete,
    Modify(Vec<Modification>),
    ModifyRdn {
        new_rdn: Rdn,
        delete_old: bool,
        new_superior: Option<Dn>,
    },
}

/// A committed change, in commit order.
#[derive(Debug, Clone)]
pub struct ChangeRecord {
    /// Monotonic commit sequence number of this DIT.
    pub seq: u64,
    /// DN the operation addressed (pre-rename DN for ModifyRdn).
    pub dn: Dn,
    pub op: ChangeOp,
}

type Observer = Box<dyn Fn(&ChangeRecord) + Send + Sync>;

/// Attributes indexed by default: the hot lookups in a MetaComm deployment
/// (person searches by class/name/extension, plus the lexpress
/// `lastUpdater` origin attribute).
pub const DEFAULT_INDEXED_ATTRS: &[&str] = &["objectClass", "cn", "telephoneNumber", "lastUpdater"];

/// Arena id of an entry in the compact store: a `u32` that stands in for
/// the normalized DN key everywhere the legacy representation stores a
/// `String` — entry map, sibling lists, index postings.
type DnId = u32;

/// What the filter planner decided for one search, generic over the
/// posting-set type (`BTreeSet<String>` on the legacy arm, `HashSet<DnId>`
/// on the compact arm).
enum PlanOf<T> {
    /// Serve from this posting list (smallest among the filter's indexed
    /// equality conjuncts); every candidate is re-verified with the full
    /// filter.
    Candidates(T),
    /// An indexed equality conjunct matches no entry at all: the result is
    /// provably empty, no traversal needed.
    Empty,
    /// No indexed equality conjunct applies: fall back to the scan.
    Scan,
}

/// Walk the filter for indexed equality conjuncts and pick the smallest
/// posting list. Applicability rules (DESIGN.md §10): a top-level equality
/// on an indexed attribute, or an `&` whose conjuncts (nested `&`s
/// flatten) include one — anything else scans. A missing posting for an
/// indexed conjunct proves the result empty.
fn plan_postings<'a, S>(
    postings: &'a HashMap<String, HashMap<String, S>>,
    filter: &Filter,
    size_of: fn(&S) -> usize,
) -> PlanOf<&'a S> {
    if postings.is_empty() {
        return PlanOf::Scan;
    }
    let mut conjuncts: Vec<(&str, &str)> = Vec::new();
    match filter {
        Filter::Equality(..) | Filter::And(_) => collect_eq(filter, &mut conjuncts),
        _ => return PlanOf::Scan,
    }
    let mut best: Option<&'a S> = None;
    for (attr, value) in conjuncts {
        let Some(m) = postings.get(&attr.to_ascii_lowercase()) else {
            continue;
        };
        match m.get(&norm_value(value)) {
            None => return PlanOf::Empty,
            Some(set) => {
                if best.is_none_or(|b| size_of(set) < size_of(b)) {
                    best = Some(set);
                }
            }
        }
    }
    match best {
        Some(set) => PlanOf::Candidates(set),
        None => PlanOf::Scan,
    }
}

/// Equality conjuncts of a filter: the filter itself, or — through nested
/// `&`s, which are conjunctive — every equality child.
fn collect_eq<'f>(f: &'f Filter, out: &mut Vec<(&'f str, &'f str)>) {
    match f {
        Filter::Equality(a, v) => out.push((a, v)),
        Filter::And(fs) => {
            for c in fs {
                collect_eq(c, out);
            }
        }
        _ => {}
    }
}

/// Per-attribute equality index of the legacy backing: normalized value →
/// the normalized DN keys of every entry carrying it. Lives inside the
/// store so maintenance shares the update ops' write lock.
struct AttrIndex {
    /// norm attr name → norm value → posting list of norm entry keys.
    postings: HashMap<String, HashMap<String, BTreeSet<String>>>,
}

impl AttrIndex {
    fn new(attrs: &[String]) -> AttrIndex {
        let mut postings = HashMap::new();
        for a in attrs {
            postings.insert(a.to_ascii_lowercase(), HashMap::new());
        }
        AttrIndex { postings }
    }

    fn enabled(&self) -> bool {
        !self.postings.is_empty()
    }

    fn insert_entry(&mut self, key: &str, e: &Entry) {
        if !self.enabled() {
            return;
        }
        for attr in e.attributes() {
            if let Some(m) = self.postings.get_mut(attr.name.norm()) {
                for v in &attr.values {
                    m.entry(norm_value(v)).or_default().insert(key.to_string());
                }
            }
        }
    }

    fn remove_entry(&mut self, key: &str, e: &Entry) {
        if !self.enabled() {
            return;
        }
        for attr in e.attributes() {
            if let Some(m) = self.postings.get_mut(attr.name.norm()) {
                for v in &attr.values {
                    let nv = norm_value(v);
                    if let Some(set) = m.get_mut(&nv) {
                        set.remove(key);
                        if set.is_empty() {
                            m.remove(&nv);
                        }
                    }
                }
            }
        }
    }

    fn plan(&self, filter: &Filter) -> PlanOf<&BTreeSet<String>> {
        plan_postings(&self.postings, filter, BTreeSet::len)
    }
}

/// Equality index of the compact backing: postings hold 4-byte [`DnId`]s
/// in `HashSet`s instead of DN `String`s in `BTreeSet`s. Candidate order
/// is recovered at query time by sorting survivors by arena key — a few
/// comparisons on what is typically a small candidate set, in exchange
/// for posting lists an order of magnitude smaller.
struct IdIndex {
    postings: HashMap<String, HashMap<String, HashSet<DnId>>>,
}

impl IdIndex {
    fn new(attrs: &[String]) -> IdIndex {
        let mut postings = HashMap::new();
        for a in attrs {
            postings.insert(a.to_ascii_lowercase(), HashMap::new());
        }
        IdIndex { postings }
    }

    fn enabled(&self) -> bool {
        !self.postings.is_empty()
    }

    fn insert_entry(&mut self, id: DnId, e: &Entry) {
        if !self.enabled() {
            return;
        }
        for attr in e.attributes() {
            if let Some(m) = self.postings.get_mut(attr.name.norm()) {
                for v in &attr.values {
                    m.entry(norm_value(v)).or_default().insert(id);
                }
            }
        }
    }

    fn remove_entry(&mut self, id: DnId, e: &Entry) {
        if !self.enabled() {
            return;
        }
        for attr in e.attributes() {
            if let Some(m) = self.postings.get_mut(attr.name.norm()) {
                for v in &attr.values {
                    let nv = norm_value(v);
                    if let Some(set) = m.get_mut(&nv) {
                        set.remove(&id);
                        if set.is_empty() {
                            m.remove(&nv);
                        }
                    }
                }
            }
        }
    }

    fn plan(&self, filter: &Filter) -> PlanOf<&HashSet<DnId>> {
        plan_postings(&self.postings, filter, HashSet::len)
    }
}

/// The original string-keyed representation, kept as the E18 ablation
/// baseline (`with_compact_store(false)`).
struct LegacyStore {
    /// norm DN key → entry
    entries: HashMap<String, Entry>,
    /// norm parent key → norm child keys ("" is the DIT root)
    children: HashMap<String, BTreeSet<String>>,
    index: AttrIndex,
}

impl LegacyStore {
    fn new(indexed_attrs: &[String]) -> LegacyStore {
        let mut children = HashMap::new();
        children.insert(String::new(), BTreeSet::new());
        LegacyStore {
            entries: HashMap::new(),
            children,
            index: AttrIndex::new(indexed_attrs),
        }
    }

    fn search_one(
        &self,
        base_key: &str,
        filter: &Filter,
        push: &mut dyn FnMut(&Entry) -> Result<()>,
    ) -> Result<()> {
        match self.index.plan(filter) {
            PlanOf::Empty => {}
            PlanOf::Candidates(keys) => {
                if let Some(kids) = self.children.get(base_key) {
                    // Both sets iterate in norm-key order; siblings share a
                    // suffix, so this is exactly the scan order.
                    for k in keys {
                        if kids.contains(k) {
                            push(&self.entries[k])?;
                        }
                    }
                }
            }
            PlanOf::Scan => {
                if let Some(kids) = self.children.get(base_key) {
                    for k in kids {
                        push(&self.entries[k])?;
                    }
                }
            }
        }
        Ok(())
    }

    fn search_sub(
        &self,
        base: &Dn,
        base_key: &str,
        filter: &Filter,
        push: &mut dyn FnMut(&Entry) -> Result<()>,
    ) -> Result<()> {
        match self.index.plan(filter) {
            PlanOf::Empty => {}
            PlanOf::Candidates(keys) => {
                // Restrict candidates to the subtree, then emit in BFS
                // order: by depth, then by the chain of ancestor keys
                // (BTreeSet sibling order at every level) — the exact
                // order the scan's queue produces.
                let mut cands: Vec<(usize, Vec<String>, &String)> = keys
                    .iter()
                    .filter_map(|k| {
                        let e = self.entries.get(k)?;
                        if !base.is_root() && !e.dn().is_within(base) {
                            return None;
                        }
                        let chain = ancestor_chain(e.dn());
                        Some((chain.len(), chain, k))
                    })
                    .collect();
                cands.sort();
                for (_, _, k) in &cands {
                    push(&self.entries[*k])?;
                }
            }
            PlanOf::Scan => {
                visit_subtree(self, base_key, &mut |k| {
                    if k.is_empty() {
                        return Ok(()); // virtual root
                    }
                    push(&self.entries[k])
                })?;
            }
        }
        Ok(())
    }
}

/// One arena slot of the compact backing: the entry, its interned full
/// normalized key (shared with the id map), and the tree links as ids.
struct CompactNode {
    key: Arc<str>,
    entry: Entry,
    /// `None` means the parent is the virtual DIT root.
    parent: Option<DnId>,
    /// Sorted by the children's full normalized keys — identical iteration
    /// order to the legacy `BTreeSet<String>` (siblings share their
    /// suffix). Unsorted while a bulk load is active.
    children: Vec<DnId>,
}

/// The compact backing: DN arena + id-keyed tree and index.
struct CompactStore {
    /// norm DN key → arena id. Keys are the same `Arc<str>`s the nodes
    /// hold, so each DN string exists exactly once in the process.
    ids: HashMap<Arc<str>, DnId>,
    slots: Vec<Option<CompactNode>>,
    /// Freed ids, reused by later inserts.
    free: Vec<DnId>,
    /// Children of the virtual root, sorted like [`CompactNode::children`].
    root_children: Vec<DnId>,
    index: IdIndex,
    /// Bulk-load nesting depth (see [`Dit::begin_bulk`]): while non-zero,
    /// sibling lists append unsorted and the index is not maintained —
    /// `finish_bulk_build` restores both invariants in one pass.
    bulk: u32,
}

impl CompactStore {
    fn new(indexed_attrs: &[String]) -> CompactStore {
        CompactStore {
            ids: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            root_children: Vec::new(),
            index: IdIndex::new(indexed_attrs),
            bulk: 0,
        }
    }

    fn node(&self, id: DnId) -> &CompactNode {
        self.slots[id as usize].as_ref().expect("live id")
    }

    fn node_mut(&mut self, id: DnId) -> &mut CompactNode {
        self.slots[id as usize].as_mut().expect("live id")
    }

    fn id_of(&self, key: &str) -> Option<DnId> {
        self.ids.get(key).copied()
    }

    fn get_entry(&self, key: &str) -> Option<&Entry> {
        self.id_of(key).map(|id| &self.node(id).entry)
    }

    fn children_of(&self, parent: Option<DnId>) -> &[DnId] {
        match parent {
            Some(p) => &self.node(p).children,
            None => &self.root_children,
        }
    }

    /// Is `id` a strict descendant of `ancestor`?
    fn is_under(&self, mut id: DnId, ancestor: DnId) -> bool {
        while let Some(p) = self.node(id).parent {
            if p == ancestor {
                return true;
            }
            id = p;
        }
        false
    }

    fn alloc(&mut self, node: CompactNode) -> DnId {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(node);
                id
            }
            None => {
                let id = DnId::try_from(self.slots.len()).expect("DnId space exhausted");
                self.slots.push(Some(node));
                id
            }
        }
    }

    /// Splice `id` into its parent's sibling list at the key-sorted
    /// position (append unsorted during bulk loads).
    fn link_child(&mut self, parent: Option<DnId>, id: DnId) {
        if self.bulk > 0 {
            match parent {
                Some(p) => self.node_mut(p).children.push(id),
                None => self.root_children.push(id),
            }
            return;
        }
        let key = self.node(id).key.clone();
        let pos = {
            let sibs = self.children_of(parent);
            sibs.binary_search_by(|&c| self.node(c).key.as_ref().cmp(key.as_ref()))
                .unwrap_err()
        };
        match parent {
            Some(p) => self.node_mut(p).children.insert(pos, id),
            None => self.root_children.insert(pos, id),
        }
    }

    fn unlink_child(&mut self, parent: Option<DnId>, id: DnId) {
        let pos = {
            let sibs = self.children_of(parent);
            if self.bulk > 0 {
                sibs.iter().position(|&c| c == id)
            } else {
                let key = &self.node(id).key;
                sibs.binary_search_by(|&c| self.node(c).key.as_ref().cmp(key.as_ref()))
                    .ok()
            }
        }
        .expect("child is linked under its parent");
        match parent {
            Some(p) => {
                self.node_mut(p).children.remove(pos);
            }
            None => {
                self.root_children.remove(pos);
            }
        }
    }

    /// Insert an entry whose parent existence and key uniqueness the
    /// caller has already checked.
    fn insert_entry(&mut self, key: &str, parent_key: &str, entry: Entry) {
        let parent = if parent_key.is_empty() {
            None
        } else {
            Some(self.id_of(parent_key).expect("parent checked"))
        };
        let akey: Arc<str> = Arc::from(key);
        let id = self.alloc(CompactNode {
            key: akey.clone(),
            entry,
            parent,
            children: Vec::new(),
        });
        self.ids.insert(akey, id);
        if self.bulk == 0 {
            let CompactStore { slots, index, .. } = self;
            let node = slots[id as usize].as_ref().expect("just allocated");
            index.insert_entry(id, &node.entry);
        }
        self.link_child(parent, id);
    }

    /// Remove a childless entry the caller has already checked exists.
    fn remove_leaf(&mut self, key: &str) -> Entry {
        let id = self.ids.remove(key).expect("entry checked");
        let parent = self.node(id).parent;
        self.unlink_child(parent, id);
        let node = self.slots[id as usize].take().expect("live id");
        if self.bulk == 0 {
            self.index.remove_entry(id, &node.entry);
        }
        self.free.push(id);
        node.entry
    }

    /// Swap in a modified image of an existing entry.
    fn replace_entry(&mut self, key: &str, mut entry: Entry) {
        entry.compact_for_store();
        let id = self.id_of(key).expect("entry checked");
        let CompactStore {
            slots, index, bulk, ..
        } = self;
        let node = slots[id as usize].as_mut().expect("live id");
        if *bulk == 0 {
            index.remove_entry(id, &node.entry);
        }
        node.entry = entry;
        if *bulk == 0 {
            index.insert_entry(id, &node.entry);
        }
    }

    /// Rename/move the subtree rooted at `old_key`: remove it leaves-first,
    /// rewrite each DN against `new_dn`, and reinsert parents-first. `head`
    /// is the already-updated image of the renamed entry itself.
    fn rename_subtree(&mut self, old_key: &str, dn: &Dn, new_dn: &Dn, head: Entry) {
        let root_id = self.id_of(old_key).expect("entry checked");
        let mut order = vec![root_id];
        let mut i = 0;
        while i < order.len() {
            let kids = self.node(order[i]).children.clone();
            order.extend(kids);
            i += 1;
        }
        let mut moved: Vec<Entry> = Vec::with_capacity(order.len());
        for &id in order.iter().rev() {
            let key = self.node(id).key.clone();
            moved.push(self.remove_leaf(&key));
        }
        moved.reverse(); // parents-first again, aligned with `order`
        let old_depth = dn.depth();
        for (i, e) in moved.into_iter().enumerate() {
            let e = if i == 0 {
                head.clone()
            } else {
                let mut e = e;
                let rdns = e.dn().rdns().to_vec();
                let keep = rdns.len() - old_depth;
                let mut new_rdns = rdns[..keep].to_vec();
                new_rdns.extend(new_dn.rdns().iter().cloned());
                e.set_dn(Dn::from_rdns(new_rdns));
                e
            };
            let key = e.dn().norm_key();
            let parent_key = e.dn().parent().map(|p| p.norm_key()).unwrap_or_default();
            self.insert_entry(&key, &parent_key, e);
        }
    }

    /// Restore the sorted-sibling and index invariants after a bulk load:
    /// sort every sibling list by arena key and rebuild the postings in
    /// one pass over the live slots. This replaces ~n per-insert index
    /// updates (each allocating a normalized value `String` and touching a
    /// set) with one linear build — the core of the fast cold start.
    fn finish_bulk_build(&mut self) {
        let mut rc = std::mem::take(&mut self.root_children);
        rc.sort_by(|&a, &b| self.node(a).key.cmp(&self.node(b).key));
        self.root_children = rc;
        for i in 0..self.slots.len() {
            let Some(slot) = self.slots[i].as_mut() else {
                continue;
            };
            let mut kids = std::mem::take(&mut slot.children);
            kids.sort_by(|&a, &b| self.node(a).key.cmp(&self.node(b).key));
            self.node_mut(i as DnId).children = kids;
        }
        for m in self.index.postings.values_mut() {
            m.clear();
        }
        if self.index.enabled() {
            let CompactStore { slots, index, .. } = self;
            for (i, slot) in slots.iter().enumerate() {
                if let Some(n) = slot {
                    index.insert_entry(i as DnId, &n.entry);
                }
            }
        }
    }

    /// Plan wrapper: while a bulk load is active the index is stale, so
    /// every search scans.
    fn plan(&self, filter: &Filter) -> PlanOf<&HashSet<DnId>> {
        if self.bulk > 0 {
            return PlanOf::Scan;
        }
        self.index.plan(filter)
    }

    fn search_one(
        &self,
        base_key: &str,
        filter: &Filter,
        push: &mut dyn FnMut(&Entry) -> Result<()>,
    ) -> Result<()> {
        let base = if base_key.is_empty() {
            None
        } else {
            Some(self.id_of(base_key).expect("base checked"))
        };
        match self.plan(filter) {
            PlanOf::Empty => {}
            PlanOf::Candidates(set) => {
                // Candidate-major: an O(1) parent check per candidate, then
                // sort survivors by arena key — siblings share their key
                // suffix, so this is exactly the sibling-list (scan) order.
                let mut hits: Vec<DnId> = set
                    .iter()
                    .copied()
                    .filter(|&id| self.node(id).parent == base)
                    .collect();
                hits.sort_by(|&a, &b| self.node(a).key.cmp(&self.node(b).key));
                for id in hits {
                    push(&self.node(id).entry)?;
                }
            }
            PlanOf::Scan => {
                for &id in self.children_of(base) {
                    push(&self.node(id).entry)?;
                }
            }
        }
        Ok(())
    }

    fn search_sub(
        &self,
        base: &Dn,
        base_key: &str,
        filter: &Filter,
        push: &mut dyn FnMut(&Entry) -> Result<()>,
    ) -> Result<()> {
        let base_id = if base.is_root() {
            None
        } else {
            Some(self.id_of(base_key).expect("base checked"))
        };
        match self.plan(filter) {
            PlanOf::Empty => {}
            PlanOf::Candidates(set) => {
                // Same (depth, ancestor-key-chain) sort as the legacy arm:
                // it reproduces the BFS queue's emission order exactly.
                let mut cands: Vec<(usize, Vec<String>, DnId)> = set
                    .iter()
                    .copied()
                    .filter_map(|id| {
                        if let Some(b) = base_id {
                            if id != b && !self.is_under(id, b) {
                                return None;
                            }
                        }
                        let chain = ancestor_chain(self.node(id).entry.dn());
                        Some((chain.len(), chain, id))
                    })
                    .collect();
                cands.sort();
                for (_, _, id) in &cands {
                    push(&self.node(*id).entry)?;
                }
            }
            PlanOf::Scan => {
                let mut queue: VecDeque<DnId> = match base_id {
                    Some(id) => std::iter::once(id).collect(),
                    None => self.root_children.iter().copied().collect(),
                };
                while let Some(id) = queue.pop_front() {
                    let n = self.node(id);
                    queue.extend(&n.children);
                    push(&n.entry)?;
                }
            }
        }
        Ok(())
    }

    /// Every entry, parents before children (BFS over sibling lists).
    fn for_each_parents_first(&self, f: &mut dyn FnMut(&Entry) -> Result<()>) -> Result<()> {
        let mut queue: VecDeque<DnId> = self.root_children.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            let n = self.node(id);
            queue.extend(&n.children);
            f(&n.entry)?;
        }
        Ok(())
    }
}

/// Which backing a store runs on; see the module docs.
enum Backing {
    Legacy(LegacyStore),
    Compact(CompactStore),
}

impl Backing {
    fn len(&self) -> usize {
        match self {
            Backing::Legacy(s) => s.entries.len(),
            Backing::Compact(s) => s.ids.len(),
        }
    }

    fn contains(&self, key: &str) -> bool {
        match self {
            Backing::Legacy(s) => s.entries.contains_key(key),
            Backing::Compact(s) => s.ids.contains_key(key),
        }
    }

    fn get_entry(&self, key: &str) -> Option<&Entry> {
        match self {
            Backing::Legacy(s) => s.entries.get(key),
            Backing::Compact(s) => s.get_entry(key),
        }
    }

    fn has_children(&self, key: &str) -> bool {
        match self {
            Backing::Legacy(s) => s.children.get(key).is_some_and(|c| !c.is_empty()),
            Backing::Compact(s) => s
                .id_of(key)
                .is_some_and(|id| !s.node(id).children.is_empty()),
        }
    }

    /// Would this search be answered from the index (`true`) or by a scan
    /// (`false`)? Used only for the served/scanned counters; the search
    /// methods re-plan internally (planning is a couple of map lookups).
    fn plan_serves(&self, filter: &Filter) -> bool {
        match self {
            Backing::Legacy(s) => !matches!(s.index.plan(filter), PlanOf::Scan),
            Backing::Compact(s) => !matches!(s.plan(filter), PlanOf::Scan),
        }
    }

    fn search_one(
        &self,
        base_key: &str,
        filter: &Filter,
        push: &mut dyn FnMut(&Entry) -> Result<()>,
    ) -> Result<()> {
        match self {
            Backing::Legacy(s) => s.search_one(base_key, filter, push),
            Backing::Compact(s) => s.search_one(base_key, filter, push),
        }
    }

    fn search_sub(
        &self,
        base: &Dn,
        base_key: &str,
        filter: &Filter,
        push: &mut dyn FnMut(&Entry) -> Result<()>,
    ) -> Result<()> {
        match self {
            Backing::Legacy(s) => s.search_sub(base, base_key, filter, push),
            Backing::Compact(s) => s.search_sub(base, base_key, filter, push),
        }
    }

    fn for_each_parents_first(&self, f: &mut dyn FnMut(&Entry) -> Result<()>) -> Result<()> {
        match self {
            Backing::Legacy(s) => visit_subtree(s, "", &mut |k| {
                if k.is_empty() {
                    return Ok(());
                }
                f(&s.entries[k])
            }),
            Backing::Compact(s) => s.for_each_parents_first(f),
        }
    }

    fn indexed_attrs(&self) -> Vec<String> {
        let mut attrs: Vec<String> = match self {
            Backing::Legacy(s) => s.index.postings.keys().cloned().collect(),
            Backing::Compact(s) => s.index.postings.keys().cloned().collect(),
        };
        attrs.sort();
        attrs
    }
}

struct Store {
    backing: Backing,
    seq: u64,
}

impl Store {
    fn new(indexed_attrs: &[String], compact: bool) -> Store {
        let backing = if compact {
            Backing::Compact(CompactStore::new(indexed_attrs))
        } else {
            Backing::Legacy(LegacyStore::new(indexed_attrs))
        };
        Store { backing, seq: 0 }
    }
}

/// The DIT. Cheap to clone the handle (`Arc` inside); all methods take
/// `&self` and are safe for concurrent use.
pub struct Dit {
    store: RwLock<Store>,
    schema: SchemaRef,
    observers: RwLock<Vec<Observer>>,
    /// Which backing `store` runs on (fixed at construction).
    compact: bool,
    /// One/Sub searches answered from the equality index (incl. provably
    /// empty results).
    index_served: AtomicU64,
    /// One/Sub searches that fell back to the scan.
    index_scanned: AtomicU64,
}

impl Dit {
    /// DIT with schema checking off and the default equality indexes.
    pub fn new() -> Arc<Dit> {
        Dit::with_schema(Arc::new(Schema::permissive()))
    }

    /// DIT validating every write against `schema`, with the
    /// [`DEFAULT_INDEXED_ATTRS`] equality indexes.
    pub fn with_schema(schema: SchemaRef) -> Arc<Dit> {
        Dit::with_schema_indexed(schema, DEFAULT_INDEXED_ATTRS)
    }

    /// DIT with an explicit equality-index attribute set. An empty slice
    /// disables indexing entirely (every search scans — the ablation
    /// baseline for benchmarks). Uses the compact store.
    pub fn with_schema_indexed(schema: SchemaRef, indexed_attrs: &[&str]) -> Arc<Dit> {
        Dit::with_schema_indexed_compact(schema, indexed_attrs, true)
    }

    /// Like [`Dit::with_schema_indexed`] but selecting the storage
    /// representation: `compact = false` keeps the legacy string-keyed
    /// maps — the E18 ablation arm (`with_compact_store(false)` on the
    /// system builder).
    pub fn with_schema_indexed_compact(
        schema: SchemaRef,
        indexed_attrs: &[&str],
        compact: bool,
    ) -> Arc<Dit> {
        let attrs: Vec<String> = indexed_attrs.iter().map(|s| s.to_string()).collect();
        Arc::new(Dit {
            store: RwLock::new(Store::new(&attrs, compact)),
            schema,
            observers: RwLock::new(Vec::new()),
            compact,
            index_served: AtomicU64::new(0),
            index_scanned: AtomicU64::new(0),
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// `true` when this DIT runs on the compact interned representation.
    pub fn is_compact(&self) -> bool {
        self.compact
    }

    /// The attributes carrying an equality index, normalized and sorted.
    pub fn indexed_attrs(&self) -> Vec<String> {
        self.store.read().backing.indexed_attrs()
    }

    /// `(served, scanned)`: One/Sub searches answered from the equality
    /// index vs. by subtree scan, since construction.
    pub fn index_stats(&self) -> (u64, u64) {
        (
            self.index_served.load(Ordering::Relaxed),
            self.index_scanned.load(Ordering::Relaxed),
        )
    }

    /// Register a commit observer (replication, LTAP library mode, tests).
    /// Observers run synchronously inside the commit, in registration order.
    pub fn observe(&self, f: impl Fn(&ChangeRecord) + Send + Sync + 'static) {
        self.observers.write().push(Box::new(f));
    }

    fn emit(&self, rec: ChangeRecord) {
        for obs in self.observers.read().iter() {
            obs(&rec);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.store.read().backing.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Commit sequence of the most recent update.
    pub fn seq(&self) -> u64 {
        self.store.read().seq
    }

    /// Fast-forward the commit sequence (recovery: replaying a snapshot and
    /// log re-runs commits with fresh low sequence numbers, so the counter
    /// must be restored to the pre-crash value before new commits continue
    /// the original numbering). Only ever moves forward.
    pub fn set_seq(&self, seq: u64) {
        let mut s = self.store.write();
        s.seq = s.seq.max(seq);
    }

    /// Fetch a copy of one entry.
    pub fn get(&self, dn: &Dn) -> Option<Entry> {
        self.store.read().backing.get_entry(&dn.norm_key()).cloned()
    }

    pub fn exists(&self, dn: &Dn) -> bool {
        self.store.read().backing.contains(&dn.norm_key())
    }

    /// Enter bulk-load mode (nestable). On the compact backing, inserts
    /// stop maintaining the equality index and sibling sort order;
    /// [`Dit::finish_bulk`] restores both with one build pass — recovery
    /// loads a million-entry snapshot without a million incremental index
    /// updates. While active, searches fall back to (unordered) scans.
    /// A no-op on the legacy backing, whose per-insert maintenance is
    /// exactly what the E18 ablation prices.
    pub fn begin_bulk(&self) {
        if let Backing::Compact(cs) = &mut self.store.write().backing {
            cs.bulk += 1;
        }
    }

    /// Leave bulk-load mode; the outermost call sorts sibling lists and
    /// rebuilds the equality index.
    pub fn finish_bulk(&self) {
        if let Backing::Compact(cs) = &mut self.store.write().backing {
            cs.bulk = cs.bulk.saturating_sub(1);
            if cs.bulk == 0 {
                cs.finish_bulk_build();
            }
        }
    }

    /// Add an entry. The parent must exist unless the entry is a suffix
    /// (depth-1) entry.
    pub fn add(&self, entry: Entry) -> Result<()> {
        self.add_inner(entry, true, true)
    }

    /// Bulk-load insert used by snapshot recovery: same structural checks
    /// as [`Dit::add`], but no [`ChangeRecord`] is built or emitted
    /// (recovery attaches observers only after the load), and schema
    /// validation is skipped when `trusted` — the source is this system's
    /// own CRC-verified snapshot, whose entries were validated when first
    /// written.
    pub fn bulk_add(&self, entry: Entry, trusted: bool) -> Result<()> {
        self.add_inner(entry, !trusted, false)
    }

    fn add_inner(&self, mut entry: Entry, validate: bool, emit: bool) -> Result<()> {
        if entry.dn().is_root() {
            return Err(LdapError::unwilling("cannot add the root DSE"));
        }
        if validate {
            self.schema.validate_entry(&entry)?;
        }
        if self.compact {
            // Flatten + intern outside the write lock.
            entry.compact_for_store();
        }
        let key = entry.dn().norm_key();
        let parent = entry.dn().parent().expect("non-root");
        let parent_key = parent.norm_key();
        let mut guard = self.store.write();
        let s = &mut *guard;
        if s.backing.contains(&key) {
            return Err(LdapError::already_exists(entry.dn()));
        }
        if !parent.is_root() && !s.backing.contains(&parent_key) {
            return Err(LdapError::new(
                ResultCode::NoSuchObject,
                format!("parent of `{}` does not exist", entry.dn()),
            ));
        }
        let recorded = if emit { Some(entry.clone()) } else { None };
        match &mut s.backing {
            Backing::Legacy(ls) => {
                ls.children
                    .entry(parent_key)
                    .or_default()
                    .insert(key.clone());
                ls.children.entry(key.clone()).or_default();
                ls.index.insert_entry(&key, &entry);
                ls.entries.insert(key, entry);
            }
            Backing::Compact(cs) => cs.insert_entry(&key, &parent_key, entry),
        }
        s.seq += 1;
        let rec = recorded.map(|e| ChangeRecord {
            seq: s.seq,
            dn: e.dn().clone(),
            op: ChangeOp::Add(e),
        });
        drop(guard);
        if let Some(rec) = rec {
            self.emit(rec);
        }
        Ok(())
    }

    /// Delete a leaf entry.
    pub fn delete(&self, dn: &Dn) -> Result<()> {
        let key = dn.norm_key();
        let mut guard = self.store.write();
        let s = &mut *guard;
        if !s.backing.contains(&key) {
            return Err(LdapError::no_such_object(dn));
        }
        if s.backing.has_children(&key) {
            return Err(LdapError::new(
                ResultCode::NotAllowedOnNonLeaf,
                format!("`{dn}` has children"),
            ));
        }
        match &mut s.backing {
            Backing::Legacy(ls) => {
                let removed = ls.entries.remove(&key).expect("checked");
                ls.index.remove_entry(&key, &removed);
                ls.children.remove(&key);
                let parent_key = dn.parent().map(|p| p.norm_key()).unwrap_or_default();
                if let Some(siblings) = ls.children.get_mut(&parent_key) {
                    siblings.remove(&key);
                }
            }
            Backing::Compact(cs) => {
                cs.remove_leaf(&key);
            }
        }
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::Delete,
        };
        drop(guard);
        self.emit(rec);
        Ok(())
    }

    /// Modify an entry in place. All modifications apply atomically; RDN
    /// attribute values cannot be removed (use [`Dit::modify_rdn`]).
    pub fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        let key = dn.norm_key();
        let mut guard = self.store.write();
        let s = &mut *guard;
        let mut updated = s
            .backing
            .get_entry(&key)
            .ok_or_else(|| LdapError::no_such_object(dn))?
            .clone();
        updated.apply_modifications(mods)?;
        // Naming invariant even under a permissive schema.
        if let Some(rdn) = dn.rdn() {
            for ava in rdn.avas() {
                if !updated.has_value(ava.attr(), ava.value()) {
                    return Err(LdapError::new(
                        ResultCode::NotAllowedOnRdn,
                        format!(
                            "modification would remove RDN value `{}={}`",
                            ava.attr(),
                            ava.value()
                        ),
                    ));
                }
            }
        }
        self.schema.validate_entry(&updated)?;
        match &mut s.backing {
            Backing::Legacy(ls) => {
                let old = ls.entries.get(&key).expect("checked");
                ls.index.remove_entry(&key, old);
                ls.index.insert_entry(&key, &updated);
                ls.entries.insert(key, updated);
            }
            Backing::Compact(cs) => cs.replace_entry(&key, updated),
        }
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::Modify(mods.to_vec()),
        };
        drop(guard);
        self.emit(rec);
        Ok(())
    }

    /// Rename an entry (and implicitly its subtree) and optionally move it
    /// under `new_superior` (LDAPv3 ModifyDN).
    ///
    /// `delete_old` removes the old RDN values from the entry's attributes.
    pub fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        if dn.is_root() {
            return Err(LdapError::unwilling("cannot rename the root"));
        }
        let old_key = dn.norm_key();
        let new_dn = match new_superior {
            Some(sup) => sup.child(new_rdn.clone()),
            None => dn.with_rdn(new_rdn.clone())?,
        };
        let new_key = new_dn.norm_key();
        let mut guard = self.store.write();
        let s = &mut *guard;
        if !s.backing.contains(&old_key) {
            return Err(LdapError::no_such_object(dn));
        }
        if let Some(sup) = new_superior {
            if !sup.is_root() && !s.backing.contains(&sup.norm_key()) {
                return Err(LdapError::no_such_object(sup));
            }
            // Refuse to move an entry under its own subtree.
            if sup.is_within(dn) {
                return Err(LdapError::unwilling(format!(
                    "cannot move `{dn}` under its own descendant `{sup}`"
                )));
            }
        }
        if new_key != old_key && s.backing.contains(&new_key) {
            return Err(LdapError::already_exists(&new_dn));
        }
        // Update the renamed entry's attributes.
        let mut entry = s.backing.get_entry(&old_key).cloned().expect("checked");
        if delete_old {
            if let Some(old_rdn) = dn.rdn() {
                for ava in old_rdn.avas() {
                    entry.remove_value(ava.attr(), ava.value());
                }
            }
        }
        for ava in new_rdn.avas() {
            if !entry.has_value(ava.attr(), ava.value()) {
                entry.add_value(ava.attr().to_string(), ava.value().to_string());
            }
        }
        entry.set_dn(new_dn.clone());
        self.schema.validate_entry(&entry)?;

        match &mut s.backing {
            Backing::Legacy(ls) => {
                // Re-key the whole subtree (indexes follow: every moved
                // entry is unindexed under its old key and reindexed under
                // the new one).
                let descendants = collect_subtree(ls, &old_key);
                let old_depth = dn.depth();
                for desc_key in &descendants {
                    let old_entry = ls.entries.remove(desc_key).expect("subtree member");
                    ls.index.remove_entry(desc_key, &old_entry);
                    let children = ls.children.remove(desc_key).unwrap_or_default();
                    let e = if *desc_key == old_key {
                        entry.clone()
                    } else {
                        let mut e = old_entry;
                        let rdns = e.dn().rdns();
                        let keep = rdns.len() - old_depth;
                        let mut new_rdns = rdns[..keep].to_vec();
                        new_rdns.extend(new_dn.rdns().iter().cloned());
                        e.set_dn(Dn::from_rdns(new_rdns));
                        e
                    };
                    let rewritten_children: BTreeSet<String> = children
                        .iter()
                        .map(|c| rewrite_key(c, &old_key, &new_key))
                        .collect();
                    let new_desc_key = e.dn().norm_key();
                    ls.index.insert_entry(&new_desc_key, &e);
                    ls.children.insert(new_desc_key.clone(), rewritten_children);
                    ls.entries.insert(new_desc_key, e);
                }
                // Fix parent links.
                let old_parent_key = dn.parent().map(|p| p.norm_key()).unwrap_or_default();
                if let Some(siblings) = ls.children.get_mut(&old_parent_key) {
                    siblings.remove(&old_key);
                }
                let new_parent_key = new_dn.parent().map(|p| p.norm_key()).unwrap_or_default();
                ls.children
                    .entry(new_parent_key)
                    .or_default()
                    .insert(new_key);
            }
            Backing::Compact(cs) => cs.rename_subtree(&old_key, dn, &new_dn, entry),
        }
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::ModifyRdn {
                new_rdn: new_rdn.clone(),
                delete_old,
                new_superior: new_superior.cloned(),
            },
        };
        drop(guard);
        self.emit(rec);
        Ok(())
    }

    /// Compare one attribute value (RFC 2251 Compare).
    pub fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        let s = self.store.read();
        let entry = s
            .backing
            .get_entry(&dn.norm_key())
            .ok_or_else(|| LdapError::no_such_object(dn))?;
        Ok(entry.has_value(attr, value))
    }

    /// Search. `attrs` selects returned attributes (empty = all);
    /// `size_limit` of 0 means unlimited, otherwise exceeding it is an error.
    ///
    /// One/Sub searches go through the filter planner first; indexed
    /// results are produced in the same order the scan would produce them.
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        let (out, truncated) = self.search_capped(base, scope, filter, attrs, size_limit)?;
        if truncated {
            return Err(LdapError::new(
                ResultCode::SizeLimitExceeded,
                format!("more than {size_limit} entries match"),
            ));
        }
        Ok(out)
    }

    /// Like [`Dit::search`], but a size-limit overflow is not an error:
    /// the entries collected up to the limit are returned together with a
    /// "truncated" flag — the RFC 2251 `sizeLimitExceeded` shape the wire
    /// server needs.
    pub fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        let mut out = Vec::new();
        let (_, truncated) = self.walk(base, scope, filter, size_limit, &mut |e| {
            out.push(e.project(attrs))
        })?;
        Ok((out, truncated))
    }

    /// Stream matching entries through `visit` instead of collecting them:
    /// with an empty projection the visitor borrows entries straight out of
    /// the store — no per-entry clone and no result vector. Returns
    /// `(matches visited, truncated)`.
    ///
    /// The store's read lock is held while `visit` runs (concurrent
    /// searches proceed; writers wait), so visitors must do bounded work —
    /// the wire server's visitor only appends to its encode buffer.
    pub fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        if attrs.is_empty() {
            self.walk(base, scope, filter, size_limit, visit)
        } else {
            self.walk(base, scope, filter, size_limit, &mut |e| {
                visit(&e.project(attrs))
            })
        }
    }

    /// The traversal core shared by the collecting and streaming searches:
    /// scope dispatch, filter planning, size-limit truncation. `emit`
    /// receives every post-filter match, pre-projection.
    fn walk(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        size_limit: usize,
        emit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        let guard = self.store.read();
        let s = &*guard;
        let base_key = base.norm_key();
        if !base.is_root() && !s.backing.contains(&base_key) {
            return Err(LdapError::no_such_object(base));
        }
        let mut count = 0usize;
        let mut truncated = false;
        // The push closure signals "stop traversing" with a sentinel error
        // once the limit is hit; the entries emitted so far are kept.
        let mut push = |e: &Entry| -> Result<()> {
            if filter.matches(e) {
                if size_limit != 0 && count >= size_limit {
                    truncated = true;
                    return Err(LdapError::new(
                        ResultCode::SizeLimitExceeded,
                        "size limit reached",
                    ));
                }
                count += 1;
                emit(e);
            }
            Ok(())
        };
        let walked = (|| -> Result<()> {
            match scope {
                Scope::Base => {
                    if let Some(e) = s.backing.get_entry(&base_key) {
                        push(e)?;
                    }
                }
                Scope::One => {
                    if s.backing.plan_serves(filter) {
                        self.index_served.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.index_scanned.fetch_add(1, Ordering::Relaxed);
                    }
                    s.backing.search_one(&base_key, filter, &mut push)?;
                }
                Scope::Sub => {
                    if s.backing.plan_serves(filter) {
                        self.index_served.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.index_scanned.fetch_add(1, Ordering::Relaxed);
                    }
                    s.backing.search_sub(base, &base_key, filter, &mut push)?;
                }
            }
            Ok(())
        })();
        match walked {
            Ok(()) => {}
            Err(e) if e.code == ResultCode::SizeLimitExceeded => {}
            Err(e) => return Err(e),
        }
        Ok((count, truncated))
    }

    /// Every entry, parents before children (for export / sync dumps).
    pub fn export(&self) -> Vec<Entry> {
        self.export_with_seq().0
    }

    /// [`Dit::export`] plus the commit sequence the export reflects, read
    /// under one lock — the atomic cut a consistent snapshot needs.
    pub fn export_with_seq(&self) -> (Vec<Entry>, u64) {
        let guard = self.store.read();
        let s = &*guard;
        let mut out = Vec::new();
        s.backing
            .for_each_parents_first(&mut |e| {
                out.push(e.clone());
                Ok(())
            })
            .expect("infallible visitor");
        (out, s.seq)
    }

    /// Stream a consistent export under one read guard without
    /// materializing a `Vec<Entry>`: `header` runs once with the commit
    /// sequence the cut reflects, then `each` with every entry, parents
    /// before children. The streaming snapshot writer sits on this — a
    /// million-entry checkpoint never holds more than one entry's text in
    /// memory at a time.
    pub fn export_stream(
        &self,
        header: &mut dyn FnMut(u64) -> Result<()>,
        each: &mut dyn FnMut(&Entry) -> Result<()>,
    ) -> Result<()> {
        let guard = self.store.read();
        let s = &*guard;
        header(s.seq)?;
        s.backing.for_each_parents_first(each)
    }

    /// Remove everything (used by resynchronization).
    pub fn clear(&self) {
        let mut s = self.store.write();
        match &mut s.backing {
            Backing::Legacy(ls) => {
                ls.entries.clear();
                ls.children.clear();
                ls.children.insert(String::new(), BTreeSet::new());
                for postings in ls.index.postings.values_mut() {
                    postings.clear();
                }
            }
            Backing::Compact(cs) => {
                cs.ids.clear();
                cs.slots.clear();
                cs.free.clear();
                cs.root_children.clear();
                for postings in cs.index.postings.values_mut() {
                    postings.clear();
                }
            }
        }
    }
}

/// BFS over the subtree rooted at `root_key` (inclusive), parents first,
/// borrowing keys from the store — O(depth) queue of `&str`, no per-entry
/// `String` allocation.
fn visit_subtree<'a>(
    s: &'a LegacyStore,
    root_key: &'a str,
    visit: &mut dyn FnMut(&'a str) -> Result<()>,
) -> Result<()> {
    let mut queue: VecDeque<&'a str> = VecDeque::new();
    queue.push_back(root_key);
    while let Some(k) = queue.pop_front() {
        if let Some(kids) = s.children.get(k) {
            for c in kids {
                queue.push_back(c);
            }
        }
        visit(k)?;
    }
    Ok(())
}

/// Owned-key BFS — only for `modify_rdn`, which mutates the maps while
/// walking the collected keys.
fn collect_subtree(s: &LegacyStore, root_key: &str) -> Vec<String> {
    let mut out = Vec::new();
    visit_subtree(s, root_key, &mut |k| {
        out.push(k.to_string());
        Ok(())
    })
    .expect("infallible visitor");
    out
}

/// Full norm keys of `dn`'s ancestors, topmost (depth 1) first, ending with
/// `dn`'s own key. Comparing `(len, chain)` tuples reproduces the scan's
/// BFS emission order: depth level by level, and within a level the
/// sibling order at the first diverging ancestor.
fn ancestor_chain(dn: &Dn) -> Vec<String> {
    let rdns = dn.rdns();
    let mut out = Vec::with_capacity(rdns.len());
    let mut cur = String::new();
    for rdn in rdns.iter().rev() {
        let rk = rdn.norm_key();
        let full = if cur.is_empty() {
            rk
        } else {
            format!("{rk},{cur}")
        };
        out.push(full.clone());
        cur = full;
    }
    out
}

fn rewrite_key(key: &str, old_suffix: &str, new_suffix: &str) -> String {
    if key == old_suffix {
        return new_suffix.to_string();
    }
    match key.strip_suffix(old_suffix) {
        Some(prefix) => format!("{prefix}{new_suffix}"),
        None => key.to_string(),
    }
}

/// Convenience: build the standard test tree from the paper's Figure 2.
///
/// ```text
/// o=Lucent
/// ├── o=Marketing     ── cn=John Doe, cn=Pat Smith
/// ├── o=Accounting    ── cn=Tim Dickens
/// ├── o=R&D           ── cn=Jill Lu
/// └── o=DEN Group
/// ```
pub fn figure2_tree(dit: &Dit) -> Result<()> {
    let org = |name: &str| {
        Entry::with_attrs(
            Dn::parse(name).unwrap(),
            [("objectClass", "top"), ("objectClass", "organization")],
        )
    };
    let mut lucent = org("o=Lucent");
    lucent.add_value("o", "Lucent");
    dit.add(lucent)?;
    for (unit, people) in [
        ("Marketing", vec!["John Doe", "Pat Smith"]),
        ("Accounting", vec!["Tim Dickens"]),
        ("R&D", vec!["Jill Lu"]),
        ("DEN Group", vec![]),
    ] {
        let dn = Dn::root()
            .child(Rdn::new("o", "Lucent"))
            .child(Rdn::new("o", unit));
        let mut e = Entry::new(dn.clone());
        e.add_value("objectClass", "top");
        e.add_value("objectClass", "organization");
        e.add_value("o", unit);
        dit.add(e)?;
        for person in people {
            let pdn = dn.child(Rdn::new("cn", person));
            let sn = person.split_whitespace().last().unwrap_or(person);
            let e = Entry::with_attrs(
                pdn,
                [
                    ("objectClass", "top"),
                    ("objectClass", "person"),
                    ("cn", person),
                    ("sn", sn),
                ],
            );
            dit.add(e)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Arc<Dit> {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        dit
    }

    /// Same tree, indexing disabled — the scan reference.
    fn scan_tree() -> Arc<Dit> {
        let dit = Dit::with_schema_indexed(Arc::new(Schema::permissive()), &[]);
        figure2_tree(&dit).unwrap();
        dit
    }

    /// Same tree on the legacy string-keyed backing.
    fn legacy_tree() -> Arc<Dit> {
        let dit = Dit::with_schema_indexed_compact(
            Arc::new(Schema::permissive()),
            DEFAULT_INDEXED_ATTRS,
            false,
        );
        figure2_tree(&dit).unwrap();
        dit
    }

    #[test]
    fn figure2_builds() {
        let dit = tree();
        assert_eq!(dit.len(), 9); // 1 + 4 orgs + 4 people
        assert!(dit.exists(&Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap()));
    }

    #[test]
    fn add_requires_parent() {
        let dit = Dit::new();
        let e = Entry::with_attrs(
            Dn::parse("cn=X,o=Nowhere").unwrap(),
            [("objectClass", "person"), ("cn", "X"), ("sn", "X")],
        );
        let err = dit.add(e).unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);
    }

    #[test]
    fn add_duplicate_rejected() {
        let dit = tree();
        let e = Entry::with_attrs(
            Dn::parse("cn=JOHN DOE,o=marketing,o=lucent").unwrap(),
            [("objectClass", "person"), ("cn", "JOHN DOE"), ("sn", "Doe")],
        );
        let err = dit.add(e).unwrap_err();
        assert_eq!(err.code, ResultCode::EntryAlreadyExists);
    }

    #[test]
    fn delete_leaf_only() {
        let dit = tree();
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let err = dit.delete(&marketing).unwrap_err();
        assert_eq!(err.code, ResultCode::NotAllowedOnNonLeaf);
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.delete(&john).unwrap();
        assert!(!dit.exists(&john));
        assert_eq!(
            dit.delete(&john).unwrap_err().code,
            ResultCode::NoSuchObject
        );
    }

    #[test]
    fn modify_updates_entry() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(
            &john,
            &[Modification::set("telephoneNumber", "+1 908 582 9123")],
        )
        .unwrap();
        assert_eq!(
            dit.get(&john).unwrap().first("telephoneNumber"),
            Some("+1 908 582 9123")
        );
    }

    #[test]
    fn modify_cannot_remove_rdn_value() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify(&john, &[Modification::set("cn", "Other Name")])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NotAllowedOnRdn);
    }

    #[test]
    fn modify_rdn_renames_and_updates_attrs() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
            .unwrap();
        assert!(!dit.exists(&john));
        let jack = Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap();
        let e = dit.get(&jack).unwrap();
        assert!(e.has_value("cn", "Jack Doe"));
        assert!(!e.has_value("cn", "John Doe"));
    }

    #[test]
    fn modify_rdn_keep_old_values() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), false, None)
            .unwrap();
        let jack = Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap();
        let e = dit.get(&jack).unwrap();
        assert!(e.has_value("cn", "Jack Doe"));
        assert!(e.has_value("cn", "John Doe"));
    }

    #[test]
    fn modify_rdn_collision_rejected() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify_rdn(&john, &Rdn::new("cn", "Pat Smith"), true, None)
            .unwrap_err();
        assert_eq!(err.code, ResultCode::EntryAlreadyExists);
    }

    #[test]
    fn subtree_move_rekeys_descendants() {
        let dit = tree();
        // Move the whole Marketing org under R&D.
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let rd = Dn::parse("o=R&D,o=Lucent").unwrap();
        dit.modify_rdn(&marketing, &Rdn::new("o", "Marketing"), false, Some(&rd))
            .unwrap();
        assert!(dit.exists(&Dn::parse("o=Marketing,o=R&D,o=Lucent").unwrap()));
        let moved = Dn::parse("cn=John Doe,o=Marketing,o=R&D,o=Lucent").unwrap();
        assert!(dit.exists(&moved), "descendant should move with subtree");
        assert!(!dit.exists(&Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap()));
        // The moved child's stored DN matches its key.
        assert_eq!(dit.get(&moved).unwrap().dn(), &moved);
    }

    #[test]
    fn cannot_move_under_own_descendant() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify_rdn(&lucent, &Rdn::new("o", "Lucent"), false, Some(&marketing))
            .unwrap_err();
        assert_eq!(err.code, ResultCode::UnwillingToPerform);
    }

    #[test]
    fn search_scopes() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let all = Filter::match_all();
        assert_eq!(
            dit.search(&lucent, Scope::Base, &all, &[], 0)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            dit.search(&lucent, Scope::One, &all, &[], 0).unwrap().len(),
            4
        );
        assert_eq!(
            dit.search(&lucent, Scope::Sub, &all, &[], 0).unwrap().len(),
            9
        );
        // root-based search sees everything
        assert_eq!(
            dit.search(&Dn::root(), Scope::Sub, &all, &[], 0)
                .unwrap()
                .len(),
            9
        );
    }

    #[test]
    fn search_filter_and_projection() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let f = Filter::parse("(&(objectClass=person)(cn=J*))").unwrap();
        let hits = dit
            .search(&lucent, Scope::Sub, &f, &["cn".into()], 0)
            .unwrap();
        assert_eq!(hits.len(), 2); // John Doe, Jill Lu
        for e in &hits {
            assert!(e.has_attr("cn"));
            assert!(!e.has_attr("sn"));
        }
    }

    #[test]
    fn search_size_limit() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let err = dit
            .search(&lucent, Scope::Sub, &Filter::match_all(), &[], 3)
            .unwrap_err();
        assert_eq!(err.code, ResultCode::SizeLimitExceeded);
    }

    #[test]
    fn search_missing_base() {
        let dit = tree();
        let err = dit
            .search(
                &Dn::parse("o=Nothing").unwrap(),
                Scope::Sub,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);
    }

    #[test]
    fn compare_semantics() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        assert!(dit.compare(&john, "sn", "doe").unwrap());
        assert!(!dit.compare(&john, "sn", "smith").unwrap());
        assert!(dit
            .compare(&Dn::parse("cn=ghost,o=Lucent").unwrap(), "sn", "x")
            .is_err());
    }

    #[test]
    fn export_is_parent_first() {
        let dit = tree();
        let entries = dit.export();
        assert_eq!(entries.len(), 9);
        // Every entry's parent appears earlier (or is the root).
        for (i, e) in entries.iter().enumerate() {
            if let Some(parent) = e.dn().parent() {
                if parent.is_root() {
                    continue;
                }
                let pos = entries
                    .iter()
                    .position(|x| x.dn() == &parent)
                    .expect("parent present");
                assert!(pos < i, "parent of {} must precede it", e.dn());
            }
        }
    }

    #[test]
    fn observers_see_commits_in_order() {
        let dit = Dit::new();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        dit.observe(move |rec| seen2.lock().push(rec.seq));
        figure2_tree(&dit).unwrap();
        let v = seen.lock();
        assert_eq!(v.len(), 9);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn schema_checked_on_add_and_modify() {
        let dit = Dit::with_schema(Arc::new(Schema::x500_core()));
        let mut lucent = Entry::new(Dn::parse("o=Lucent").unwrap());
        lucent.add_value("objectClass", "top");
        lucent.add_value("objectClass", "organization");
        lucent.add_value("o", "Lucent");
        dit.add(lucent).unwrap();
        // Missing sn → rejected
        let bad = Entry::with_attrs(
            Dn::parse("cn=X,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "X"),
            ],
        );
        assert_eq!(
            dit.add(bad).unwrap_err().code,
            ResultCode::ObjectClassViolation
        );
        let good = Entry::with_attrs(
            Dn::parse("cn=X,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "X"),
                ("sn", "X"),
            ],
        );
        dit.add(good).unwrap();
        // Modify deleting a must attribute → rejected, entry unchanged
        let dn = Dn::parse("cn=X,o=Lucent").unwrap();
        let err = dit
            .modify(&dn, &[Modification::delete_attr("sn")])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
        assert!(dit.get(&dn).unwrap().has_attr("sn"));
    }

    #[test]
    fn clear_resets() {
        let dit = tree();
        dit.clear();
        assert!(dit.is_empty());
        // Can rebuild after clear (indexes too).
        figure2_tree(&dit).unwrap();
        assert_eq!(dit.len(), 9);
        let hits = dit
            .search(
                &Dn::root(),
                Scope::Sub,
                &Filter::eq("cn", "John Doe"),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    // ---- equality-index tests -------------------------------------------

    /// Every search below must agree, entry-for-entry and in order, with
    /// the index-free reference DIT.
    fn assert_same_results(indexed: &Dit, scan: &Dit, base: &str, scope: Scope, filter: &str) {
        let base = Dn::parse(base).unwrap();
        let f = Filter::parse(filter).unwrap();
        let a = indexed.search(&base, scope, &f, &[], 0).unwrap();
        let b = scan.search(&base, scope, &f, &[], 0).unwrap();
        assert_eq!(a, b, "divergence on {filter} at {base} ({scope:?})");
    }

    #[test]
    fn default_indexes_installed_and_listed() {
        let dit = Dit::new();
        assert_eq!(
            dit.indexed_attrs(),
            vec!["cn", "lastupdater", "objectclass", "telephonenumber"]
        );
        // And can be disabled entirely.
        let off = Dit::with_schema_indexed(Arc::new(Schema::permissive()), &[]);
        assert!(off.indexed_attrs().is_empty());
    }

    #[test]
    fn indexed_search_matches_scan_in_content_and_order() {
        let indexed = tree();
        let scan = scan_tree();
        for filter in [
            "(objectClass=person)",
            "(objectClass=organization)",
            "(cn=John Doe)",
            "(cn=JOHN   doe)", // caseIgnoreMatch + whitespace squeeze
            "(&(objectClass=person)(cn=Jill Lu))",
            "(&(objectClass=person)(cn=J*))", // AND with one indexed conjunct
            "(|(cn=John Doe)(cn=Pat Smith))", // OR falls back to scan
            "(cn=nobody)",
            "(sn=Doe)", // unindexed attr falls back
        ] {
            assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, filter);
            assert_same_results(&indexed, &scan, "o=Marketing,o=Lucent", Scope::Sub, filter);
            assert_same_results(&indexed, &scan, "o=Lucent", Scope::One, filter);
        }
        let (served, _) = indexed.index_stats();
        assert!(served > 0, "indexed paths must actually run");
        let (served_off, scanned_off) = scan.index_stats();
        assert_eq!(served_off, 0);
        assert!(scanned_off > 0);
    }

    #[test]
    fn planner_applicability() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let probe = |f: &str| {
            let before = dit.index_stats();
            dit.search(&lucent, Scope::Sub, &Filter::parse(f).unwrap(), &[], 0)
                .unwrap();
            let after = dit.index_stats();
            (after.0 - before.0, after.1 - before.1)
        };
        assert_eq!(probe("(cn=John Doe)"), (1, 0), "indexed equality");
        assert_eq!(probe("(cn=nobody)"), (1, 0), "provably empty");
        assert_eq!(
            probe("(&(objectClass=person)(sn=Doe))"),
            (1, 0),
            "AND with one indexed conjunct"
        );
        assert_eq!(probe("(sn=Doe)"), (0, 1), "unindexed attr scans");
        assert_eq!(probe("(cn=J*)"), (0, 1), "substring scans");
        assert_eq!(probe("(!(cn=John Doe))"), (0, 1), "negation scans");
        assert_eq!(probe("(objectClass=*)"), (0, 1), "presence scans");
    }

    #[test]
    fn index_follows_modify_delete_and_rename() {
        let indexed = tree();
        let scan = scan_tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        for d in [&indexed, &scan] {
            d.modify(&john, &[Modification::set("telephoneNumber", "9123")])
                .unwrap();
        }
        assert_same_results(
            &indexed,
            &scan,
            "o=Lucent",
            Scope::Sub,
            "(telephoneNumber=9123)",
        );
        // Rename: the old cn posting must go, the new one appear.
        for d in [&indexed, &scan] {
            d.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
                .unwrap();
        }
        assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, "(cn=John Doe)");
        assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, "(cn=Jack Doe)");
        // Subtree move: descendants reindex under their new keys.
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let rd = Dn::parse("o=R&D,o=Lucent").unwrap();
        for d in [&indexed, &scan] {
            d.modify_rdn(&marketing, &Rdn::new("o", "Marketing"), false, Some(&rd))
                .unwrap();
        }
        assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, "(cn=Jack Doe)");
        assert_same_results(
            &indexed,
            &scan,
            "o=R&D,o=Lucent",
            Scope::Sub,
            "(cn=Jack Doe)",
        );
        // Delete drops the posting.
        let jack = Dn::parse("cn=Jack Doe,o=Marketing,o=R&D,o=Lucent").unwrap();
        for d in [&indexed, &scan] {
            d.delete(&jack).unwrap();
        }
        assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, "(cn=Jack Doe)");
    }

    #[test]
    fn indexed_size_limit_matches_scan() {
        let indexed = tree();
        let scan = scan_tree();
        let base = Dn::parse("o=Lucent").unwrap();
        let f = Filter::eq("objectClass", "person");
        let a = indexed.search(&base, Scope::Sub, &f, &[], 2).unwrap_err();
        let b = scan.search(&base, Scope::Sub, &f, &[], 2).unwrap_err();
        assert_eq!(a.code, b.code);
        assert_eq!(a.code, ResultCode::SizeLimitExceeded);
    }

    #[test]
    fn custom_indexed_attrs() {
        let dit = Dit::with_schema_indexed(Arc::new(Schema::permissive()), &["roomNumber"]);
        figure2_tree(&dit).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("roomNumber", "2B-401")])
            .unwrap();
        let before = dit.index_stats();
        let hits = dit
            .search(
                &Dn::root(),
                Scope::Sub,
                &Filter::eq("roomNumber", "2b-401"),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(dit.index_stats().0, before.0 + 1);
        // cn is NOT indexed in this configuration → scan.
        dit.search(
            &Dn::root(),
            Scope::Sub,
            &Filter::eq("cn", "John Doe"),
            &[],
            0,
        )
        .unwrap();
        assert_eq!(dit.index_stats().1, before.1 + 1);
    }

    // ---- compact vs legacy backing --------------------------------------

    /// Run identical search batteries on both backings and require
    /// entry-for-entry, in-order identity (the prop test extends this with
    /// randomized workloads).
    fn assert_arms_agree(compact: &Dit, legacy: &Dit) {
        for (base, scope) in [
            ("", Scope::Sub),
            ("o=Lucent", Scope::Sub),
            ("o=Lucent", Scope::One),
            ("o=Lucent", Scope::Base),
            ("o=Marketing,o=Lucent", Scope::Sub),
            ("o=Marketing,o=Lucent", Scope::One),
        ] {
            for filter in [
                "(objectClass=*)",
                "(objectClass=person)",
                "(cn=John Doe)",
                "(&(objectClass=person)(cn=J*))",
                "(|(cn=John Doe)(cn=Pat Smith))",
                "(cn=nobody)",
            ] {
                let base = if base.is_empty() {
                    Dn::root()
                } else {
                    Dn::parse(base).unwrap()
                };
                if !base.is_root() && !compact.exists(&base) {
                    continue;
                }
                let f = Filter::parse(filter).unwrap();
                let a = compact.search(&base, scope, &f, &[], 0).unwrap();
                let b = legacy.search(&base, scope, &f, &[], 0).unwrap();
                assert_eq!(a, b, "arm divergence on {filter} at {base} ({scope:?})");
            }
        }
        assert_eq!(compact.export(), legacy.export());
    }

    #[test]
    fn compact_arm_matches_legacy_arm() {
        let compact = tree();
        let legacy = legacy_tree();
        assert!(compact.is_compact());
        assert!(!legacy.is_compact());
        assert_arms_agree(&compact, &legacy);

        // Same mutations on both arms, identity preserved throughout.
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let rd = Dn::parse("o=R&D,o=Lucent").unwrap();
        for d in [&compact, &legacy] {
            d.modify(&john, &[Modification::set("telephoneNumber", "9123")])
                .unwrap();
            d.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
                .unwrap();
            d.modify_rdn(&marketing, &Rdn::new("o", "Marketing"), false, Some(&rd))
                .unwrap();
            d.delete(&Dn::parse("cn=Pat Smith,o=Marketing,o=R&D,o=Lucent").unwrap())
                .unwrap();
        }
        assert_arms_agree(&compact, &legacy);
        assert_eq!(compact.seq(), legacy.seq());
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let bulk = Dit::new();
        bulk.begin_bulk();
        figure2_tree(&bulk).unwrap();
        // Deletes and renames during bulk keep the tree coherent.
        bulk.delete(&Dn::parse("cn=Tim Dickens,o=Accounting,o=Lucent").unwrap())
            .unwrap();
        bulk.finish_bulk();
        let incr = Dit::new();
        figure2_tree(&incr).unwrap();
        incr.delete(&Dn::parse("cn=Tim Dickens,o=Accounting,o=Lucent").unwrap())
            .unwrap();
        assert_eq!(bulk.export(), incr.export());
        // Index rebuilt by finish_bulk: planner serves and results agree.
        let before = bulk.index_stats();
        let f = Filter::eq("cn", "John Doe");
        let a = bulk.search(&Dn::root(), Scope::Sub, &f, &[], 0).unwrap();
        let b = incr.search(&Dn::root(), Scope::Sub, &f, &[], 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(bulk.index_stats().0, before.0 + 1, "index serves post-bulk");
    }

    #[test]
    fn bulk_add_skips_observers_but_counts_seq() {
        let dit = Dit::new();
        let seen = Arc::new(parking_lot::Mutex::new(0usize));
        let seen2 = seen.clone();
        dit.observe(move |_| *seen2.lock() += 1);
        dit.begin_bulk();
        let mut e = Entry::new(Dn::parse("o=Lucent").unwrap());
        e.add_value("objectClass", "organization");
        e.add_value("o", "Lucent");
        dit.bulk_add(e, true).unwrap();
        dit.finish_bulk();
        assert_eq!(*seen.lock(), 0);
        assert_eq!(dit.seq(), 1);
        assert_eq!(dit.len(), 1);
    }
}
