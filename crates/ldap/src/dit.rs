//! The Directory Information Tree: an in-memory hierarchical entry store
//! implementing the LDAP update and search operations.
//!
//! Faithful to the paper's constraints:
//! - each individual update (add / delete / modify / modifyRDN) is atomic;
//! - there is **no way to group updates into a transaction** — a
//!   ModifyRDN+Modify pair is two separately observable steps (§5.1);
//! - deletes apply to leaves only;
//! - RDN uniqueness among siblings is enforced.
//!
//! ## Equality indexes
//!
//! Searches over equality (and AND-with-equality) filters are served from
//! per-attribute equality indexes instead of a full subtree scan. The
//! indexes are maintained inside the same write lock as every update, so
//! they are always consistent with the entry map, and the planner re-runs
//! the full filter over each candidate — results are bit-identical to the
//! scan path, in the same (BFS, parents-first) order, including size-limit
//! behavior. See [`DEFAULT_INDEXED_ATTRS`] and [`Dit::with_schema_indexed`].

use crate::attr::norm_value;
use crate::dn::{Dn, Rdn};
use crate::entry::{Entry, Modification};
use crate::error::{LdapError, Result, ResultCode};
use crate::filter::Filter;
use crate::schema::{Schema, SchemaRef};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Search scopes (RFC 2251 §4.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Immediate children of the base.
    One,
    /// The base and all descendants.
    Sub,
}

impl Scope {
    pub fn code(self) -> u32 {
        match self {
            Scope::Base => 0,
            Scope::One => 1,
            Scope::Sub => 2,
        }
    }

    pub fn from_code(c: u32) -> Result<Scope> {
        match c {
            0 => Ok(Scope::Base),
            1 => Ok(Scope::One),
            2 => Ok(Scope::Sub),
            _ => Err(LdapError::protocol(format!("bad scope {c}"))),
        }
    }
}

/// What changed, for observers (replication, tests).
#[derive(Debug, Clone)]
pub enum ChangeOp {
    Add(Entry),
    Delete,
    Modify(Vec<Modification>),
    ModifyRdn {
        new_rdn: Rdn,
        delete_old: bool,
        new_superior: Option<Dn>,
    },
}

/// A committed change, in commit order.
#[derive(Debug, Clone)]
pub struct ChangeRecord {
    /// Monotonic commit sequence number of this DIT.
    pub seq: u64,
    /// DN the operation addressed (pre-rename DN for ModifyRdn).
    pub dn: Dn,
    pub op: ChangeOp,
}

type Observer = Box<dyn Fn(&ChangeRecord) + Send + Sync>;

/// Attributes indexed by default: the hot lookups in a MetaComm deployment
/// (person searches by class/name/extension, plus the lexpress
/// `lastUpdater` origin attribute).
pub const DEFAULT_INDEXED_ATTRS: &[&str] = &["objectClass", "cn", "telephoneNumber", "lastUpdater"];

/// Per-attribute equality index: for each indexed attribute, a map from
/// normalized value to the normalized DN keys of every entry carrying it.
/// Lives inside [`Store`] so maintenance shares the update ops' write lock.
struct AttrIndex {
    /// norm attr name → norm value → posting list of norm entry keys.
    postings: HashMap<String, HashMap<String, BTreeSet<String>>>,
}

/// What the filter planner decided for one search.
enum Plan<'a> {
    /// Serve from this posting list (smallest among the filter's indexed
    /// equality conjuncts); every candidate is re-verified with the full
    /// filter.
    Candidates(&'a BTreeSet<String>),
    /// An indexed equality conjunct matches no entry at all: the result is
    /// provably empty, no traversal needed.
    Empty,
    /// No indexed equality conjunct applies: fall back to the scan.
    Scan,
}

impl AttrIndex {
    fn new(attrs: &[String]) -> AttrIndex {
        let mut postings = HashMap::new();
        for a in attrs {
            postings.insert(a.to_ascii_lowercase(), HashMap::new());
        }
        AttrIndex { postings }
    }

    fn enabled(&self) -> bool {
        !self.postings.is_empty()
    }

    fn insert_entry(&mut self, key: &str, e: &Entry) {
        if !self.enabled() {
            return;
        }
        for attr in e.attributes() {
            if let Some(m) = self.postings.get_mut(attr.name.norm()) {
                for v in &attr.values {
                    m.entry(norm_value(v)).or_default().insert(key.to_string());
                }
            }
        }
    }

    fn remove_entry(&mut self, key: &str, e: &Entry) {
        if !self.enabled() {
            return;
        }
        for attr in e.attributes() {
            if let Some(m) = self.postings.get_mut(attr.name.norm()) {
                for v in &attr.values {
                    let nv = norm_value(v);
                    if let Some(set) = m.get_mut(&nv) {
                        set.remove(key);
                        if set.is_empty() {
                            m.remove(&nv);
                        }
                    }
                }
            }
        }
    }

    /// Walk the filter for indexed equality conjuncts and pick the smallest
    /// posting list. Applicability rules (DESIGN.md §10): a top-level
    /// equality on an indexed attribute, or an `&` whose conjuncts (nested
    /// `&`s flatten) include one — anything else scans. A missing posting
    /// for an indexed conjunct proves the result empty.
    fn plan(&self, filter: &Filter) -> Plan<'_> {
        if !self.enabled() {
            return Plan::Scan;
        }
        let mut conjuncts: Vec<(&str, &str)> = Vec::new();
        match filter {
            Filter::Equality(..) | Filter::And(_) => collect_eq(filter, &mut conjuncts),
            _ => return Plan::Scan,
        }
        let mut best: Option<&BTreeSet<String>> = None;
        for (attr, value) in conjuncts {
            let Some(m) = self.postings.get(&attr.to_ascii_lowercase()) else {
                continue;
            };
            match m.get(&norm_value(value)) {
                None => return Plan::Empty,
                Some(set) => {
                    if best.is_none_or(|b| set.len() < b.len()) {
                        best = Some(set);
                    }
                }
            }
        }
        match best {
            Some(set) => Plan::Candidates(set),
            None => Plan::Scan,
        }
    }
}

/// Equality conjuncts of a filter: the filter itself, or — through nested
/// `&`s, which are conjunctive — every equality child.
fn collect_eq<'f>(f: &'f Filter, out: &mut Vec<(&'f str, &'f str)>) {
    match f {
        Filter::Equality(a, v) => out.push((a, v)),
        Filter::And(fs) => {
            for c in fs {
                collect_eq(c, out);
            }
        }
        _ => {}
    }
}

struct Store {
    /// norm DN key → entry
    entries: HashMap<String, Entry>,
    /// norm parent key → norm child keys ("" is the DIT root)
    children: HashMap<String, BTreeSet<String>>,
    index: AttrIndex,
    seq: u64,
}

impl Store {
    fn new(indexed_attrs: &[String]) -> Store {
        let mut children = HashMap::new();
        children.insert(String::new(), BTreeSet::new());
        Store {
            entries: HashMap::new(),
            children,
            index: AttrIndex::new(indexed_attrs),
            seq: 0,
        }
    }
}

/// The DIT. Cheap to clone the handle (`Arc` inside); all methods take
/// `&self` and are safe for concurrent use.
pub struct Dit {
    store: RwLock<Store>,
    schema: SchemaRef,
    observers: RwLock<Vec<Observer>>,
    /// One/Sub searches answered from the equality index (incl. provably
    /// empty results).
    index_served: AtomicU64,
    /// One/Sub searches that fell back to the scan.
    index_scanned: AtomicU64,
}

impl Dit {
    /// DIT with schema checking off and the default equality indexes.
    pub fn new() -> Arc<Dit> {
        Dit::with_schema(Arc::new(Schema::permissive()))
    }

    /// DIT validating every write against `schema`, with the
    /// [`DEFAULT_INDEXED_ATTRS`] equality indexes.
    pub fn with_schema(schema: SchemaRef) -> Arc<Dit> {
        Dit::with_schema_indexed(schema, DEFAULT_INDEXED_ATTRS)
    }

    /// DIT with an explicit equality-index attribute set. An empty slice
    /// disables indexing entirely (every search scans — the ablation
    /// baseline for benchmarks).
    pub fn with_schema_indexed(schema: SchemaRef, indexed_attrs: &[&str]) -> Arc<Dit> {
        let attrs: Vec<String> = indexed_attrs.iter().map(|s| s.to_string()).collect();
        Arc::new(Dit {
            store: RwLock::new(Store::new(&attrs)),
            schema,
            observers: RwLock::new(Vec::new()),
            index_served: AtomicU64::new(0),
            index_scanned: AtomicU64::new(0),
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The attributes carrying an equality index, normalized and sorted.
    pub fn indexed_attrs(&self) -> Vec<String> {
        let s = self.store.read();
        let mut attrs: Vec<String> = s.index.postings.keys().cloned().collect();
        attrs.sort();
        attrs
    }

    /// `(served, scanned)`: One/Sub searches answered from the equality
    /// index vs. by subtree scan, since construction.
    pub fn index_stats(&self) -> (u64, u64) {
        (
            self.index_served.load(Ordering::Relaxed),
            self.index_scanned.load(Ordering::Relaxed),
        )
    }

    /// Register a commit observer (replication, LTAP library mode, tests).
    /// Observers run synchronously inside the commit, in registration order.
    pub fn observe(&self, f: impl Fn(&ChangeRecord) + Send + Sync + 'static) {
        self.observers.write().push(Box::new(f));
    }

    fn emit(&self, rec: ChangeRecord) {
        for obs in self.observers.read().iter() {
            obs(&rec);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.store.read().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Commit sequence of the most recent update.
    pub fn seq(&self) -> u64 {
        self.store.read().seq
    }

    /// Fast-forward the commit sequence (recovery: replaying a snapshot and
    /// log re-runs commits with fresh low sequence numbers, so the counter
    /// must be restored to the pre-crash value before new commits continue
    /// the original numbering). Only ever moves forward.
    pub fn set_seq(&self, seq: u64) {
        let mut s = self.store.write();
        s.seq = s.seq.max(seq);
    }

    /// Fetch a copy of one entry.
    pub fn get(&self, dn: &Dn) -> Option<Entry> {
        self.store.read().entries.get(&dn.norm_key()).cloned()
    }

    pub fn exists(&self, dn: &Dn) -> bool {
        self.store.read().entries.contains_key(&dn.norm_key())
    }

    /// Add an entry. The parent must exist unless the entry is a suffix
    /// (depth-1) entry.
    pub fn add(&self, entry: Entry) -> Result<()> {
        if entry.dn().is_root() {
            return Err(LdapError::unwilling("cannot add the root DSE"));
        }
        self.schema.validate_entry(&entry)?;
        let key = entry.dn().norm_key();
        let parent = entry.dn().parent().expect("non-root");
        let parent_key = parent.norm_key();
        let mut guard = self.store.write();
        let s = &mut *guard;
        if s.entries.contains_key(&key) {
            return Err(LdapError::already_exists(entry.dn()));
        }
        if !parent.is_root() && !s.entries.contains_key(&parent_key) {
            return Err(LdapError::new(
                ResultCode::NoSuchObject,
                format!("parent of `{}` does not exist", entry.dn()),
            ));
        }
        s.children
            .entry(parent_key)
            .or_default()
            .insert(key.clone());
        s.children.entry(key.clone()).or_default();
        s.index.insert_entry(&key, &entry);
        s.entries.insert(key, entry.clone());
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: entry.dn().clone(),
            op: ChangeOp::Add(entry),
        };
        drop(guard);
        self.emit(rec);
        Ok(())
    }

    /// Delete a leaf entry.
    pub fn delete(&self, dn: &Dn) -> Result<()> {
        let key = dn.norm_key();
        let mut guard = self.store.write();
        let s = &mut *guard;
        if !s.entries.contains_key(&key) {
            return Err(LdapError::no_such_object(dn));
        }
        if s.children.get(&key).is_some_and(|c| !c.is_empty()) {
            return Err(LdapError::new(
                ResultCode::NotAllowedOnNonLeaf,
                format!("`{dn}` has children"),
            ));
        }
        let removed = s.entries.remove(&key).expect("checked");
        s.index.remove_entry(&key, &removed);
        s.children.remove(&key);
        let parent_key = dn.parent().map(|p| p.norm_key()).unwrap_or_default();
        if let Some(siblings) = s.children.get_mut(&parent_key) {
            siblings.remove(&key);
        }
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::Delete,
        };
        drop(guard);
        self.emit(rec);
        Ok(())
    }

    /// Modify an entry in place. All modifications apply atomically; RDN
    /// attribute values cannot be removed (use [`Dit::modify_rdn`]).
    pub fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        let key = dn.norm_key();
        let mut guard = self.store.write();
        let s = &mut *guard;
        let entry = s
            .entries
            .get(&key)
            .ok_or_else(|| LdapError::no_such_object(dn))?;
        let mut updated = entry.clone();
        updated.apply_modifications(mods)?;
        // Naming invariant even under a permissive schema.
        if let Some(rdn) = dn.rdn() {
            for ava in rdn.avas() {
                if !updated.has_value(ava.attr(), ava.value()) {
                    return Err(LdapError::new(
                        ResultCode::NotAllowedOnRdn,
                        format!(
                            "modification would remove RDN value `{}={}`",
                            ava.attr(),
                            ava.value()
                        ),
                    ));
                }
            }
        }
        self.schema.validate_entry(&updated)?;
        s.index.remove_entry(&key, entry);
        s.index.insert_entry(&key, &updated);
        s.entries.insert(key, updated);
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::Modify(mods.to_vec()),
        };
        drop(guard);
        self.emit(rec);
        Ok(())
    }

    /// Rename an entry (and implicitly its subtree) and optionally move it
    /// under `new_superior` (LDAPv3 ModifyDN).
    ///
    /// `delete_old` removes the old RDN values from the entry's attributes.
    pub fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        if dn.is_root() {
            return Err(LdapError::unwilling("cannot rename the root"));
        }
        let old_key = dn.norm_key();
        let new_dn = match new_superior {
            Some(sup) => sup.child(new_rdn.clone()),
            None => dn.with_rdn(new_rdn.clone())?,
        };
        let new_key = new_dn.norm_key();
        let mut guard = self.store.write();
        let s = &mut *guard;
        if !s.entries.contains_key(&old_key) {
            return Err(LdapError::no_such_object(dn));
        }
        if let Some(sup) = new_superior {
            if !sup.is_root() && !s.entries.contains_key(&sup.norm_key()) {
                return Err(LdapError::no_such_object(sup));
            }
            // Refuse to move an entry under its own subtree.
            if sup.is_within(dn) {
                return Err(LdapError::unwilling(format!(
                    "cannot move `{dn}` under its own descendant `{sup}`"
                )));
            }
        }
        if new_key != old_key && s.entries.contains_key(&new_key) {
            return Err(LdapError::already_exists(&new_dn));
        }
        // Update the renamed entry's attributes.
        let mut entry = s.entries.get(&old_key).cloned().expect("checked");
        if delete_old {
            if let Some(old_rdn) = dn.rdn() {
                for ava in old_rdn.avas() {
                    entry.remove_value(ava.attr(), ava.value());
                }
            }
        }
        for ava in new_rdn.avas() {
            if !entry.has_value(ava.attr(), ava.value()) {
                entry.add_value(ava.attr().to_string(), ava.value().to_string());
            }
        }
        entry.set_dn(new_dn.clone());
        self.schema.validate_entry(&entry)?;

        // Re-key the whole subtree (indexes follow: every moved entry is
        // unindexed under its old key and reindexed under the new one).
        let descendants = collect_subtree(s, &old_key);
        let old_depth = dn.depth();
        for desc_key in &descendants {
            let old_entry = s.entries.remove(desc_key).expect("subtree member");
            s.index.remove_entry(desc_key, &old_entry);
            let children = s.children.remove(desc_key).unwrap_or_default();
            let e = if *desc_key == old_key {
                entry.clone()
            } else {
                let mut e = old_entry;
                let rdns = e.dn().rdns();
                let keep = rdns.len() - old_depth;
                let mut new_rdns = rdns[..keep].to_vec();
                new_rdns.extend(new_dn.rdns().iter().cloned());
                e.set_dn(Dn::from_rdns(new_rdns));
                e
            };
            let rewritten_children: BTreeSet<String> = children
                .iter()
                .map(|c| rewrite_key(c, &old_key, &new_key))
                .collect();
            let new_desc_key = e.dn().norm_key();
            s.index.insert_entry(&new_desc_key, &e);
            s.children.insert(new_desc_key.clone(), rewritten_children);
            s.entries.insert(new_desc_key, e);
        }
        // Fix parent links.
        let old_parent_key = dn.parent().map(|p| p.norm_key()).unwrap_or_default();
        if let Some(siblings) = s.children.get_mut(&old_parent_key) {
            siblings.remove(&old_key);
        }
        let new_parent_key = new_dn.parent().map(|p| p.norm_key()).unwrap_or_default();
        s.children
            .entry(new_parent_key)
            .or_default()
            .insert(new_key);
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::ModifyRdn {
                new_rdn: new_rdn.clone(),
                delete_old,
                new_superior: new_superior.cloned(),
            },
        };
        drop(guard);
        self.emit(rec);
        Ok(())
    }

    /// Compare one attribute value (RFC 2251 Compare).
    pub fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        let s = self.store.read();
        let entry = s
            .entries
            .get(&dn.norm_key())
            .ok_or_else(|| LdapError::no_such_object(dn))?;
        Ok(entry.has_value(attr, value))
    }

    /// Search. `attrs` selects returned attributes (empty = all);
    /// `size_limit` of 0 means unlimited, otherwise exceeding it is an error.
    ///
    /// One/Sub searches go through the filter planner first; indexed
    /// results are produced in the same order the scan would produce them.
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        let (out, truncated) = self.search_capped(base, scope, filter, attrs, size_limit)?;
        if truncated {
            return Err(LdapError::new(
                ResultCode::SizeLimitExceeded,
                format!("more than {size_limit} entries match"),
            ));
        }
        Ok(out)
    }

    /// Like [`Dit::search`], but a size-limit overflow is not an error:
    /// the entries collected up to the limit are returned together with a
    /// "truncated" flag — the RFC 2251 `sizeLimitExceeded` shape the wire
    /// server needs.
    pub fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        let mut out = Vec::new();
        let (_, truncated) = self.walk(base, scope, filter, size_limit, &mut |e| {
            out.push(e.project(attrs))
        })?;
        Ok((out, truncated))
    }

    /// Stream matching entries through `visit` instead of collecting them:
    /// with an empty projection the visitor borrows entries straight out of
    /// the store — no per-entry clone and no result vector. Returns
    /// `(matches visited, truncated)`.
    ///
    /// The store's read lock is held while `visit` runs (concurrent
    /// searches proceed; writers wait), so visitors must do bounded work —
    /// the wire server's visitor only appends to its encode buffer.
    pub fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        if attrs.is_empty() {
            self.walk(base, scope, filter, size_limit, visit)
        } else {
            self.walk(base, scope, filter, size_limit, &mut |e| {
                visit(&e.project(attrs))
            })
        }
    }

    /// The traversal core shared by the collecting and streaming searches:
    /// scope dispatch, filter planning, size-limit truncation. `emit`
    /// receives every post-filter match, pre-projection.
    fn walk(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        size_limit: usize,
        emit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        let guard = self.store.read();
        let s = &*guard;
        let base_key = base.norm_key();
        if !base.is_root() && !s.entries.contains_key(&base_key) {
            return Err(LdapError::no_such_object(base));
        }
        let mut count = 0usize;
        let mut truncated = false;
        // The push closure signals "stop traversing" with a sentinel error
        // once the limit is hit; the entries emitted so far are kept.
        let mut push = |e: &Entry| -> Result<()> {
            if filter.matches(e) {
                if size_limit != 0 && count >= size_limit {
                    truncated = true;
                    return Err(LdapError::new(
                        ResultCode::SizeLimitExceeded,
                        "size limit reached",
                    ));
                }
                count += 1;
                emit(e);
            }
            Ok(())
        };
        let walked = (|| -> Result<()> {
            match scope {
                Scope::Base => {
                    if let Some(e) = s.entries.get(&base_key) {
                        push(e)?;
                    }
                }
                Scope::One => match s.index.plan(filter) {
                    Plan::Empty => {
                        self.index_served.fetch_add(1, Ordering::Relaxed);
                    }
                    Plan::Candidates(keys) => {
                        self.index_served.fetch_add(1, Ordering::Relaxed);
                        if let Some(kids) = s.children.get(&base_key) {
                            // Both sets iterate in norm-key order; siblings
                            // share a suffix, so this is exactly the scan order.
                            for k in keys {
                                if kids.contains(k) {
                                    push(&s.entries[k])?;
                                }
                            }
                        }
                    }
                    Plan::Scan => {
                        self.index_scanned.fetch_add(1, Ordering::Relaxed);
                        if let Some(kids) = s.children.get(&base_key) {
                            for k in kids {
                                push(&s.entries[k])?;
                            }
                        }
                    }
                },
                Scope::Sub => match s.index.plan(filter) {
                    Plan::Empty => {
                        self.index_served.fetch_add(1, Ordering::Relaxed);
                    }
                    Plan::Candidates(keys) => {
                        self.index_served.fetch_add(1, Ordering::Relaxed);
                        // Restrict candidates to the subtree, then emit in BFS
                        // order: by depth, then by the chain of ancestor keys
                        // (BTreeSet sibling order at every level) — the exact
                        // order the scan's queue produces.
                        let mut cands: Vec<(usize, Vec<String>, &String)> = keys
                            .iter()
                            .filter_map(|k| {
                                let e = s.entries.get(k)?;
                                if !base.is_root() && !e.dn().is_within(base) {
                                    return None;
                                }
                                let chain = ancestor_chain(e.dn());
                                Some((chain.len(), chain, k))
                            })
                            .collect();
                        cands.sort();
                        for (_, _, k) in &cands {
                            push(&s.entries[*k])?;
                        }
                    }
                    Plan::Scan => {
                        self.index_scanned.fetch_add(1, Ordering::Relaxed);
                        visit_subtree(s, &base_key, &mut |k| {
                            if k.is_empty() {
                                return Ok(()); // virtual root
                            }
                            push(&s.entries[k])
                        })?;
                    }
                },
            }
            Ok(())
        })();
        match walked {
            Ok(()) => {}
            Err(e) if e.code == ResultCode::SizeLimitExceeded => {}
            Err(e) => return Err(e),
        }
        Ok((count, truncated))
    }

    /// Every entry, parents before children (for export / sync dumps).
    pub fn export(&self) -> Vec<Entry> {
        self.export_with_seq().0
    }

    /// [`Dit::export`] plus the commit sequence the export reflects, read
    /// under one lock — the atomic cut a consistent snapshot needs.
    pub fn export_with_seq(&self) -> (Vec<Entry>, u64) {
        let guard = self.store.read();
        let s = &*guard;
        let mut out = Vec::new();
        visit_subtree(s, "", &mut |k| {
            if !k.is_empty() {
                out.push(s.entries[k].clone());
            }
            Ok(())
        })
        .expect("infallible visitor");
        (out, s.seq)
    }

    /// Remove everything (used by resynchronization).
    pub fn clear(&self) {
        let mut s = self.store.write();
        s.entries.clear();
        s.children.clear();
        s.children.insert(String::new(), BTreeSet::new());
        for postings in s.index.postings.values_mut() {
            postings.clear();
        }
    }
}

/// BFS over the subtree rooted at `root_key` (inclusive), parents first,
/// borrowing keys from the store — O(depth) queue of `&str`, no per-entry
/// `String` allocation.
fn visit_subtree<'a>(
    s: &'a Store,
    root_key: &'a str,
    visit: &mut dyn FnMut(&'a str) -> Result<()>,
) -> Result<()> {
    let mut queue: VecDeque<&'a str> = VecDeque::new();
    queue.push_back(root_key);
    while let Some(k) = queue.pop_front() {
        if let Some(kids) = s.children.get(k) {
            for c in kids {
                queue.push_back(c);
            }
        }
        visit(k)?;
    }
    Ok(())
}

/// Owned-key BFS — only for `modify_rdn`, which mutates the maps while
/// walking the collected keys.
fn collect_subtree(s: &Store, root_key: &str) -> Vec<String> {
    let mut out = Vec::new();
    visit_subtree(s, root_key, &mut |k| {
        out.push(k.to_string());
        Ok(())
    })
    .expect("infallible visitor");
    out
}

/// Full norm keys of `dn`'s ancestors, topmost (depth 1) first, ending with
/// `dn`'s own key. Comparing `(len, chain)` tuples reproduces the scan's
/// BFS emission order: depth level by level, and within a level the
/// `BTreeSet` sibling order at the first diverging ancestor.
fn ancestor_chain(dn: &Dn) -> Vec<String> {
    let rdns = dn.rdns();
    let mut out = Vec::with_capacity(rdns.len());
    let mut cur = String::new();
    for rdn in rdns.iter().rev() {
        let rk = rdn.norm_key();
        let full = if cur.is_empty() {
            rk
        } else {
            format!("{rk},{cur}")
        };
        out.push(full.clone());
        cur = full;
    }
    out
}

fn rewrite_key(key: &str, old_suffix: &str, new_suffix: &str) -> String {
    if key == old_suffix {
        return new_suffix.to_string();
    }
    match key.strip_suffix(old_suffix) {
        Some(prefix) => format!("{prefix}{new_suffix}"),
        None => key.to_string(),
    }
}

/// Convenience: build the standard test tree from the paper's Figure 2.
///
/// ```text
/// o=Lucent
/// ├── o=Marketing     ── cn=John Doe, cn=Pat Smith
/// ├── o=Accounting    ── cn=Tim Dickens
/// ├── o=R&D           ── cn=Jill Lu
/// └── o=DEN Group
/// ```
pub fn figure2_tree(dit: &Dit) -> Result<()> {
    let org = |name: &str| {
        Entry::with_attrs(
            Dn::parse(name).unwrap(),
            [("objectClass", "top"), ("objectClass", "organization")],
        )
    };
    let mut lucent = org("o=Lucent");
    lucent.add_value("o", "Lucent");
    dit.add(lucent)?;
    for (unit, people) in [
        ("Marketing", vec!["John Doe", "Pat Smith"]),
        ("Accounting", vec!["Tim Dickens"]),
        ("R&D", vec!["Jill Lu"]),
        ("DEN Group", vec![]),
    ] {
        let dn = Dn::root()
            .child(Rdn::new("o", "Lucent"))
            .child(Rdn::new("o", unit));
        let mut e = Entry::new(dn.clone());
        e.add_value("objectClass", "top");
        e.add_value("objectClass", "organization");
        e.add_value("o", unit);
        dit.add(e)?;
        for person in people {
            let pdn = dn.child(Rdn::new("cn", person));
            let sn = person.split_whitespace().last().unwrap_or(person);
            let e = Entry::with_attrs(
                pdn,
                [
                    ("objectClass", "top"),
                    ("objectClass", "person"),
                    ("cn", person),
                    ("sn", sn),
                ],
            );
            dit.add(e)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Arc<Dit> {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        dit
    }

    /// Same tree, indexing disabled — the scan reference.
    fn scan_tree() -> Arc<Dit> {
        let dit = Dit::with_schema_indexed(Arc::new(Schema::permissive()), &[]);
        figure2_tree(&dit).unwrap();
        dit
    }

    #[test]
    fn figure2_builds() {
        let dit = tree();
        assert_eq!(dit.len(), 9); // 1 + 4 orgs + 4 people
        assert!(dit.exists(&Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap()));
    }

    #[test]
    fn add_requires_parent() {
        let dit = Dit::new();
        let e = Entry::with_attrs(
            Dn::parse("cn=X,o=Nowhere").unwrap(),
            [("objectClass", "person"), ("cn", "X"), ("sn", "X")],
        );
        let err = dit.add(e).unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);
    }

    #[test]
    fn add_duplicate_rejected() {
        let dit = tree();
        let e = Entry::with_attrs(
            Dn::parse("cn=JOHN DOE,o=marketing,o=lucent").unwrap(),
            [("objectClass", "person"), ("cn", "JOHN DOE"), ("sn", "Doe")],
        );
        let err = dit.add(e).unwrap_err();
        assert_eq!(err.code, ResultCode::EntryAlreadyExists);
    }

    #[test]
    fn delete_leaf_only() {
        let dit = tree();
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let err = dit.delete(&marketing).unwrap_err();
        assert_eq!(err.code, ResultCode::NotAllowedOnNonLeaf);
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.delete(&john).unwrap();
        assert!(!dit.exists(&john));
        assert_eq!(
            dit.delete(&john).unwrap_err().code,
            ResultCode::NoSuchObject
        );
    }

    #[test]
    fn modify_updates_entry() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(
            &john,
            &[Modification::set("telephoneNumber", "+1 908 582 9123")],
        )
        .unwrap();
        assert_eq!(
            dit.get(&john).unwrap().first("telephoneNumber"),
            Some("+1 908 582 9123")
        );
    }

    #[test]
    fn modify_cannot_remove_rdn_value() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify(&john, &[Modification::set("cn", "Other Name")])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NotAllowedOnRdn);
    }

    #[test]
    fn modify_rdn_renames_and_updates_attrs() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
            .unwrap();
        assert!(!dit.exists(&john));
        let jack = Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap();
        let e = dit.get(&jack).unwrap();
        assert!(e.has_value("cn", "Jack Doe"));
        assert!(!e.has_value("cn", "John Doe"));
    }

    #[test]
    fn modify_rdn_keep_old_values() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), false, None)
            .unwrap();
        let jack = Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap();
        let e = dit.get(&jack).unwrap();
        assert!(e.has_value("cn", "Jack Doe"));
        assert!(e.has_value("cn", "John Doe"));
    }

    #[test]
    fn modify_rdn_collision_rejected() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify_rdn(&john, &Rdn::new("cn", "Pat Smith"), true, None)
            .unwrap_err();
        assert_eq!(err.code, ResultCode::EntryAlreadyExists);
    }

    #[test]
    fn subtree_move_rekeys_descendants() {
        let dit = tree();
        // Move the whole Marketing org under R&D.
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let rd = Dn::parse("o=R&D,o=Lucent").unwrap();
        dit.modify_rdn(&marketing, &Rdn::new("o", "Marketing"), false, Some(&rd))
            .unwrap();
        assert!(dit.exists(&Dn::parse("o=Marketing,o=R&D,o=Lucent").unwrap()));
        let moved = Dn::parse("cn=John Doe,o=Marketing,o=R&D,o=Lucent").unwrap();
        assert!(dit.exists(&moved), "descendant should move with subtree");
        assert!(!dit.exists(&Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap()));
        // The moved child's stored DN matches its key.
        assert_eq!(dit.get(&moved).unwrap().dn(), &moved);
    }

    #[test]
    fn cannot_move_under_own_descendant() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify_rdn(&lucent, &Rdn::new("o", "Lucent"), false, Some(&marketing))
            .unwrap_err();
        assert_eq!(err.code, ResultCode::UnwillingToPerform);
    }

    #[test]
    fn search_scopes() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let all = Filter::match_all();
        assert_eq!(
            dit.search(&lucent, Scope::Base, &all, &[], 0)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            dit.search(&lucent, Scope::One, &all, &[], 0).unwrap().len(),
            4
        );
        assert_eq!(
            dit.search(&lucent, Scope::Sub, &all, &[], 0).unwrap().len(),
            9
        );
        // root-based search sees everything
        assert_eq!(
            dit.search(&Dn::root(), Scope::Sub, &all, &[], 0)
                .unwrap()
                .len(),
            9
        );
    }

    #[test]
    fn search_filter_and_projection() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let f = Filter::parse("(&(objectClass=person)(cn=J*))").unwrap();
        let hits = dit
            .search(&lucent, Scope::Sub, &f, &["cn".into()], 0)
            .unwrap();
        assert_eq!(hits.len(), 2); // John Doe, Jill Lu
        for e in &hits {
            assert!(e.has_attr("cn"));
            assert!(!e.has_attr("sn"));
        }
    }

    #[test]
    fn search_size_limit() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let err = dit
            .search(&lucent, Scope::Sub, &Filter::match_all(), &[], 3)
            .unwrap_err();
        assert_eq!(err.code, ResultCode::SizeLimitExceeded);
    }

    #[test]
    fn search_missing_base() {
        let dit = tree();
        let err = dit
            .search(
                &Dn::parse("o=Nothing").unwrap(),
                Scope::Sub,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);
    }

    #[test]
    fn compare_semantics() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        assert!(dit.compare(&john, "sn", "doe").unwrap());
        assert!(!dit.compare(&john, "sn", "smith").unwrap());
        assert!(dit
            .compare(&Dn::parse("cn=ghost,o=Lucent").unwrap(), "sn", "x")
            .is_err());
    }

    #[test]
    fn export_is_parent_first() {
        let dit = tree();
        let entries = dit.export();
        assert_eq!(entries.len(), 9);
        // Every entry's parent appears earlier (or is the root).
        for (i, e) in entries.iter().enumerate() {
            if let Some(parent) = e.dn().parent() {
                if parent.is_root() {
                    continue;
                }
                let pos = entries
                    .iter()
                    .position(|x| x.dn() == &parent)
                    .expect("parent present");
                assert!(pos < i, "parent of {} must precede it", e.dn());
            }
        }
    }

    #[test]
    fn observers_see_commits_in_order() {
        let dit = Dit::new();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        dit.observe(move |rec| seen2.lock().push(rec.seq));
        figure2_tree(&dit).unwrap();
        let v = seen.lock();
        assert_eq!(v.len(), 9);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn schema_checked_on_add_and_modify() {
        let dit = Dit::with_schema(Arc::new(Schema::x500_core()));
        let mut lucent = Entry::new(Dn::parse("o=Lucent").unwrap());
        lucent.add_value("objectClass", "top");
        lucent.add_value("objectClass", "organization");
        lucent.add_value("o", "Lucent");
        dit.add(lucent).unwrap();
        // Missing sn → rejected
        let bad = Entry::with_attrs(
            Dn::parse("cn=X,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "X"),
            ],
        );
        assert_eq!(
            dit.add(bad).unwrap_err().code,
            ResultCode::ObjectClassViolation
        );
        let good = Entry::with_attrs(
            Dn::parse("cn=X,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "X"),
                ("sn", "X"),
            ],
        );
        dit.add(good).unwrap();
        // Modify deleting a must attribute → rejected, entry unchanged
        let dn = Dn::parse("cn=X,o=Lucent").unwrap();
        let err = dit
            .modify(&dn, &[Modification::delete_attr("sn")])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
        assert!(dit.get(&dn).unwrap().has_attr("sn"));
    }

    #[test]
    fn clear_resets() {
        let dit = tree();
        dit.clear();
        assert!(dit.is_empty());
        // Can rebuild after clear (indexes too).
        figure2_tree(&dit).unwrap();
        assert_eq!(dit.len(), 9);
        let hits = dit
            .search(
                &Dn::root(),
                Scope::Sub,
                &Filter::eq("cn", "John Doe"),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    // ---- equality-index tests -------------------------------------------

    /// Every search below must agree, entry-for-entry and in order, with
    /// the index-free reference DIT.
    fn assert_same_results(indexed: &Dit, scan: &Dit, base: &str, scope: Scope, filter: &str) {
        let base = Dn::parse(base).unwrap();
        let f = Filter::parse(filter).unwrap();
        let a = indexed.search(&base, scope, &f, &[], 0).unwrap();
        let b = scan.search(&base, scope, &f, &[], 0).unwrap();
        assert_eq!(a, b, "divergence on {filter} at {base} ({scope:?})");
    }

    #[test]
    fn default_indexes_installed_and_listed() {
        let dit = Dit::new();
        assert_eq!(
            dit.indexed_attrs(),
            vec!["cn", "lastupdater", "objectclass", "telephonenumber"]
        );
        // And can be disabled entirely.
        let off = Dit::with_schema_indexed(Arc::new(Schema::permissive()), &[]);
        assert!(off.indexed_attrs().is_empty());
    }

    #[test]
    fn indexed_search_matches_scan_in_content_and_order() {
        let indexed = tree();
        let scan = scan_tree();
        for filter in [
            "(objectClass=person)",
            "(objectClass=organization)",
            "(cn=John Doe)",
            "(cn=JOHN   doe)", // caseIgnoreMatch + whitespace squeeze
            "(&(objectClass=person)(cn=Jill Lu))",
            "(&(objectClass=person)(cn=J*))", // AND with one indexed conjunct
            "(|(cn=John Doe)(cn=Pat Smith))", // OR falls back to scan
            "(cn=nobody)",
            "(sn=Doe)", // unindexed attr falls back
        ] {
            assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, filter);
            assert_same_results(&indexed, &scan, "o=Marketing,o=Lucent", Scope::Sub, filter);
            assert_same_results(&indexed, &scan, "o=Lucent", Scope::One, filter);
        }
        let (served, _) = indexed.index_stats();
        assert!(served > 0, "indexed paths must actually run");
        let (served_off, scanned_off) = scan.index_stats();
        assert_eq!(served_off, 0);
        assert!(scanned_off > 0);
    }

    #[test]
    fn planner_applicability() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let probe = |f: &str| {
            let before = dit.index_stats();
            dit.search(&lucent, Scope::Sub, &Filter::parse(f).unwrap(), &[], 0)
                .unwrap();
            let after = dit.index_stats();
            (after.0 - before.0, after.1 - before.1)
        };
        assert_eq!(probe("(cn=John Doe)"), (1, 0), "indexed equality");
        assert_eq!(probe("(cn=nobody)"), (1, 0), "provably empty");
        assert_eq!(
            probe("(&(objectClass=person)(sn=Doe))"),
            (1, 0),
            "AND with one indexed conjunct"
        );
        assert_eq!(probe("(sn=Doe)"), (0, 1), "unindexed attr scans");
        assert_eq!(probe("(cn=J*)"), (0, 1), "substring scans");
        assert_eq!(probe("(!(cn=John Doe))"), (0, 1), "negation scans");
        assert_eq!(probe("(objectClass=*)"), (0, 1), "presence scans");
    }

    #[test]
    fn index_follows_modify_delete_and_rename() {
        let indexed = tree();
        let scan = scan_tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        for d in [&indexed, &scan] {
            d.modify(&john, &[Modification::set("telephoneNumber", "9123")])
                .unwrap();
        }
        assert_same_results(
            &indexed,
            &scan,
            "o=Lucent",
            Scope::Sub,
            "(telephoneNumber=9123)",
        );
        // Rename: the old cn posting must go, the new one appear.
        for d in [&indexed, &scan] {
            d.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
                .unwrap();
        }
        assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, "(cn=John Doe)");
        assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, "(cn=Jack Doe)");
        // Subtree move: descendants reindex under their new keys.
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let rd = Dn::parse("o=R&D,o=Lucent").unwrap();
        for d in [&indexed, &scan] {
            d.modify_rdn(&marketing, &Rdn::new("o", "Marketing"), false, Some(&rd))
                .unwrap();
        }
        assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, "(cn=Jack Doe)");
        assert_same_results(
            &indexed,
            &scan,
            "o=R&D,o=Lucent",
            Scope::Sub,
            "(cn=Jack Doe)",
        );
        // Delete drops the posting.
        let jack = Dn::parse("cn=Jack Doe,o=Marketing,o=R&D,o=Lucent").unwrap();
        for d in [&indexed, &scan] {
            d.delete(&jack).unwrap();
        }
        assert_same_results(&indexed, &scan, "o=Lucent", Scope::Sub, "(cn=Jack Doe)");
    }

    #[test]
    fn indexed_size_limit_matches_scan() {
        let indexed = tree();
        let scan = scan_tree();
        let base = Dn::parse("o=Lucent").unwrap();
        let f = Filter::eq("objectClass", "person");
        let a = indexed.search(&base, Scope::Sub, &f, &[], 2).unwrap_err();
        let b = scan.search(&base, Scope::Sub, &f, &[], 2).unwrap_err();
        assert_eq!(a.code, b.code);
        assert_eq!(a.code, ResultCode::SizeLimitExceeded);
    }

    #[test]
    fn custom_indexed_attrs() {
        let dit = Dit::with_schema_indexed(Arc::new(Schema::permissive()), &["roomNumber"]);
        figure2_tree(&dit).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("roomNumber", "2B-401")])
            .unwrap();
        let before = dit.index_stats();
        let hits = dit
            .search(
                &Dn::root(),
                Scope::Sub,
                &Filter::eq("roomNumber", "2b-401"),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(dit.index_stats().0, before.0 + 1);
        // cn is NOT indexed in this configuration → scan.
        dit.search(
            &Dn::root(),
            Scope::Sub,
            &Filter::eq("cn", "John Doe"),
            &[],
            0,
        )
        .unwrap();
        assert_eq!(dit.index_stats().1, before.1 + 1);
    }
}
