//! The Directory Information Tree: an in-memory hierarchical entry store
//! implementing the LDAP update and search operations.
//!
//! Faithful to the paper's constraints:
//! - each individual update (add / delete / modify / modifyRDN) is atomic;
//! - there is **no way to group updates into a transaction** — a
//!   ModifyRDN+Modify pair is two separately observable steps (§5.1);
//! - deletes apply to leaves only;
//! - RDN uniqueness among siblings is enforced.

use crate::dn::{Dn, Rdn};
use crate::entry::{Entry, Modification};
use crate::error::{LdapError, Result, ResultCode};
use crate::filter::Filter;
use crate::schema::{Schema, SchemaRef};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Search scopes (RFC 2251 §4.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Immediate children of the base.
    One,
    /// The base and all descendants.
    Sub,
}

impl Scope {
    pub fn code(self) -> u32 {
        match self {
            Scope::Base => 0,
            Scope::One => 1,
            Scope::Sub => 2,
        }
    }

    pub fn from_code(c: u32) -> Result<Scope> {
        match c {
            0 => Ok(Scope::Base),
            1 => Ok(Scope::One),
            2 => Ok(Scope::Sub),
            _ => Err(LdapError::protocol(format!("bad scope {c}"))),
        }
    }
}

/// What changed, for observers (replication, tests).
#[derive(Debug, Clone)]
pub enum ChangeOp {
    Add(Entry),
    Delete,
    Modify(Vec<Modification>),
    ModifyRdn {
        new_rdn: Rdn,
        delete_old: bool,
        new_superior: Option<Dn>,
    },
}

/// A committed change, in commit order.
#[derive(Debug, Clone)]
pub struct ChangeRecord {
    /// Monotonic commit sequence number of this DIT.
    pub seq: u64,
    /// DN the operation addressed (pre-rename DN for ModifyRdn).
    pub dn: Dn,
    pub op: ChangeOp,
}

type Observer = Box<dyn Fn(&ChangeRecord) + Send + Sync>;

struct Store {
    /// norm DN key → entry
    entries: HashMap<String, Entry>,
    /// norm parent key → norm child keys ("" is the DIT root)
    children: HashMap<String, BTreeSet<String>>,
    seq: u64,
}

impl Store {
    fn new() -> Store {
        let mut children = HashMap::new();
        children.insert(String::new(), BTreeSet::new());
        Store {
            entries: HashMap::new(),
            children,
            seq: 0,
        }
    }
}

/// The DIT. Cheap to clone the handle (`Arc` inside); all methods take
/// `&self` and are safe for concurrent use.
pub struct Dit {
    store: RwLock<Store>,
    schema: SchemaRef,
    observers: RwLock<Vec<Observer>>,
}

impl Dit {
    /// DIT with schema checking off.
    pub fn new() -> Arc<Dit> {
        Dit::with_schema(Arc::new(Schema::permissive()))
    }

    /// DIT validating every write against `schema`.
    pub fn with_schema(schema: SchemaRef) -> Arc<Dit> {
        Arc::new(Dit {
            store: RwLock::new(Store::new()),
            schema,
            observers: RwLock::new(Vec::new()),
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Register a commit observer (replication, LTAP library mode, tests).
    /// Observers run synchronously inside the commit, in registration order.
    pub fn observe(&self, f: impl Fn(&ChangeRecord) + Send + Sync + 'static) {
        self.observers.write().push(Box::new(f));
    }

    fn emit(&self, rec: ChangeRecord) {
        for obs in self.observers.read().iter() {
            obs(&rec);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.store.read().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Commit sequence of the most recent update.
    pub fn seq(&self) -> u64 {
        self.store.read().seq
    }

    /// Fetch a copy of one entry.
    pub fn get(&self, dn: &Dn) -> Option<Entry> {
        self.store.read().entries.get(&dn.norm_key()).cloned()
    }

    pub fn exists(&self, dn: &Dn) -> bool {
        self.store.read().entries.contains_key(&dn.norm_key())
    }

    /// Add an entry. The parent must exist unless the entry is a suffix
    /// (depth-1) entry.
    pub fn add(&self, entry: Entry) -> Result<()> {
        if entry.dn().is_root() {
            return Err(LdapError::unwilling("cannot add the root DSE"));
        }
        self.schema.validate_entry(&entry)?;
        let key = entry.dn().norm_key();
        let parent = entry.dn().parent().expect("non-root");
        let parent_key = parent.norm_key();
        let mut s = self.store.write();
        if s.entries.contains_key(&key) {
            return Err(LdapError::already_exists(entry.dn()));
        }
        if !parent.is_root() && !s.entries.contains_key(&parent_key) {
            return Err(LdapError::new(
                ResultCode::NoSuchObject,
                format!("parent of `{}` does not exist", entry.dn()),
            ));
        }
        s.children
            .entry(parent_key)
            .or_default()
            .insert(key.clone());
        s.children.entry(key.clone()).or_default();
        s.entries.insert(key, entry.clone());
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: entry.dn().clone(),
            op: ChangeOp::Add(entry),
        };
        drop(s);
        self.emit(rec);
        Ok(())
    }

    /// Delete a leaf entry.
    pub fn delete(&self, dn: &Dn) -> Result<()> {
        let key = dn.norm_key();
        let mut s = self.store.write();
        if !s.entries.contains_key(&key) {
            return Err(LdapError::no_such_object(dn));
        }
        if s.children.get(&key).is_some_and(|c| !c.is_empty()) {
            return Err(LdapError::new(
                ResultCode::NotAllowedOnNonLeaf,
                format!("`{dn}` has children"),
            ));
        }
        s.entries.remove(&key);
        s.children.remove(&key);
        let parent_key = dn.parent().map(|p| p.norm_key()).unwrap_or_default();
        if let Some(siblings) = s.children.get_mut(&parent_key) {
            siblings.remove(&key);
        }
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::Delete,
        };
        drop(s);
        self.emit(rec);
        Ok(())
    }

    /// Modify an entry in place. All modifications apply atomically; RDN
    /// attribute values cannot be removed (use [`Dit::modify_rdn`]).
    pub fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        let key = dn.norm_key();
        let mut s = self.store.write();
        let entry = s
            .entries
            .get(&key)
            .ok_or_else(|| LdapError::no_such_object(dn))?;
        let mut updated = entry.clone();
        updated.apply_modifications(mods)?;
        // Naming invariant even under a permissive schema.
        if let Some(rdn) = dn.rdn() {
            for ava in rdn.avas() {
                if !updated.has_value(ava.attr(), ava.value()) {
                    return Err(LdapError::new(
                        ResultCode::NotAllowedOnRdn,
                        format!(
                            "modification would remove RDN value `{}={}`",
                            ava.attr(),
                            ava.value()
                        ),
                    ));
                }
            }
        }
        self.schema.validate_entry(&updated)?;
        s.entries.insert(key, updated);
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::Modify(mods.to_vec()),
        };
        drop(s);
        self.emit(rec);
        Ok(())
    }

    /// Rename an entry (and implicitly its subtree) and optionally move it
    /// under `new_superior` (LDAPv3 ModifyDN).
    ///
    /// `delete_old` removes the old RDN values from the entry's attributes.
    pub fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        if dn.is_root() {
            return Err(LdapError::unwilling("cannot rename the root"));
        }
        let old_key = dn.norm_key();
        let new_dn = match new_superior {
            Some(sup) => sup.child(new_rdn.clone()),
            None => dn.with_rdn(new_rdn.clone())?,
        };
        let new_key = new_dn.norm_key();
        let mut s = self.store.write();
        if !s.entries.contains_key(&old_key) {
            return Err(LdapError::no_such_object(dn));
        }
        if let Some(sup) = new_superior {
            if !sup.is_root() && !s.entries.contains_key(&sup.norm_key()) {
                return Err(LdapError::no_such_object(sup));
            }
            // Refuse to move an entry under its own subtree.
            if sup.is_within(dn) {
                return Err(LdapError::unwilling(format!(
                    "cannot move `{dn}` under its own descendant `{sup}`"
                )));
            }
        }
        if new_key != old_key && s.entries.contains_key(&new_key) {
            return Err(LdapError::already_exists(&new_dn));
        }
        // Update the renamed entry's attributes.
        let mut entry = s.entries.get(&old_key).cloned().expect("checked");
        if delete_old {
            if let Some(old_rdn) = dn.rdn() {
                for ava in old_rdn.avas() {
                    entry.remove_value(ava.attr(), ava.value());
                }
            }
        }
        for ava in new_rdn.avas() {
            if !entry.has_value(ava.attr(), ava.value()) {
                entry.add_value(ava.attr().to_string(), ava.value().to_string());
            }
        }
        entry.set_dn(new_dn.clone());
        self.schema.validate_entry(&entry)?;

        // Re-key the whole subtree.
        let descendants = collect_subtree(&s, &old_key);
        let old_depth = dn.depth();
        for desc_key in &descendants {
            let old_entry = s.entries.remove(desc_key).expect("subtree member");
            let children = s.children.remove(desc_key).unwrap_or_default();
            let mut e = if *desc_key == old_key {
                entry.clone()
            } else {
                let mut e = old_entry;
                let rdns = e.dn().rdns();
                let keep = rdns.len() - old_depth;
                let mut new_rdns = rdns[..keep].to_vec();
                new_rdns.extend(new_dn.rdns().iter().cloned());
                e.set_dn(Dn::from_rdns(new_rdns));
                e
            };
            let rewritten_children: BTreeSet<String> = children
                .iter()
                .map(|c| rewrite_key(c, &old_key, &new_key))
                .collect();
            let new_desc_key = e.dn().norm_key();
            if *desc_key == old_key {
                e = entry.clone();
            }
            s.children.insert(new_desc_key.clone(), rewritten_children);
            s.entries.insert(new_desc_key, e);
        }
        // Fix parent links.
        let old_parent_key = dn.parent().map(|p| p.norm_key()).unwrap_or_default();
        if let Some(siblings) = s.children.get_mut(&old_parent_key) {
            siblings.remove(&old_key);
        }
        let new_parent_key = new_dn.parent().map(|p| p.norm_key()).unwrap_or_default();
        s.children
            .entry(new_parent_key)
            .or_default()
            .insert(new_key);
        s.seq += 1;
        let rec = ChangeRecord {
            seq: s.seq,
            dn: dn.clone(),
            op: ChangeOp::ModifyRdn {
                new_rdn: new_rdn.clone(),
                delete_old,
                new_superior: new_superior.cloned(),
            },
        };
        drop(s);
        self.emit(rec);
        Ok(())
    }

    /// Compare one attribute value (RFC 2251 Compare).
    pub fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        let s = self.store.read();
        let entry = s
            .entries
            .get(&dn.norm_key())
            .ok_or_else(|| LdapError::no_such_object(dn))?;
        Ok(entry.has_value(attr, value))
    }

    /// Search. `attrs` selects returned attributes (empty = all);
    /// `size_limit` of 0 means unlimited, otherwise exceeding it is an error.
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        let s = self.store.read();
        let base_key = base.norm_key();
        if !base.is_root() && !s.entries.contains_key(&base_key) {
            return Err(LdapError::no_such_object(base));
        }
        let mut out = Vec::new();
        let mut push = |e: &Entry| -> Result<()> {
            if filter.matches(e) {
                if size_limit != 0 && out.len() >= size_limit {
                    return Err(LdapError::new(
                        ResultCode::SizeLimitExceeded,
                        format!("more than {size_limit} entries match"),
                    ));
                }
                out.push(e.project(attrs));
            }
            Ok(())
        };
        match scope {
            Scope::Base => {
                if let Some(e) = s.entries.get(&base_key) {
                    push(e)?;
                }
            }
            Scope::One => {
                if let Some(kids) = s.children.get(&base_key) {
                    for k in kids {
                        push(&s.entries[k])?;
                    }
                }
            }
            Scope::Sub => {
                for k in collect_subtree(&s, &base_key) {
                    if k.is_empty() {
                        continue; // virtual root
                    }
                    push(&s.entries[&k])?;
                }
            }
        }
        Ok(out)
    }

    /// Every entry, parents before children (for export / sync dumps).
    pub fn export(&self) -> Vec<Entry> {
        let s = self.store.read();
        collect_subtree(&s, "")
            .into_iter()
            .filter(|k| !k.is_empty())
            .map(|k| s.entries[&k].clone())
            .collect()
    }

    /// Remove everything (used by resynchronization).
    pub fn clear(&self) {
        let mut s = self.store.write();
        s.entries.clear();
        s.children.clear();
        s.children.insert(String::new(), BTreeSet::new());
    }
}

/// BFS over the subtree rooted at `root_key` (inclusive), parents first.
fn collect_subtree(s: &Store, root_key: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root_key.to_string());
    while let Some(k) = queue.pop_front() {
        if let Some(kids) = s.children.get(&k) {
            for c in kids {
                queue.push_back(c.clone());
            }
        }
        out.push(k);
    }
    out
}

fn rewrite_key(key: &str, old_suffix: &str, new_suffix: &str) -> String {
    if key == old_suffix {
        return new_suffix.to_string();
    }
    match key.strip_suffix(old_suffix) {
        Some(prefix) => format!("{prefix}{new_suffix}"),
        None => key.to_string(),
    }
}

/// Convenience: build the standard test tree from the paper's Figure 2.
///
/// ```text
/// o=Lucent
/// ├── o=Marketing     ── cn=John Doe, cn=Pat Smith
/// ├── o=Accounting    ── cn=Tim Dickens
/// ├── o=R&D           ── cn=Jill Lu
/// └── o=DEN Group
/// ```
pub fn figure2_tree(dit: &Dit) -> Result<()> {
    let org = |name: &str| {
        Entry::with_attrs(
            Dn::parse(name).unwrap(),
            [("objectClass", "top"), ("objectClass", "organization")],
        )
    };
    let mut lucent = org("o=Lucent");
    lucent.add_value("o", "Lucent");
    dit.add(lucent)?;
    for (unit, people) in [
        ("Marketing", vec!["John Doe", "Pat Smith"]),
        ("Accounting", vec!["Tim Dickens"]),
        ("R&D", vec!["Jill Lu"]),
        ("DEN Group", vec![]),
    ] {
        let dn = Dn::root()
            .child(Rdn::new("o", "Lucent"))
            .child(Rdn::new("o", unit));
        let mut e = Entry::new(dn.clone());
        e.add_value("objectClass", "top");
        e.add_value("objectClass", "organization");
        e.add_value("o", unit);
        dit.add(e)?;
        for person in people {
            let pdn = dn.child(Rdn::new("cn", person));
            let sn = person.split_whitespace().last().unwrap_or(person);
            let e = Entry::with_attrs(
                pdn,
                [
                    ("objectClass", "top"),
                    ("objectClass", "person"),
                    ("cn", person),
                    ("sn", sn),
                ],
            );
            dit.add(e)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Arc<Dit> {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        dit
    }

    #[test]
    fn figure2_builds() {
        let dit = tree();
        assert_eq!(dit.len(), 9); // 1 + 4 orgs + 4 people
        assert!(dit.exists(&Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap()));
    }

    #[test]
    fn add_requires_parent() {
        let dit = Dit::new();
        let e = Entry::with_attrs(
            Dn::parse("cn=X,o=Nowhere").unwrap(),
            [("objectClass", "person"), ("cn", "X"), ("sn", "X")],
        );
        let err = dit.add(e).unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);
    }

    #[test]
    fn add_duplicate_rejected() {
        let dit = tree();
        let e = Entry::with_attrs(
            Dn::parse("cn=JOHN DOE,o=marketing,o=lucent").unwrap(),
            [("objectClass", "person"), ("cn", "JOHN DOE"), ("sn", "Doe")],
        );
        let err = dit.add(e).unwrap_err();
        assert_eq!(err.code, ResultCode::EntryAlreadyExists);
    }

    #[test]
    fn delete_leaf_only() {
        let dit = tree();
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let err = dit.delete(&marketing).unwrap_err();
        assert_eq!(err.code, ResultCode::NotAllowedOnNonLeaf);
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.delete(&john).unwrap();
        assert!(!dit.exists(&john));
        assert_eq!(
            dit.delete(&john).unwrap_err().code,
            ResultCode::NoSuchObject
        );
    }

    #[test]
    fn modify_updates_entry() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(
            &john,
            &[Modification::set("telephoneNumber", "+1 908 582 9123")],
        )
        .unwrap();
        assert_eq!(
            dit.get(&john).unwrap().first("telephoneNumber"),
            Some("+1 908 582 9123")
        );
    }

    #[test]
    fn modify_cannot_remove_rdn_value() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify(&john, &[Modification::set("cn", "Other Name")])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NotAllowedOnRdn);
    }

    #[test]
    fn modify_rdn_renames_and_updates_attrs() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
            .unwrap();
        assert!(!dit.exists(&john));
        let jack = Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap();
        let e = dit.get(&jack).unwrap();
        assert!(e.has_value("cn", "Jack Doe"));
        assert!(!e.has_value("cn", "John Doe"));
    }

    #[test]
    fn modify_rdn_keep_old_values() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), false, None)
            .unwrap();
        let jack = Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap();
        let e = dit.get(&jack).unwrap();
        assert!(e.has_value("cn", "Jack Doe"));
        assert!(e.has_value("cn", "John Doe"));
    }

    #[test]
    fn modify_rdn_collision_rejected() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify_rdn(&john, &Rdn::new("cn", "Pat Smith"), true, None)
            .unwrap_err();
        assert_eq!(err.code, ResultCode::EntryAlreadyExists);
    }

    #[test]
    fn subtree_move_rekeys_descendants() {
        let dit = tree();
        // Move the whole Marketing org under R&D.
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let rd = Dn::parse("o=R&D,o=Lucent").unwrap();
        dit.modify_rdn(&marketing, &Rdn::new("o", "Marketing"), false, Some(&rd))
            .unwrap();
        assert!(dit.exists(&Dn::parse("o=Marketing,o=R&D,o=Lucent").unwrap()));
        let moved = Dn::parse("cn=John Doe,o=Marketing,o=R&D,o=Lucent").unwrap();
        assert!(dit.exists(&moved), "descendant should move with subtree");
        assert!(!dit.exists(&Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap()));
        // The moved child's stored DN matches its key.
        assert_eq!(dit.get(&moved).unwrap().dn(), &moved);
    }

    #[test]
    fn cannot_move_under_own_descendant() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let marketing = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let err = dit
            .modify_rdn(&lucent, &Rdn::new("o", "Lucent"), false, Some(&marketing))
            .unwrap_err();
        assert_eq!(err.code, ResultCode::UnwillingToPerform);
    }

    #[test]
    fn search_scopes() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let all = Filter::match_all();
        assert_eq!(
            dit.search(&lucent, Scope::Base, &all, &[], 0)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            dit.search(&lucent, Scope::One, &all, &[], 0).unwrap().len(),
            4
        );
        assert_eq!(
            dit.search(&lucent, Scope::Sub, &all, &[], 0).unwrap().len(),
            9
        );
        // root-based search sees everything
        assert_eq!(
            dit.search(&Dn::root(), Scope::Sub, &all, &[], 0)
                .unwrap()
                .len(),
            9
        );
    }

    #[test]
    fn search_filter_and_projection() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let f = Filter::parse("(&(objectClass=person)(cn=J*))").unwrap();
        let hits = dit
            .search(&lucent, Scope::Sub, &f, &["cn".into()], 0)
            .unwrap();
        assert_eq!(hits.len(), 2); // John Doe, Jill Lu
        for e in &hits {
            assert!(e.has_attr("cn"));
            assert!(!e.has_attr("sn"));
        }
    }

    #[test]
    fn search_size_limit() {
        let dit = tree();
        let lucent = Dn::parse("o=Lucent").unwrap();
        let err = dit
            .search(&lucent, Scope::Sub, &Filter::match_all(), &[], 3)
            .unwrap_err();
        assert_eq!(err.code, ResultCode::SizeLimitExceeded);
    }

    #[test]
    fn search_missing_base() {
        let dit = tree();
        let err = dit
            .search(
                &Dn::parse("o=Nothing").unwrap(),
                Scope::Sub,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);
    }

    #[test]
    fn compare_semantics() {
        let dit = tree();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        assert!(dit.compare(&john, "sn", "doe").unwrap());
        assert!(!dit.compare(&john, "sn", "smith").unwrap());
        assert!(dit
            .compare(&Dn::parse("cn=ghost,o=Lucent").unwrap(), "sn", "x")
            .is_err());
    }

    #[test]
    fn export_is_parent_first() {
        let dit = tree();
        let entries = dit.export();
        assert_eq!(entries.len(), 9);
        // Every entry's parent appears earlier (or is the root).
        for (i, e) in entries.iter().enumerate() {
            if let Some(parent) = e.dn().parent() {
                if parent.is_root() {
                    continue;
                }
                let pos = entries
                    .iter()
                    .position(|x| x.dn() == &parent)
                    .expect("parent present");
                assert!(pos < i, "parent of {} must precede it", e.dn());
            }
        }
    }

    #[test]
    fn observers_see_commits_in_order() {
        let dit = Dit::new();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        dit.observe(move |rec| seen2.lock().push(rec.seq));
        figure2_tree(&dit).unwrap();
        let v = seen.lock();
        assert_eq!(v.len(), 9);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn schema_checked_on_add_and_modify() {
        let dit = Dit::with_schema(Arc::new(Schema::x500_core()));
        let mut lucent = Entry::new(Dn::parse("o=Lucent").unwrap());
        lucent.add_value("objectClass", "top");
        lucent.add_value("objectClass", "organization");
        lucent.add_value("o", "Lucent");
        dit.add(lucent).unwrap();
        // Missing sn → rejected
        let bad = Entry::with_attrs(
            Dn::parse("cn=X,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "X"),
            ],
        );
        assert_eq!(
            dit.add(bad).unwrap_err().code,
            ResultCode::ObjectClassViolation
        );
        let good = Entry::with_attrs(
            Dn::parse("cn=X,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "X"),
                ("sn", "X"),
            ],
        );
        dit.add(good).unwrap();
        // Modify deleting a must attribute → rejected, entry unchanged
        let dn = Dn::parse("cn=X,o=Lucent").unwrap();
        let err = dit
            .modify(&dn, &[Modification::delete_attr("sn")])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
        assert!(dit.get(&dn).unwrap().has_attr("sn"));
    }

    #[test]
    fn clear_resets() {
        let dit = tree();
        dit.clear();
        assert!(dit.is_empty());
        // Can rebuild after clear.
        figure2_tree(&dit).unwrap();
        assert_eq!(dit.len(), 9);
    }
}
