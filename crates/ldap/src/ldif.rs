//! LDIF (RFC 2849 subset): the interchange format used for initial loads,
//! synchronization dumps, and fixtures.
//!
//! Supported: content records (`dn:` + attribute lines), change records
//! (`changetype: add|delete|modify|modrdn`), base64 values (`::`), comments,
//! and line continuations (leading space).

use crate::dn::{Dn, Rdn};
use crate::entry::{Entry, ModOp, Modification};
use crate::error::{LdapError, Result};
use std::fmt::Write as _;

/// A parsed LDIF record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Plain content record (no changetype): the full entry.
    Content(Entry),
    Add(Entry),
    Delete(Dn),
    Modify(Dn, Vec<Modification>),
    ModRdn {
        dn: Dn,
        new_rdn: Rdn,
        delete_old: bool,
        new_superior: Option<Dn>,
    },
}

/// Parse an LDIF document into records.
pub fn parse(text: &str) -> Result<Vec<Record>> {
    let mut records = Vec::new();
    for block in logical_blocks(text) {
        if block.is_empty() {
            continue;
        }
        records.push(parse_block(&block)?);
    }
    Ok(records)
}

/// Content-only fast path: parse a document of pure content records in a
/// single pass with no intermediate `(key, value)` string materialization —
/// the snapshot reader's hot loop at million-entry scale. Comments, folded
/// continuations, base64 values, and blank-line separation behave exactly
/// like [`parse`]; a `changetype:` line is an error because a snapshot must
/// not carry change records.
pub fn parse_content(text: &str) -> Result<Vec<Entry>> {
    let mut out = Vec::new();
    let mut cur: Option<Entry> = None;
    let mut lines = text.lines().peekable();
    while let Some(first) = lines.next() {
        if first.starts_with('#') {
            continue;
        }
        if first.trim_end().is_empty() {
            if let Some(e) = cur.take() {
                out.push(e);
            }
            continue;
        }
        // Unfold: following lines that open with a space continue this one;
        // interleaved comments drop out, as in `logical_blocks`.
        let mut folded: Option<String> = None;
        while let Some(&next) = lines.peek() {
            if next.starts_with('#') {
                lines.next();
            } else if let Some(cont) = next.strip_prefix(' ') {
                folded
                    .get_or_insert_with(|| first.to_string())
                    .push_str(cont);
                lines.next();
            } else {
                break;
            }
        }
        let line = folded.as_deref().unwrap_or(first);
        let Some(idx) = line.find(':') else {
            continue;
        };
        let key = line[..idx].trim();
        let rest = &line[idx + 1..];
        let value = || -> String {
            if let Some(b64) = rest.strip_prefix(':') {
                String::from_utf8(b64_decode(b64.trim()).unwrap_or_default()).unwrap_or_default()
            } else {
                rest.trim_start().to_string()
            }
        };
        match &mut cur {
            None => {
                if !key.eq_ignore_ascii_case("dn") {
                    return Err(LdapError::protocol(format!(
                        "LDIF record must start with dn:, got `{key}`"
                    )));
                }
                cur = Some(Entry::new(Dn::parse(&value())?));
            }
            Some(e) => {
                if key.eq_ignore_ascii_case("changetype") {
                    return Err(LdapError::protocol(format!(
                        "content-only LDIF contains a change record: changetype {}",
                        value()
                    )));
                }
                e.add_value(key, value());
            }
        }
    }
    if let Some(e) = cur {
        out.push(e);
    }
    Ok(out)
}

/// Unfold continuations, drop comments, split into blank-line-separated
/// blocks of `(key, value)` lines.
fn logical_blocks(text: &str) -> Vec<Vec<(String, String)>> {
    let mut blocks: Vec<Vec<(String, String)>> = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    let flush_line = |cur: &mut Vec<String>, line: String| {
        if let Some(cont) = line.strip_prefix(' ') {
            if let Some(last) = cur.last_mut() {
                last.push_str(cont);
                return;
            }
        }
        cur.push(line);
    };
    let mut raw_blocks: Vec<Vec<String>> = Vec::new();
    for line in text.lines() {
        if line.trim_end().is_empty() {
            if !cur.is_empty() {
                raw_blocks.push(std::mem::take(&mut cur));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        flush_line(&mut cur, line.to_string());
    }
    if !cur.is_empty() {
        raw_blocks.push(cur);
    }
    for raw in raw_blocks {
        let mut block = Vec::new();
        for line in raw {
            if let Some((k, v)) = split_kv(&line) {
                block.push((k, v));
            }
        }
        blocks.push(block);
    }
    blocks
}

fn split_kv(line: &str) -> Option<(String, String)> {
    let idx = line.find(':')?;
    let key = line[..idx].trim().to_string();
    let rest = &line[idx + 1..];
    let value = if let Some(b64) = rest.strip_prefix(':') {
        String::from_utf8(b64_decode(b64.trim()).unwrap_or_default()).unwrap_or_default()
    } else {
        rest.trim_start().to_string()
    };
    Some((key, value))
}

fn parse_block(block: &[(String, String)]) -> Result<Record> {
    let (first_key, first_val) = &block[0];
    if !first_key.eq_ignore_ascii_case("dn") {
        return Err(LdapError::protocol(format!(
            "LDIF record must start with dn:, got `{first_key}`"
        )));
    }
    let dn = Dn::parse(first_val)?;
    let rest = &block[1..];
    let changetype = rest
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("changetype"))
        .map(|(_, v)| v.to_ascii_lowercase());
    match changetype.as_deref() {
        None => {
            let mut e = Entry::new(dn);
            for (k, v) in rest {
                e.add_value(k.as_str(), v.clone());
            }
            Ok(Record::Content(e))
        }
        Some("add") => {
            let mut e = Entry::new(dn);
            for (k, v) in rest {
                if k.eq_ignore_ascii_case("changetype") {
                    continue;
                }
                e.add_value(k.as_str(), v.clone());
            }
            Ok(Record::Add(e))
        }
        Some("delete") => Ok(Record::Delete(dn)),
        Some("modify") => {
            let mut mods = Vec::new();
            let mut i = 0;
            let items: Vec<&(String, String)> = rest
                .iter()
                .filter(|(k, _)| !k.eq_ignore_ascii_case("changetype"))
                .collect();
            while i < items.len() {
                let (op_key, attr_name) = items[i];
                let op = match op_key.to_ascii_lowercase().as_str() {
                    "add" => ModOp::Add,
                    "delete" => ModOp::Delete,
                    "replace" => ModOp::Replace,
                    other => {
                        return Err(LdapError::protocol(format!("unknown modify op `{other}`")))
                    }
                };
                i += 1;
                let mut values = Vec::new();
                while i < items.len() {
                    let (k, v) = items[i];
                    if k == "-"
                        || k.eq_ignore_ascii_case("add")
                        || k.eq_ignore_ascii_case("delete")
                        || k.eq_ignore_ascii_case("replace")
                    {
                        break;
                    }
                    if !k.eq_ignore_ascii_case(attr_name) {
                        return Err(LdapError::protocol(format!(
                            "modify value line for `{k}` inside `{attr_name}` block"
                        )));
                    }
                    values.push(v.clone());
                    i += 1;
                }
                // skip separator line "-"
                if i < items.len() && items[i].0 == "-" {
                    i += 1;
                }
                mods.push(Modification {
                    op,
                    attr: attr_name.as_str().into(),
                    values,
                });
            }
            Ok(Record::Modify(dn, mods))
        }
        Some("modrdn") | Some("moddn") => {
            let find = |key: &str| {
                rest.iter()
                    .find(|(k, _)| k.eq_ignore_ascii_case(key))
                    .map(|(_, v)| v.clone())
            };
            let new_rdn = Rdn::parse(
                &find("newrdn")
                    .ok_or_else(|| LdapError::protocol("modrdn record missing newrdn"))?,
            )?;
            let delete_old = find("deleteoldrdn")
                .map(|v| v.trim() == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            let new_superior = match find("newsuperior") {
                Some(v) => Some(Dn::parse(&v)?),
                None => None,
            };
            Ok(Record::ModRdn {
                dn,
                new_rdn,
                delete_old,
                new_superior,
            })
        }
        Some(other) => Err(LdapError::protocol(format!("unknown changetype `{other}`"))),
    }
}

/// Serialize one change record (the journal format used by
/// [`crate::backup`]).
pub fn change_to_ldif(record: &Record) -> String {
    let mut out = String::new();
    match record {
        Record::Content(e) => {
            write_entry(&mut out, e);
        }
        Record::Add(e) => {
            writeln!(out, "dn: {}", e.dn()).expect("write");
            writeln!(out, "changetype: add").expect("write");
            for attr in e.attributes() {
                for v in &attr.values {
                    write_attr_line(&mut out, attr.name.as_str(), v);
                }
            }
        }
        Record::Delete(dn) => {
            writeln!(out, "dn: {dn}").expect("write");
            writeln!(out, "changetype: delete").expect("write");
        }
        Record::Modify(dn, mods) => {
            writeln!(out, "dn: {dn}").expect("write");
            writeln!(out, "changetype: modify").expect("write");
            for (i, m) in mods.iter().enumerate() {
                let op = match m.op {
                    ModOp::Add => "add",
                    ModOp::Delete => "delete",
                    ModOp::Replace => "replace",
                };
                writeln!(out, "{op}: {}", m.attr).expect("write");
                for v in &m.values {
                    write_attr_line(&mut out, m.attr.as_str(), v);
                }
                if i + 1 < mods.len() {
                    writeln!(out, "-").expect("write");
                }
            }
        }
        Record::ModRdn {
            dn,
            new_rdn,
            delete_old,
            new_superior,
        } => {
            writeln!(out, "dn: {dn}").expect("write");
            writeln!(out, "changetype: modrdn").expect("write");
            writeln!(out, "newrdn: {new_rdn}").expect("write");
            writeln!(out, "deleteoldrdn: {}", if *delete_old { 1 } else { 0 }).expect("write");
            if let Some(sup) = new_superior {
                writeln!(out, "newsuperior: {sup}").expect("write");
            }
        }
    }
    out.push('\n');
    out
}

fn write_attr_line(out: &mut String, name: &str, v: &str) {
    if needs_base64(v) {
        writeln!(out, "{name}:: {}", b64_encode(v.as_bytes())).expect("write");
    } else {
        writeln!(out, "{name}: {v}").expect("write");
    }
}

/// Serialize entries as LDIF content records.
pub fn to_ldif(entries: &[Entry]) -> String {
    let mut out = String::new();
    for e in entries {
        write_entry(&mut out, e);
        out.push('\n');
    }
    out
}

pub(crate) fn write_entry(out: &mut String, e: &Entry) {
    writeln!(out, "dn: {}", e.dn()).expect("string write");
    for attr in e.attributes() {
        for v in &attr.values {
            if needs_base64(v) {
                writeln!(out, "{}:: {}", attr.name, b64_encode(v.as_bytes()))
                    .expect("string write");
            } else {
                writeln!(out, "{}: {}", attr.name, v).expect("string write");
            }
        }
    }
}

fn needs_base64(v: &str) -> bool {
    v.starts_with(' ')
        || v.starts_with(':')
        || v.starts_with('<')
        || v.ends_with(' ')
        || v.chars().any(|c| c == '\n' || c == '\r' || !c.is_ascii())
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Minimal base64 (standard alphabet, `=` padding).
pub fn b64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Minimal base64 decode; `None` on malformed input.
pub fn b64_decode(s: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    let vals: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !vals.len().is_multiple_of(4) {
        return None;
    }
    for chunk in vals.chunks(4) {
        let mut n: u32 = 0;
        let mut pad = 0;
        for &c in chunk {
            n <<= 6;
            if c == b'=' {
                pad += 1;
            } else {
                let v = B64.iter().position(|&x| x == c)? as u32;
                if pad > 0 {
                    return None; // data after padding
                }
                n |= v;
            }
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_content_records() {
        let text = "\
# a comment
dn: o=Lucent
objectClass: top
objectClass: organization
o: Lucent

dn: cn=John Doe, o=Lucent
objectClass: person
cn: John Doe
sn: Doe
description: a long line
  that continues
";
        let recs = parse(text).unwrap();
        assert_eq!(recs.len(), 2);
        match &recs[1] {
            Record::Content(e) => {
                assert_eq!(e.first("description"), Some("a long line that continues"));
                assert_eq!(e.values("objectClass").len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fast_content_path_matches_general_parser() {
        let text = "\
# snapshot header
# seq: 42
dn: o=Lucent
objectClass: top
objectClass: organization
o: Lucent

dn: cn=John Doe, o=Lucent
objectClass: person
cn: John Doe
sn:: RG9l
description: a long line
# comment inside a fold
  that continues

dn: ou=R&D,o=Lucent
objectClass: organizationalUnit
ou: R&D
";
        let general: Vec<Entry> = parse(text)
            .unwrap()
            .into_iter()
            .map(|r| match r {
                Record::Content(e) => e,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let fast = parse_content(text).unwrap();
        assert_eq!(to_ldif(&fast), to_ldif(&general));
        assert!(parse_content("dn: cn=X,o=L\nchangetype: delete\n").is_err());
        assert!(parse_content("objectClass: top\n").is_err());
    }

    #[test]
    fn change_records() {
        let text = "\
dn: cn=X,o=L
changetype: add
objectClass: person
cn: X
sn: X

dn: cn=X,o=L
changetype: modify
replace: sn
sn: Y
-
add: telephoneNumber
telephoneNumber: 9123
-
delete: description

dn: cn=X,o=L
changetype: modrdn
newrdn: cn=Z
deleteoldrdn: 1

dn: cn=Z,o=L
changetype: delete
";
        let recs = parse(text).unwrap();
        assert_eq!(recs.len(), 4);
        assert!(matches!(recs[0], Record::Add(_)));
        match &recs[1] {
            Record::Modify(dn, mods) => {
                assert_eq!(dn.to_string(), "cn=X,o=L");
                assert_eq!(mods.len(), 3);
                assert_eq!(mods[0].op, ModOp::Replace);
                assert_eq!(mods[1].op, ModOp::Add);
                assert_eq!(mods[2].op, ModOp::Delete);
                assert!(mods[2].values.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &recs[2] {
            Record::ModRdn {
                new_rdn,
                delete_old,
                new_superior,
                ..
            } => {
                assert_eq!(new_rdn.first().value(), "Z");
                assert!(*delete_old);
                assert!(new_superior.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(recs[3], Record::Delete(_)));
    }

    #[test]
    fn round_trip_entries() {
        use crate::dit::{figure2_tree, Dit};
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let text = to_ldif(&dit.export());
        let recs = parse(&text).unwrap();
        assert_eq!(recs.len(), 9);
        let dit2 = Dit::new();
        for r in recs {
            match r {
                Record::Content(e) => dit2.add(e).unwrap(),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(dit2.len(), 9);
    }

    #[test]
    fn base64_values() {
        let data = "héllo\nworld";
        let enc = b64_encode(data.as_bytes());
        assert_eq!(b64_decode(&enc).unwrap(), data.as_bytes());
        let mut e = Entry::new(Dn::parse("cn=x").unwrap());
        e.add_value("cn", "x");
        e.add_value("description", data);
        let text = to_ldif(&[e]);
        assert!(text.contains("description:: "));
        let recs = parse(&text).unwrap();
        match &recs[0] {
            Record::Content(e) => assert_eq!(e.first("description"), Some(data)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn b64_vectors() {
        assert_eq!(b64_encode(b""), "");
        assert_eq!(b64_encode(b"f"), "Zg==");
        assert_eq!(b64_encode(b"fo"), "Zm8=");
        assert_eq!(b64_encode(b"foo"), "Zm9v");
        assert_eq!(b64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(b64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert!(b64_decode("???").is_none());
        assert!(b64_decode("Zg=X").is_none());
    }

    #[test]
    fn malformed_records_rejected() {
        assert!(parse("objectClass: top\n").is_err());
        assert!(parse("dn: cn=x\nchangetype: frobnicate\n").is_err());
        assert!(parse("dn: cn=x\nchangetype: modrdn\n").is_err());
    }
}
