//! TCP LDAP client implementing [`Directory`] over the wire protocol —
//! what the paper calls "any tool that can perform LDAP updates".

use crate::directory::Directory;
use crate::dit::Scope;
use crate::dn::{Dn, Rdn};
use crate::entry::{Entry, Modification};
use crate::error::{LdapError, Result, ResultCode};
use crate::filter::Filter;
use crate::proto::{
    entry_from_wire, entry_to_wire, FrameReader, LdapMessage, LdapResult, ProtocolOp,
};
use parking_lot::Mutex;
use std::io::Write;
use std::net::TcpStream;

/// A connected LDAP client. All operations are synchronous; the connection
/// is serialized with an internal lock so a `TcpDirectory` can be shared
/// across threads.
pub struct TcpDirectory {
    conn: Mutex<Conn>,
}

impl std::fmt::Debug for TcpDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpDirectory").finish_non_exhaustive()
    }
}

struct Conn {
    /// Write half (the read half lives inside `frames`).
    stream: TcpStream,
    /// Buffered incremental frame splitter over a clone of the stream.
    frames: FrameReader<TcpStream>,
    /// Reusable encode buffer.
    out: Vec<u8>,
    next_id: i64,
}

impl Conn {
    /// Send one message, reusing the encode buffer.
    fn send(&mut self, msg: &LdapMessage) -> Result<()> {
        self.out.clear();
        msg.encode_into(&mut self.out);
        self.stream.write_all(&self.out)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Read the next response for request `id`, surfacing an unsolicited
    /// Notice of Disconnection (message ID 0) as a typed error.
    fn recv(&mut self, id: i64) -> Result<ProtocolOp> {
        let frame = self
            .frames
            .next_frame()?
            .ok_or_else(|| LdapError::new(ResultCode::Unavailable, "server closed"))?;
        let resp = LdapMessage::decode(frame)?;
        if resp.id == 0 {
            if let ProtocolOp::ExtendedResponse { result, .. } = resp.op {
                return Err(LdapError::new(
                    result.code,
                    format!("server disconnected: {}", result.message),
                ));
            }
            return Err(LdapError::protocol("unsolicited message id 0"));
        }
        if resp.id != id {
            return Err(LdapError::protocol("response id mismatch"));
        }
        Ok(resp.op)
    }
}

impl TcpDirectory {
    /// Connect anonymously.
    pub fn connect(addr: &str) -> Result<TcpDirectory> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(TcpDirectory {
            conn: Mutex::new(Conn {
                stream,
                frames: FrameReader::new(read_half),
                out: Vec::with_capacity(256),
                next_id: 1,
            }),
        })
    }

    /// Connect and simple-bind as `dn` / `password`.
    pub fn bind(addr: &str, dn: &str, password: &str) -> Result<TcpDirectory> {
        let dir = TcpDirectory::connect(addr)?;
        let resp = dir.call(ProtocolOp::BindRequest {
            version: 3,
            dn: dn.to_string(),
            password: password.to_string(),
        })?;
        match resp {
            ProtocolOp::BindResponse(r) => {
                r.into_result()?;
                Ok(dir)
            }
            _ => Err(LdapError::protocol("unexpected bind response")),
        }
    }

    /// Send a request and read exactly one response message.
    fn call(&self, op: ProtocolOp) -> Result<ProtocolOp> {
        let mut conn = self.conn.lock();
        let id = conn.next_id;
        conn.next_id += 1;
        conn.send(&LdapMessage { id, op })?;
        conn.recv(id)
    }

    /// Send a search request and collect entries plus the SearchResultDone.
    fn call_search(&self, op: ProtocolOp) -> Result<(Vec<Entry>, LdapResult)> {
        let mut conn = self.conn.lock();
        let id = conn.next_id;
        conn.next_id += 1;
        conn.send(&LdapMessage { id, op })?;
        let mut out = Vec::new();
        loop {
            match conn.recv(id)? {
                ProtocolOp::SearchResultEntry { dn, attrs } => {
                    out.push(entry_from_wire(&dn, &attrs)?);
                }
                ProtocolOp::SearchResultDone(r) => return Ok((out, r)),
                _ => return Err(LdapError::protocol("unexpected search response")),
            }
        }
    }

    fn search_request(
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> ProtocolOp {
        ProtocolOp::SearchRequest {
            base: base.to_string(),
            scope,
            size_limit: size_limit as i64,
            filter: filter.clone(),
            attrs: attrs.to_vec(),
        }
    }

    /// Politely close the connection.
    pub fn unbind(&self) {
        let mut conn = self.conn.lock();
        let id = conn.next_id;
        let _ = conn.send(&LdapMessage {
            id,
            op: ProtocolOp::UnbindRequest,
        });
    }
}

impl Directory for TcpDirectory {
    fn add(&self, entry: Entry) -> Result<()> {
        let (dn, attrs) = entry_to_wire(&entry);
        match self.call(ProtocolOp::AddRequest { dn, attrs })? {
            ProtocolOp::AddResponse(r) => r.into_result().map(|_| ()),
            _ => Err(LdapError::protocol("unexpected add response")),
        }
    }

    fn delete(&self, dn: &Dn) -> Result<()> {
        match self.call(ProtocolOp::DelRequest { dn: dn.to_string() })? {
            ProtocolOp::DelResponse(r) => r.into_result().map(|_| ()),
            _ => Err(LdapError::protocol("unexpected delete response")),
        }
    }

    fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        match self.call(ProtocolOp::ModifyRequest {
            dn: dn.to_string(),
            mods: mods.to_vec(),
        })? {
            ProtocolOp::ModifyResponse(r) => r.into_result().map(|_| ()),
            _ => Err(LdapError::protocol("unexpected modify response")),
        }
    }

    fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        match self.call(ProtocolOp::ModifyDnRequest {
            dn: dn.to_string(),
            new_rdn: new_rdn.to_string(),
            delete_old,
            new_superior: new_superior.map(|d| d.to_string()),
        })? {
            ProtocolOp::ModifyDnResponse(r) => r.into_result().map(|_| ()),
            _ => Err(LdapError::protocol("unexpected modifyDN response")),
        }
    }

    fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        let (entries, done) =
            self.call_search(Self::search_request(base, scope, filter, attrs, size_limit))?;
        done.into_result()?;
        Ok(entries)
    }

    fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        let (entries, done) =
            self.call_search(Self::search_request(base, scope, filter, attrs, size_limit))?;
        match done.code {
            ResultCode::SizeLimitExceeded => Ok((entries, true)),
            _ => {
                done.into_result()?;
                Ok((entries, false))
            }
        }
    }

    /// Streamed search: each `SearchResultEntry` frame is decoded and
    /// visited as it arrives — nothing is collected, so a scatter/gather
    /// caller (the shard router) relays arbitrarily large result streams
    /// in O(one entry) memory.
    fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        let mut conn = self.conn.lock();
        let id = conn.next_id;
        conn.next_id += 1;
        conn.send(&LdapMessage {
            id,
            op: Self::search_request(base, scope, filter, attrs, size_limit),
        })?;
        let mut count = 0usize;
        loop {
            match conn.recv(id)? {
                ProtocolOp::SearchResultEntry { dn, attrs } => {
                    let e = entry_from_wire(&dn, &attrs)?;
                    visit(&e);
                    count += 1;
                }
                ProtocolOp::SearchResultDone(r) => {
                    return match r.code {
                        ResultCode::SizeLimitExceeded => Ok((count, true)),
                        _ => {
                            r.into_result()?;
                            Ok((count, false))
                        }
                    }
                }
                _ => return Err(LdapError::protocol("unexpected search response")),
            }
        }
    }

    fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        match self.call(ProtocolOp::CompareRequest {
            dn: dn.to_string(),
            attr: attr.to_string(),
            value: value.to_string(),
        })? {
            ProtocolOp::CompareResponse(r) => match r.code {
                ResultCode::CompareTrue => Ok(true),
                ResultCode::CompareFalse => Ok(false),
                _ => Err(LdapError::new(r.code, r.message)),
            },
            _ => Err(LdapError::protocol("unexpected compare response")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::{figure2_tree, Dit};
    use crate::server::Server;

    fn server() -> (Server, String) {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let server = Server::start(dit, "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        (server, addr)
    }

    #[test]
    fn full_crud_over_the_wire() {
        let (_server, addr) = server();
        let dir = TcpDirectory::connect(&addr).unwrap();

        // Search the Figure 2 tree.
        let lucent = Dn::parse("o=Lucent").unwrap();
        let people = dir
            .search(
                &lucent,
                Scope::Sub,
                &Filter::parse("(objectClass=person)").unwrap(),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(people.len(), 4);

        // Add.
        let dn = Dn::parse("cn=New Person,o=R&D,o=Lucent").unwrap();
        let e = Entry::with_attrs(
            dn.clone(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "New Person"),
                ("sn", "Person"),
            ],
        );
        dir.add(e).unwrap();
        assert!(dir.get(&dn).unwrap().is_some());

        // Modify.
        dir.modify(&dn, &[Modification::set("telephoneNumber", "9123")])
            .unwrap();
        assert_eq!(
            dir.get(&dn).unwrap().unwrap().first("telephoneNumber"),
            Some("9123")
        );

        // Compare.
        assert!(dir.compare(&dn, "sn", "person").unwrap());
        assert!(!dir.compare(&dn, "sn", "other").unwrap());

        // ModifyRDN.
        dir.modify_rdn(&dn, &Rdn::new("cn", "Renamed Person"), true, None)
            .unwrap();
        let renamed = Dn::parse("cn=Renamed Person,o=R&D,o=Lucent").unwrap();
        assert!(dir.get(&renamed).unwrap().is_some());

        // Delete.
        dir.delete(&renamed).unwrap();
        assert!(dir.get(&renamed).unwrap().is_none());

        // Errors propagate with their codes.
        let err = dir.delete(&renamed).unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);

        dir.unbind();
    }

    #[test]
    fn bind_authentication() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("userPassword", "secret")])
            .unwrap();
        let server = Server::start(dit, "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();

        assert!(TcpDirectory::bind(&addr, "cn=John Doe,o=Marketing,o=Lucent", "secret").is_ok());
        let err =
            TcpDirectory::bind(&addr, "cn=John Doe,o=Marketing,o=Lucent", "wrong").unwrap_err();
        assert_eq!(err.code, ResultCode::InvalidCredentials);
        let err = TcpDirectory::bind(&addr, "cn=ghost,o=Lucent", "x").unwrap_err();
        assert_eq!(err.code, ResultCode::InvalidCredentials);
    }

    #[test]
    fn concurrent_clients() {
        let (_server, addr) = server();
        let mut handles = Vec::new();
        for i in 0..8 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let dir = TcpDirectory::connect(&addr).unwrap();
                let dn = Dn::parse(&format!("cn=Worker {i},o=R&D,o=Lucent")).unwrap();
                let e = Entry::with_attrs(
                    dn.clone(),
                    [
                        ("objectClass", "top"),
                        ("objectClass", "person"),
                        ("cn", format!("Worker {i}").as_str()),
                        ("sn", "Worker"),
                    ],
                );
                dir.add(e).unwrap();
                dir.get(&dn).unwrap().unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let dir = TcpDirectory::connect(&addr).unwrap();
        let workers = dir
            .search(
                &Dn::parse("o=R&D,o=Lucent").unwrap(),
                Scope::One,
                &Filter::parse("(sn=Worker)").unwrap(),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(workers.len(), 8);
    }
}
