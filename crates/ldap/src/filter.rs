//! LDAP search filters: the RFC 2254 string representation, a parser, and an
//! evaluator over [`Entry`].
//!
//! Supported: `&`, `|`, `!`, equality, substring (`a*b*c`), `>=`, `<=`,
//! presence (`=*`) and approximate (`~=`, implemented as case-insensitive
//! equality after whitespace squeezing — a reasonable stand-in for the
//! phonetic matching real servers use).

use crate::attr::{norm_value, value_eq_ci};
use crate::entry::Entry;
use crate::error::{LdapError, Result};
use std::fmt;

/// Parsed search filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    And(Vec<Filter>),
    Or(Vec<Filter>),
    Not(Box<Filter>),
    Equality(String, String),
    /// `attr=initial*any1*any2*final` — each component optional.
    Substring {
        attr: String,
        initial: Option<String>,
        any: Vec<String>,
        final_: Option<String>,
    },
    GreaterOrEqual(String, String),
    LessOrEqual(String, String),
    Present(String),
    Approx(String, String),
}

impl Filter {
    /// `(objectClass=*)` — matches every entry.
    pub fn match_all() -> Filter {
        Filter::Present("objectClass".into())
    }

    /// Shorthand for an equality filter.
    pub fn eq(attr: impl Into<String>, value: impl Into<String>) -> Filter {
        Filter::Equality(attr.into(), value.into())
    }

    /// Parse an RFC 2254 filter string like `(&(objectClass=person)(cn=J*))`.
    /// A bare `attr=value` without parentheses is also accepted.
    pub fn parse(s: &str) -> Result<Filter> {
        let mut p = Parser {
            chars: s.trim().char_indices().peekable(),
            src: s.trim(),
        };
        let f = p.parse_filter()?;
        if p.chars.next().is_some() {
            return Err(LdapError::protocol(format!(
                "trailing characters in filter `{s}`"
            )));
        }
        Ok(f)
    }

    /// Evaluate the filter against an entry.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            Filter::Not(f) => !f.matches(entry),
            Filter::Equality(attr, value) => {
                entry.values(attr).iter().any(|v| value_eq_ci(v, value))
            }
            Filter::Substring {
                attr,
                initial,
                any,
                final_,
            } => entry
                .values(attr)
                .iter()
                .any(|v| substring_match(v, initial.as_deref(), any, final_.as_deref())),
            Filter::GreaterOrEqual(attr, value) => entry
                .values(attr)
                .iter()
                .any(|v| ordering_cmp(v, value) != std::cmp::Ordering::Less),
            Filter::LessOrEqual(attr, value) => entry
                .values(attr)
                .iter()
                .any(|v| ordering_cmp(v, value) != std::cmp::Ordering::Greater),
            Filter::Present(attr) => entry.has_attr(attr),
            Filter::Approx(attr, value) => entry.values(attr).iter().any(|v| approx_eq(v, value)),
        }
    }
}

/// Compare values for ordering filters: numerically when both sides parse as
/// integers (telephone extensions, limits), otherwise as normalized strings.
fn ordering_cmp(a: &str, b: &str) -> std::cmp::Ordering {
    match (a.trim().parse::<i64>(), b.trim().parse::<i64>()) {
        (Ok(x), Ok(y)) => x.cmp(&y),
        _ => norm_value(a).cmp(&norm_value(b)),
    }
}

/// Approximate match: case/whitespace-insensitive equality, additionally
/// ignoring `.` and `-` (so `J. Doe ~= j doe`).
fn approx_eq(a: &str, b: &str) -> bool {
    let squash = |s: &str| {
        norm_value(s)
            .chars()
            .filter(|c| !matches!(c, '.' | '-' | ' '))
            .collect::<String>()
    };
    squash(a) == squash(b)
}

fn substring_match(
    value: &str,
    initial: Option<&str>,
    any: &[String],
    final_: Option<&str>,
) -> bool {
    let v = norm_value(value);
    let mut pos = 0usize;
    if let Some(init) = initial {
        let init = norm_value(init);
        if !v.starts_with(&init) {
            return false;
        }
        pos = init.len();
    }
    for part in any {
        let part = norm_value(part);
        match v[pos..].find(&part) {
            Some(i) => pos += i + part.len(),
            None => return false,
        }
    }
    if let Some(fin) = final_ {
        let fin = norm_value(fin);
        if v.len() < pos + fin.len() {
            return false;
        }
        return v.ends_with(&fin);
    }
    true
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn parse_filter(&mut self) -> Result<Filter> {
        match self.chars.peek() {
            Some((_, '(')) => {
                self.chars.next();
                let f = self.parse_component()?;
                match self.chars.next() {
                    Some((_, ')')) => Ok(f),
                    _ => Err(LdapError::protocol(format!(
                        "unbalanced parentheses in `{}`",
                        self.src
                    ))),
                }
            }
            Some(_) => self.parse_item(),
            None => Err(LdapError::protocol("empty filter")),
        }
    }

    fn parse_component(&mut self) -> Result<Filter> {
        match self.chars.peek() {
            Some((_, '&')) => {
                self.chars.next();
                Ok(Filter::And(self.parse_list()?))
            }
            Some((_, '|')) => {
                self.chars.next();
                Ok(Filter::Or(self.parse_list()?))
            }
            Some((_, '!')) => {
                self.chars.next();
                Ok(Filter::Not(Box::new(self.parse_filter()?)))
            }
            _ => self.parse_item(),
        }
    }

    fn parse_list(&mut self) -> Result<Vec<Filter>> {
        let mut out = Vec::new();
        while matches!(self.chars.peek(), Some((_, '('))) {
            out.push(self.parse_filter()?);
        }
        if out.is_empty() {
            return Err(LdapError::protocol(format!(
                "empty filter list in `{}`",
                self.src
            )));
        }
        Ok(out)
    }

    /// attr OP value, where OP ∈ {=, >=, <=, ~=} and value may contain `*`.
    fn parse_item(&mut self) -> Result<Filter> {
        let mut attr = String::new();
        let mut op = '=';
        loop {
            match self.chars.peek().copied() {
                Some((_, '=')) => {
                    self.chars.next();
                    break;
                }
                Some((_, c)) if c == '>' || c == '<' || c == '~' => {
                    self.chars.next();
                    match self.chars.next() {
                        Some((_, '=')) => {
                            op = c;
                            break;
                        }
                        _ => {
                            return Err(LdapError::protocol(format!(
                                "expected `=` after `{c}` in `{}`",
                                self.src
                            )))
                        }
                    }
                }
                Some((_, c)) if c == '(' || c == ')' => {
                    return Err(LdapError::protocol(format!(
                        "unexpected `{c}` in attribute of `{}`",
                        self.src
                    )))
                }
                Some((_, c)) => {
                    attr.push(c);
                    self.chars.next();
                }
                None => {
                    return Err(LdapError::protocol(format!(
                        "truncated filter `{}`",
                        self.src
                    )))
                }
            }
        }
        let attr = attr.trim().to_string();
        if attr.is_empty() {
            return Err(LdapError::protocol("empty attribute in filter"));
        }
        // value: read until ')' (unescaped); '*' splits substring parts.
        let mut parts: Vec<String> = vec![String::new()];
        let mut saw_star = false;
        while let Some((_, c)) = self.chars.peek().copied() {
            match c {
                ')' => break,
                '*' => {
                    saw_star = true;
                    parts.push(String::new());
                    self.chars.next();
                }
                '\\' => {
                    self.chars.next();
                    // RFC 2254 escapes: \XX hex
                    let h1 = self.chars.next();
                    let h2 = self.chars.next();
                    match (h1, h2) {
                        (Some((_, a)), Some((_, b)))
                            if a.is_ascii_hexdigit() && b.is_ascii_hexdigit() =>
                        {
                            let byte = u8::from_str_radix(&format!("{a}{b}"), 16).expect("hex");
                            parts.last_mut().unwrap().push(byte as char);
                        }
                        _ => return Err(LdapError::protocol("bad filter escape")),
                    }
                }
                other => {
                    parts.last_mut().unwrap().push(other);
                    self.chars.next();
                }
            }
        }
        match op {
            '>' => return Ok(Filter::GreaterOrEqual(attr, parts.concat())),
            '<' => return Ok(Filter::LessOrEqual(attr, parts.concat())),
            '~' => return Ok(Filter::Approx(attr, parts.concat())),
            _ => {}
        }
        if !saw_star {
            return Ok(Filter::Equality(attr, parts.concat()));
        }
        // presence: single `*`
        if parts.len() == 2 && parts[0].is_empty() && parts[1].is_empty() {
            return Ok(Filter::Present(attr));
        }
        let n = parts.len();
        let initial = if parts[0].is_empty() {
            None
        } else {
            Some(parts[0].clone())
        };
        let final_ = if parts[n - 1].is_empty() {
            None
        } else {
            Some(parts[n - 1].clone())
        };
        let any = parts[1..n - 1]
            .iter()
            .filter(|p| !p.is_empty())
            .cloned()
            .collect();
        Ok(Filter::Substring {
            attr,
            initial,
            any,
            final_,
        })
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                f.write_str("(&")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                f.write_str(")")
            }
            Filter::Or(fs) => {
                f.write_str("(|")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                f.write_str(")")
            }
            Filter::Not(x) => write!(f, "(!{x})"),
            Filter::Equality(a, v) => write!(f, "({a}={})", escape(v)),
            Filter::Substring {
                attr,
                initial,
                any,
                final_,
            } => {
                write!(f, "({attr}=")?;
                if let Some(i) = initial {
                    write!(f, "{}", escape(i))?;
                }
                f.write_str("*")?;
                for a in any {
                    write!(f, "{}*", escape(a))?;
                }
                if let Some(x) = final_ {
                    write!(f, "{}", escape(x))?;
                }
                f.write_str(")")
            }
            Filter::GreaterOrEqual(a, v) => write!(f, "({a}>={})", escape(v)),
            Filter::LessOrEqual(a, v) => write!(f, "({a}<={})", escape(v)),
            Filter::Present(a) => write!(f, "({a}=*)"),
            Filter::Approx(a, v) => write!(f, "({a}~={})", escape(v)),
        }
    }
}

fn escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '*' => out.push_str("\\2a"),
            '(' => out.push_str("\\28"),
            ')' => out.push_str("\\29"),
            '\\' => out.push_str("\\5c"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    fn entry() -> Entry {
        Entry::with_attrs(
            Dn::parse("cn=John Doe,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "John Doe"),
                ("sn", "Doe"),
                ("telephoneNumber", "+1 908 582 9123"),
                ("definityExtension", "9123"),
            ],
        )
    }

    #[test]
    fn equality() {
        let f = Filter::parse("(cn=john doe)").unwrap();
        assert!(f.matches(&entry()));
        assert!(!Filter::parse("(cn=jane)").unwrap().matches(&entry()));
    }

    #[test]
    fn bare_item_without_parens() {
        let f = Filter::parse("sn=Doe").unwrap();
        assert!(f.matches(&entry()));
    }

    #[test]
    fn presence() {
        assert!(Filter::parse("(telephoneNumber=*)")
            .unwrap()
            .matches(&entry()));
        assert!(!Filter::parse("(mail=*)").unwrap().matches(&entry()));
        assert_eq!(
            Filter::parse("(cn=*)").unwrap(),
            Filter::Present("cn".into())
        );
    }

    #[test]
    fn substring_forms() {
        assert!(Filter::parse("(cn=John*)").unwrap().matches(&entry()));
        assert!(Filter::parse("(cn=*Doe)").unwrap().matches(&entry()));
        assert!(Filter::parse("(cn=*ohn*)").unwrap().matches(&entry()));
        assert!(Filter::parse("(cn=J*n*oe)").unwrap().matches(&entry()));
        assert!(!Filter::parse("(cn=J*x*)").unwrap().matches(&entry()));
        // ordering constraint: parts must appear in order
        assert!(!Filter::parse("(cn=Doe*John)").unwrap().matches(&entry()));
    }

    #[test]
    fn and_or_not() {
        let f = Filter::parse("(&(objectClass=person)(cn=J*))").unwrap();
        assert!(f.matches(&entry()));
        let f = Filter::parse("(|(cn=nobody)(sn=doe))").unwrap();
        assert!(f.matches(&entry()));
        let f = Filter::parse("(!(cn=nobody))").unwrap();
        assert!(f.matches(&entry()));
        let f = Filter::parse("(&(objectClass=person)(!(sn=Doe)))").unwrap();
        assert!(!f.matches(&entry()));
    }

    #[test]
    fn numeric_ordering() {
        assert!(Filter::parse("(definityExtension>=9000)")
            .unwrap()
            .matches(&entry()));
        assert!(Filter::parse("(definityExtension<=9123)")
            .unwrap()
            .matches(&entry()));
        assert!(!Filter::parse("(definityExtension>=9124)")
            .unwrap()
            .matches(&entry()));
    }

    #[test]
    fn string_ordering() {
        assert!(Filter::parse("(sn>=D)").unwrap().matches(&entry()));
        assert!(!Filter::parse("(sn<=A)").unwrap().matches(&entry()));
    }

    #[test]
    fn approx() {
        assert!(Filter::parse("(cn~=JOHN-DOE)").unwrap().matches(&entry()));
        assert!(Filter::parse("(cn~=j.o.h.n doe)")
            .unwrap()
            .matches(&entry()));
        assert!(!Filter::parse("(cn~=jon doe)").unwrap().matches(&entry()));
    }

    #[test]
    fn escapes_in_value() {
        let f = Filter::parse(r"(cn=a\2ab)").unwrap();
        assert_eq!(f, Filter::Equality("cn".into(), "a*b".into()));
        let round = Filter::parse(&f.to_string()).unwrap();
        assert_eq!(round, f);
    }

    #[test]
    fn malformed_filters_rejected() {
        for bad in ["", "(", "(cn=x", "(&)", "(cn>x)", "(cn=x))", "()", "(!)"] {
            assert!(Filter::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "(&(objectClass=person)(|(cn=J*n)(sn>=A))(!(mail=*)))",
            "(cn=J*n*oe)",
            "(cn~=jd)",
            "(telephoneNumber<=99)",
        ] {
            let f = Filter::parse(s).unwrap();
            let g = Filter::parse(&f.to_string()).unwrap();
            assert_eq!(f, g, "round trip of {s}");
        }
    }

    #[test]
    fn match_all_matches_everything() {
        assert!(Filter::match_all().matches(&entry()));
    }
}
