//! Directory entries and the modification operations that act on them.

use crate::attr::{norm_value, value_eq_ci, AttrName, Attribute, Values};
use crate::dn::Dn;
use crate::error::{LdapError, Result, ResultCode};
use std::collections::BTreeMap;
use std::fmt;

/// Attribute storage. Entries are built as a `BTreeMap` (`Tree`) — cheap
/// inserts while a record is assembled from LDIF or wire pairs — and the
/// compact store flattens them to a name-sorted `Vec` (`Flat`) at rest:
/// a handful of attributes cost one allocation instead of a B-tree node
/// apiece, and lookups are a binary search over at most a dozen names.
/// Both variants iterate in normalized-name order, so every observable
/// behavior (search streams, LDIF export, diffing) is identical.
#[derive(Debug, Clone)]
enum Attrs {
    Tree(BTreeMap<AttrName, Attribute>),
    Flat(Vec<Attribute>),
}

impl Attrs {
    /// Lookup by lowercased name.
    fn get(&self, norm: &str) -> Option<&Attribute> {
        match self {
            Attrs::Tree(m) => m.get(norm),
            Attrs::Flat(v) => v
                .binary_search_by(|a| a.name.norm().cmp(norm))
                .ok()
                .map(|i| &v[i]),
        }
    }

    fn get_mut(&mut self, norm: &str) -> Option<&mut Attribute> {
        match self {
            Attrs::Tree(m) => m.get_mut(norm),
            Attrs::Flat(v) => match v.binary_search_by(|a| a.name.norm().cmp(norm)) {
                Ok(i) => Some(&mut v[i]),
                Err(_) => None,
            },
        }
    }

    /// Insert or replace by the attribute's own name.
    fn insert(&mut self, attr: Attribute) {
        match self {
            Attrs::Tree(m) => {
                m.insert(attr.name.clone(), attr);
            }
            Attrs::Flat(v) => match v.binary_search_by(|a| a.name.norm().cmp(attr.name.norm())) {
                Ok(i) => v[i] = attr,
                Err(i) => v.insert(i, attr),
            },
        }
    }

    fn remove(&mut self, norm: &str) -> Option<Attribute> {
        match self {
            Attrs::Tree(m) => m.remove(norm),
            Attrs::Flat(v) => v
                .binary_search_by(|a| a.name.norm().cmp(norm))
                .ok()
                .map(|i| v.remove(i)),
        }
    }

    fn len(&self) -> usize {
        match self {
            Attrs::Tree(m) => m.len(),
            Attrs::Flat(v) => v.len(),
        }
    }

    fn iter(&self) -> AttrsIter<'_> {
        match self {
            Attrs::Tree(m) => AttrsIter::Tree(m.values()),
            Attrs::Flat(v) => AttrsIter::Flat(v.iter()),
        }
    }

    /// Empty storage in the same representation as `self`.
    fn same_shape_empty(&self) -> Attrs {
        match self {
            Attrs::Tree(_) => Attrs::Tree(BTreeMap::new()),
            Attrs::Flat(_) => Attrs::Flat(Vec::new()),
        }
    }
}

/// Normalized-name-order iterator over either representation.
enum AttrsIter<'a> {
    Tree(std::collections::btree_map::Values<'a, AttrName, Attribute>),
    Flat(std::slice::Iter<'a, Attribute>),
}

impl<'a> Iterator for AttrsIter<'a> {
    type Item = &'a Attribute;
    fn next(&mut self) -> Option<&'a Attribute> {
        match self {
            AttrsIter::Tree(it) => it.next(),
            AttrsIter::Flat(it) => it.next(),
        }
    }
}

/// A directory entry: a DN plus a set of multi-valued attributes.
///
/// The `objectClass` attribute is stored like any other but has dedicated
/// accessors because schema checking and MetaComm's auxiliary-class design
/// both hinge on it.
#[derive(Debug, Clone)]
pub struct Entry {
    dn: Dn,
    attrs: Attrs,
}

/// Equality is by DN and attribute sequence, independent of whether either
/// side uses the tree or flattened representation.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dn == other.dn
            && self.attrs.len() == other.attrs.len()
            && self
                .attributes()
                .zip(other.attributes())
                .all(|(a, b)| a == b)
    }
}
impl Eq for Entry {}

impl Entry {
    pub fn new(dn: Dn) -> Entry {
        Entry {
            dn,
            attrs: Attrs::Tree(BTreeMap::new()),
        }
    }

    /// Convenience constructor from `(name, value)` pairs; repeated names
    /// accumulate values.
    pub fn with_attrs<N, V>(dn: Dn, pairs: impl IntoIterator<Item = (N, V)>) -> Entry
    where
        N: Into<AttrName>,
        V: Into<String>,
    {
        let mut e = Entry::new(dn);
        for (n, v) in pairs {
            e.add_value(n, v);
        }
        e
    }

    pub fn dn(&self) -> &Dn {
        &self.dn
    }

    pub fn set_dn(&mut self, dn: Dn) {
        self.dn = dn;
    }

    /// Flatten to the compact at-rest representation and intern attribute
    /// names. The compact store calls this on every entry it takes
    /// ownership of; all later mutations stay in the flat representation.
    pub fn compact_for_store(&mut self) {
        if let Attrs::Tree(m) = &mut self.attrs {
            let m = std::mem::take(m);
            self.attrs = Attrs::Flat(m.into_values().collect());
        }
        if let Attrs::Flat(v) = &mut self.attrs {
            v.shrink_to_fit();
            for a in v {
                a.name.intern();
                if let Values::Many(vs) = &mut a.values {
                    vs.shrink_to_fit();
                }
            }
        }
    }

    /// All attributes in normalized-name order.
    pub fn attributes(&self) -> impl Iterator<Item = &Attribute> {
        self.attrs.iter()
    }

    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    pub fn get(&self, name: &str) -> Option<&Attribute> {
        self.attrs.get(name.to_ascii_lowercase().as_str())
    }

    /// First value of the attribute, if any.
    pub fn first(&self, name: &str) -> Option<&str> {
        self.get(name)
            .and_then(|a| a.values.first())
            .map(String::as_str)
    }

    /// All values of the attribute (empty slice when absent).
    pub fn values(&self, name: &str) -> &[String] {
        self.get(name).map(|a| a.values.as_slice()).unwrap_or(&[])
    }

    pub fn has_attr(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// `true` when `name` has a value equal to `value` (case-insensitive).
    pub fn has_value(&self, name: &str, value: &str) -> bool {
        self.get(name).is_some_and(|a| a.contains_ci(value))
    }

    /// Add one value, creating the attribute when missing. Returns `false`
    /// when the value was already present.
    pub fn add_value(&mut self, name: impl Into<AttrName>, value: impl Into<String>) -> bool {
        let name = name.into();
        match self.attrs.get_mut(name.norm()) {
            Some(attr) => attr.add_value(value),
            None => {
                self.attrs.insert(Attribute::single(name, value));
                true
            }
        }
    }

    /// Replace all values of the attribute (removes it when `values` is empty).
    pub fn put(&mut self, name: impl Into<AttrName>, values: Vec<String>) {
        let name = name.into();
        if values.is_empty() {
            self.attrs.remove(name.norm());
        } else {
            self.attrs.insert(Attribute::new(name, values));
        }
    }

    /// Remove an entire attribute; returns it when present.
    pub fn remove_attr(&mut self, name: &str) -> Option<Attribute> {
        self.attrs.remove(name.to_ascii_lowercase().as_str())
    }

    /// Remove one value; prunes the attribute when it becomes empty.
    /// Returns `true` when a value was removed.
    pub fn remove_value(&mut self, name: &str, value: &str) -> bool {
        let key = name.to_ascii_lowercase();
        if let Some(attr) = self.attrs.get_mut(key.as_str()) {
            let removed = attr.remove_value(value);
            if attr.is_empty() {
                self.attrs.remove(key.as_str());
            }
            removed
        } else {
            false
        }
    }

    /// The entry's object classes (values of `objectClass`).
    pub fn object_classes(&self) -> &[String] {
        self.values("objectClass")
    }

    pub fn has_object_class(&self, oc: &str) -> bool {
        self.object_classes().iter().any(|c| value_eq_ci(c, oc))
    }

    /// Keep only the named attributes (used by search attribute selection);
    /// an empty list keeps everything, per RFC 2251.
    pub fn project(&self, names: &[String]) -> Entry {
        if names.is_empty() {
            return self.clone();
        }
        let mut out = Entry {
            dn: self.dn.clone(),
            attrs: self.attrs.same_shape_empty(),
        };
        for n in names {
            if let Some(attr) = self.get(n) {
                out.attrs.insert(attr.clone());
            }
        }
        out
    }

    /// Apply a list of modifications atomically: either all succeed or the
    /// entry is left untouched. (This is the single-entry atomicity LDAP
    /// guarantees — and the *only* atomicity it guarantees.)
    pub fn apply_modifications(&mut self, mods: &[Modification]) -> Result<()> {
        let mut scratch = self.clone();
        for m in mods {
            scratch.apply_one(m)?;
        }
        *self = scratch;
        Ok(())
    }

    fn apply_one(&mut self, m: &Modification) -> Result<()> {
        match &m.op {
            ModOp::Add => {
                if m.values.is_empty() {
                    return Err(LdapError::protocol("add modification with no values"));
                }
                for v in &m.values {
                    if self.has_value(m.attr.as_str(), v) {
                        return Err(LdapError::new(
                            ResultCode::AttributeOrValueExists,
                            format!("value `{v}` already exists for `{}`", m.attr),
                        ));
                    }
                }
                for v in &m.values {
                    self.add_value(m.attr.clone(), v.clone());
                }
                Ok(())
            }
            ModOp::Delete => {
                if m.values.is_empty() {
                    // delete whole attribute
                    if self.remove_attr(m.attr.as_str()).is_none() {
                        return Err(LdapError::new(
                            ResultCode::NoSuchAttribute,
                            format!("no attribute `{}` to delete", m.attr),
                        ));
                    }
                    Ok(())
                } else {
                    for v in &m.values {
                        if !self.remove_value(m.attr.as_str(), v) {
                            return Err(LdapError::new(
                                ResultCode::NoSuchAttribute,
                                format!("no value `{v}` of `{}` to delete", m.attr),
                            ));
                        }
                    }
                    Ok(())
                }
            }
            ModOp::Replace => {
                self.put(m.attr.clone(), m.values.clone());
                Ok(())
            }
        }
    }

    /// Diff two attribute images into the minimal replace-based modification
    /// list that turns `self` into `target` (DN excluded). Used by filters
    /// when a device reports a whole-record change.
    pub fn diff_to(&self, target: &Entry) -> Vec<Modification> {
        let mut mods = Vec::new();
        for attr in target.attributes() {
            let old = self.values(attr.name.norm());
            if !same_value_set(old, &attr.values) {
                mods.push(Modification::replace(
                    attr.name.as_str(),
                    attr.values.to_vec(),
                ));
            }
        }
        for attr in self.attributes() {
            if !target.has_attr(attr.name.norm()) {
                mods.push(Modification::delete_attr(attr.name.as_str()));
            }
        }
        mods
    }
}

/// Set equality under `caseIgnoreMatch`. This runs once per attribute per
/// whole-record device report, so the common no-change case must not
/// allocate: byte-equal value lists short-circuit, single values compare
/// through [`value_eq_ci`], and only genuinely differing multi-value bags
/// pay for normalize-and-sort.
fn same_value_set(a: &[String], b: &[String]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if a.iter().zip(b).all(|(x, y)| x == y) {
        return true;
    }
    if a.len() == 1 {
        return value_eq_ci(&a[0], &b[0]);
    }
    let mut na: Vec<String> = a.iter().map(|v| norm_value(v)).collect();
    let mut nb: Vec<String> = b.iter().map(|v| norm_value(v)).collect();
    na.sort();
    nb.sort();
    na == nb
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dn: {}", self.dn)?;
        for attr in self.attributes() {
            for v in &attr.values {
                writeln!(f, "{}: {}", attr.name, v)?;
            }
        }
        Ok(())
    }
}

/// The three RFC 2251 modification operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModOp {
    Add,
    Delete,
    Replace,
}

/// One element of a Modify request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Modification {
    pub op: ModOp,
    pub attr: AttrName,
    pub values: Vec<String>,
}

impl Modification {
    pub fn add(attr: impl Into<AttrName>, values: Vec<String>) -> Modification {
        Modification {
            op: ModOp::Add,
            attr: attr.into(),
            values,
        }
    }

    pub fn delete(attr: impl Into<AttrName>, values: Vec<String>) -> Modification {
        Modification {
            op: ModOp::Delete,
            attr: attr.into(),
            values,
        }
    }

    /// Delete the entire attribute.
    pub fn delete_attr(attr: impl Into<AttrName>) -> Modification {
        Modification {
            op: ModOp::Delete,
            attr: attr.into(),
            values: Vec::new(),
        }
    }

    pub fn replace(attr: impl Into<AttrName>, values: Vec<String>) -> Modification {
        Modification {
            op: ModOp::Replace,
            attr: attr.into(),
            values,
        }
    }

    /// Replace with a single value.
    pub fn set(attr: impl Into<AttrName>, value: impl Into<String>) -> Modification {
        Modification::replace(attr, vec![value.into()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> Entry {
        Entry::with_attrs(
            Dn::parse("cn=John Doe,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "John Doe"),
                ("sn", "Doe"),
                ("telephoneNumber", "+1 908 582 9000"),
            ],
        )
    }

    #[test]
    fn accessors() {
        let e = person();
        assert_eq!(e.first("CN"), Some("John Doe"));
        assert_eq!(e.values("objectclass").len(), 2);
        assert!(e.has_object_class("PERSON"));
        assert!(e.has_value("sn", "doe"));
        assert!(!e.has_attr("mail"));
    }

    #[test]
    fn flat_and_tree_behave_identically() {
        let tree = person();
        let mut flat = person();
        flat.compact_for_store();
        assert_eq!(tree, flat);
        assert_eq!(flat.first("CN"), Some("John Doe"));
        assert_eq!(flat.values("objectclass").len(), 2);
        let names_t: Vec<&str> = tree.attributes().map(|a| a.name.norm()).collect();
        let names_f: Vec<&str> = flat.attributes().map(|a| a.name.norm()).collect();
        assert_eq!(names_t, names_f);

        // Mutations on the flat form keep sorted order and equality.
        let mut t2 = tree.clone();
        let mut f2 = flat.clone();
        for e in [&mut t2, &mut f2] {
            e.add_value("mail", "jd@lucent.com");
            e.put("ou", vec!["x".into(), "y".into()]);
            e.remove_attr("sn");
            e.remove_value("objectClass", "top");
        }
        assert_eq!(t2, f2);
        let names: Vec<&str> = f2.attributes().map(|a| a.name.norm()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(t2.project(&["ou".into()]), f2.project(&["ou".into()]));
    }

    #[test]
    fn modify_add_and_duplicate() {
        let mut e = person();
        e.apply_modifications(&[Modification::add("mail", vec!["jd@lucent.com".into()])])
            .unwrap();
        assert_eq!(e.first("mail"), Some("jd@lucent.com"));
        let err = e
            .apply_modifications(&[Modification::add("mail", vec!["JD@LUCENT.COM".into()])])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::AttributeOrValueExists);
    }

    #[test]
    fn modify_delete_value_and_attr() {
        let mut e = person();
        e.apply_modifications(&[Modification::delete(
            "telephoneNumber",
            vec!["+1 908 582 9000".into()],
        )])
        .unwrap();
        assert!(!e.has_attr("telephoneNumber"));
        let err = e
            .apply_modifications(&[Modification::delete_attr("telephoneNumber")])
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchAttribute);
    }

    #[test]
    fn modify_replace_and_remove_by_empty_replace() {
        let mut e = person();
        e.apply_modifications(&[Modification::set("sn", "Smith")])
            .unwrap();
        assert_eq!(e.first("sn"), Some("Smith"));
        e.apply_modifications(&[Modification::replace("sn", vec![])])
            .unwrap();
        assert!(!e.has_attr("sn"));
    }

    #[test]
    fn modifications_are_atomic() {
        let mut e = person();
        let before = e.clone();
        // Second modification fails; the first must not stick.
        let err = e.apply_modifications(&[
            Modification::set("sn", "Smith"),
            Modification::delete_attr("nonexistent"),
        ]);
        assert!(err.is_err());
        assert_eq!(e, before);
    }

    #[test]
    fn projection() {
        let e = person();
        let p = e.project(&["cn".into(), "SN".into()]);
        assert_eq!(p.attr_count(), 2);
        assert!(p.has_attr("cn"));
        assert!(!p.has_attr("telephoneNumber"));
        // empty selection keeps everything
        assert_eq!(e.project(&[]).attr_count(), e.attr_count());
    }

    #[test]
    fn diff_produces_minimal_mods() {
        let a = person();
        let mut b = a.clone();
        b.put("telephoneNumber", vec!["+1 908 582 9001".into()]);
        b.add_value("mail", "jd@lucent.com");
        b.remove_attr("sn");
        let mods = a.clone_and_apply_diff(&b);
        assert_eq!(mods, b);
    }

    impl Entry {
        /// Test helper: apply `self.diff_to(target)` to a clone of `self`.
        fn clone_and_apply_diff(&self, target: &Entry) -> Entry {
            let mods = self.diff_to(target);
            let mut out = self.clone();
            out.apply_modifications(&mods).unwrap();
            out
        }
    }

    #[test]
    fn diff_is_empty_for_equal_entries() {
        let a = person();
        assert!(a.diff_to(&a).is_empty());
    }

    #[test]
    fn diff_ignores_value_order() {
        let mut a = person();
        a.put("ou", vec!["x".into(), "y".into()]);
        let mut b = person();
        b.put("ou", vec!["y".into(), "x".into()]);
        assert!(a.diff_to(&b).is_empty());
    }
}
