//! Directory schema: attribute types, object classes, and entry validation.
//!
//! The model follows X.501 as profiled by the paper:
//! - object classes are *structural*, *auxiliary*, or *abstract*;
//! - auxiliary classes **cannot declare mandatory attributes** — the
//!   practical limitation §5.2 of the paper reports, which is why the
//!   presence of `definityUser` on an entry only means the person *may* use
//!   a PBX (one must check whether the extension attribute is set);
//! - attribute types carry a syntax, a matching rule, and a
//!   single-valued flag. Typing is deliberately shallow ("very weak typing",
//!   §5.3): syntaxes validate the value's *shape* only.

use crate::entry::Entry;
use crate::error::{LdapError, Result, ResultCode};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Value syntaxes. Deliberately few — LDAP typing is weak and MetaComm's
/// integrated schema only uses these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Syntax {
    /// Any UTF-8 string.
    DirectoryString,
    /// Digits, `+`, spaces, `-`, `(`, `)`.
    TelephoneNumber,
    /// Optional sign + digits.
    Integer,
    /// Must parse as a DN.
    DnSyntax,
    /// `TRUE` or `FALSE`.
    Boolean,
}

impl Syntax {
    /// Shape-check a value against the syntax.
    pub fn validate(self, value: &str) -> bool {
        match self {
            Syntax::DirectoryString => true,
            Syntax::TelephoneNumber => {
                !value.trim().is_empty()
                    && value.chars().all(|c| {
                        c.is_ascii_digit() || matches!(c, '+' | ' ' | '-' | '(' | ')' | '.')
                    })
            }
            Syntax::Integer => {
                let v = value.trim();
                let v = v.strip_prefix('-').unwrap_or(v);
                !v.is_empty() && v.chars().all(|c| c.is_ascii_digit())
            }
            Syntax::DnSyntax => crate::dn::Dn::parse(value).is_ok(),
            Syntax::Boolean => matches!(value, "TRUE" | "FALSE"),
        }
    }
}

/// An attribute-type definition.
#[derive(Debug, Clone)]
pub struct AttributeType {
    pub name: String,
    pub syntax: Syntax,
    pub single_valued: bool,
    /// `true` when the attribute may appear in RDNs (naming attribute).
    pub naming: bool,
}

impl AttributeType {
    pub fn string(name: &str) -> AttributeType {
        AttributeType {
            name: name.into(),
            syntax: Syntax::DirectoryString,
            single_valued: false,
            naming: true,
        }
    }

    pub fn single(mut self) -> AttributeType {
        self.single_valued = true;
        self
    }

    pub fn syntax(mut self, s: Syntax) -> AttributeType {
        self.syntax = s;
        self
    }
}

/// Object-class kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    Structural,
    Auxiliary,
    Abstract,
}

/// An object-class definition.
#[derive(Debug, Clone)]
pub struct ObjectClass {
    pub name: String,
    pub kind: ClassKind,
    /// Superclass name (`None` only for `top`).
    pub superior: Option<String>,
    pub must: Vec<String>,
    pub may: Vec<String>,
}

/// The schema: a registry of attribute types and object classes plus the
/// entry validator.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    attrs: BTreeMap<String, AttributeType>,
    classes: BTreeMap<String, ObjectClass>,
    /// When `true`, attributes not brought in by any present class are
    /// rejected (`ObjectClassViolation`). Operational attributes registered
    /// via [`Schema::add_operational`] are always allowed.
    strict: bool,
    operational: BTreeSet<String>,
}

impl Schema {
    /// An empty schema that accepts anything (schema checking off).
    pub fn permissive() -> Schema {
        Schema::default()
    }

    /// The standard X.500 core used by the paper's integrated schema:
    /// `top`, `person`, `organizationalPerson`, `organization`,
    /// `organizationalUnit`, plus the operational attributes MetaComm needs.
    pub fn x500_core() -> Schema {
        let mut s = Schema {
            strict: true,
            ..Schema::default()
        };
        for at in [
            AttributeType::string("objectClass"),
            AttributeType::string("cn"),
            AttributeType::string("sn"),
            AttributeType::string("o"),
            AttributeType::string("ou"),
            AttributeType::string("c"),
            AttributeType::string("description"),
            AttributeType::string("seeAlso").syntax(Syntax::DnSyntax),
            AttributeType::string("userPassword"),
            AttributeType::string("telephoneNumber").syntax(Syntax::TelephoneNumber),
            AttributeType::string("facsimileTelephoneNumber").syntax(Syntax::TelephoneNumber),
            AttributeType::string("title"),
            AttributeType::string("postalAddress"),
            AttributeType::string("postalCode"),
            AttributeType::string("l"),
            AttributeType::string("st"),
            AttributeType::string("street"),
            AttributeType::string("mail"),
            AttributeType::string("uid"),
            AttributeType::string("roomNumber"),
            AttributeType::string("employeeNumber").single(),
        ] {
            s.add_attribute(at).expect("builtin attr");
        }
        for oc in [
            ObjectClass {
                name: "top".into(),
                kind: ClassKind::Abstract,
                superior: None,
                must: vec!["objectClass".into()],
                may: vec![],
            },
            ObjectClass {
                name: "person".into(),
                kind: ClassKind::Structural,
                superior: Some("top".into()),
                must: vec!["cn".into(), "sn".into()],
                may: vec![
                    "telephoneNumber".into(),
                    "userPassword".into(),
                    "description".into(),
                    "seeAlso".into(),
                ],
            },
            ObjectClass {
                name: "organizationalPerson".into(),
                kind: ClassKind::Structural,
                superior: Some("person".into()),
                must: vec![],
                may: vec![
                    "ou".into(),
                    "title".into(),
                    "postalAddress".into(),
                    "postalCode".into(),
                    "l".into(),
                    "st".into(),
                    "street".into(),
                    "facsimileTelephoneNumber".into(),
                    "roomNumber".into(),
                    "mail".into(),
                    "uid".into(),
                    "employeeNumber".into(),
                ],
            },
            ObjectClass {
                name: "organization".into(),
                kind: ClassKind::Structural,
                superior: Some("top".into()),
                must: vec!["o".into()],
                may: vec!["description".into(), "telephoneNumber".into()],
            },
            ObjectClass {
                name: "organizationalUnit".into(),
                kind: ClassKind::Structural,
                superior: Some("top".into()),
                must: vec!["ou".into()],
                may: vec!["description".into(), "telephoneNumber".into()],
            },
            ObjectClass {
                name: "country".into(),
                kind: ClassKind::Structural,
                superior: Some("top".into()),
                must: vec!["c".into()],
                may: vec!["description".into()],
            },
        ] {
            s.add_class(oc).expect("builtin class");
        }
        s
    }

    /// Register an attribute type. Re-registration with the same name fails.
    pub fn add_attribute(&mut self, at: AttributeType) -> Result<()> {
        let key = at.name.to_ascii_lowercase();
        if self.attrs.contains_key(&key) {
            return Err(LdapError::new(
                ResultCode::Other,
                format!("attribute type `{}` already defined", at.name),
            ));
        }
        self.attrs.insert(key, at);
        Ok(())
    }

    /// Register an *operational* attribute: always allowed on any entry,
    /// never required. MetaComm uses this for `lastUpdater`.
    pub fn add_operational(&mut self, at: AttributeType) -> Result<()> {
        self.operational.insert(at.name.to_ascii_lowercase());
        self.add_attribute(at)
    }

    /// Register an object class. Enforces the paper's auxiliary-class
    /// limitation: auxiliary classes cannot declare `must` attributes.
    pub fn add_class(&mut self, oc: ObjectClass) -> Result<()> {
        if oc.kind == ClassKind::Auxiliary && !oc.must.is_empty() {
            return Err(LdapError::new(
                ResultCode::ObjectClassViolation,
                format!(
                    "auxiliary class `{}` cannot have mandatory attributes",
                    oc.name
                ),
            ));
        }
        if let Some(sup) = &oc.superior {
            if !self.classes.contains_key(&sup.to_ascii_lowercase()) {
                return Err(LdapError::new(
                    ResultCode::Other,
                    format!("unknown superior class `{sup}` for `{}`", oc.name),
                ));
            }
        }
        for a in oc.must.iter().chain(&oc.may) {
            if !self.attrs.contains_key(&a.to_ascii_lowercase()) {
                return Err(LdapError::new(
                    ResultCode::UndefinedAttributeType,
                    format!("class `{}` references unknown attribute `{a}`", oc.name),
                ));
            }
        }
        let key = oc.name.to_ascii_lowercase();
        if self.classes.contains_key(&key) {
            return Err(LdapError::new(
                ResultCode::Other,
                format!("object class `{}` already defined", oc.name),
            ));
        }
        self.classes.insert(key, oc);
        Ok(())
    }

    pub fn attribute(&self, name: &str) -> Option<&AttributeType> {
        self.attrs.get(&name.to_ascii_lowercase())
    }

    pub fn class(&self, name: &str) -> Option<&ObjectClass> {
        self.classes.get(&name.to_ascii_lowercase())
    }

    /// All transitive superclasses of `name`, including itself.
    fn class_chain(&self, name: &str) -> Result<Vec<&ObjectClass>> {
        let mut out = Vec::new();
        let mut cur = Some(name.to_string());
        while let Some(n) = cur {
            let oc = self.class(&n).ok_or_else(|| {
                LdapError::new(
                    ResultCode::ObjectClassViolation,
                    format!("unknown object class `{n}`"),
                )
            })?;
            cur = oc.superior.clone();
            out.push(oc);
            if out.len() > 32 {
                return Err(LdapError::new(
                    ResultCode::Other,
                    format!("object class chain too deep at `{n}`"),
                ));
            }
        }
        Ok(out)
    }

    /// Validate an entry against the schema:
    /// structural-class presence, `must` attributes, `may` closure,
    /// syntaxes, single-valued constraints, and RDN attributes present in
    /// the entry (naming).
    pub fn validate_entry(&self, entry: &Entry) -> Result<()> {
        if self.classes.is_empty() {
            return Ok(()); // permissive schema
        }
        let classes = entry.object_classes();
        if classes.is_empty() {
            return Err(LdapError::new(
                ResultCode::ObjectClassViolation,
                format!("entry `{}` has no objectClass", entry.dn()),
            ));
        }
        let mut structural = 0usize;
        let mut must: BTreeSet<String> = BTreeSet::new();
        let mut allowed: BTreeSet<String> = BTreeSet::new();
        allowed.insert("objectclass".into());
        for name in classes {
            for oc in self.class_chain(name)? {
                if oc.kind == ClassKind::Structural && oc.superior.as_deref() == Some("top") {
                    // count distinct structural roots loosely via chain walk below
                }
                for a in &oc.must {
                    must.insert(a.to_ascii_lowercase());
                    allowed.insert(a.to_ascii_lowercase());
                }
                for a in &oc.may {
                    allowed.insert(a.to_ascii_lowercase());
                }
            }
            if self
                .class(name)
                .is_some_and(|c| c.kind == ClassKind::Structural)
            {
                structural += 1;
            }
        }
        if structural == 0 {
            return Err(LdapError::new(
                ResultCode::ObjectClassViolation,
                format!("entry `{}` has no structural object class", entry.dn()),
            ));
        }
        // `person` + `organizationalPerson` is one chain, not two structurals.
        if structural > 1 && !self.all_one_chain(classes) {
            return Err(LdapError::new(
                ResultCode::ObjectClassViolation,
                format!(
                    "entry `{}` has multiple unrelated structural classes",
                    entry.dn()
                ),
            ));
        }
        for m in &must {
            if m == "objectclass" {
                continue;
            }
            if !entry.has_attr(m) {
                return Err(LdapError::new(
                    ResultCode::ObjectClassViolation,
                    format!("entry `{}` missing mandatory attribute `{m}`", entry.dn()),
                ));
            }
        }
        for attr in entry.attributes() {
            let norm = attr.name.norm();
            let at = self.attribute(norm).ok_or_else(|| {
                LdapError::new(
                    ResultCode::UndefinedAttributeType,
                    format!("unknown attribute type `{}`", attr.name),
                )
            })?;
            if self.strict && !allowed.contains(norm) && !self.operational.contains(norm) {
                return Err(LdapError::new(
                    ResultCode::ObjectClassViolation,
                    format!(
                        "attribute `{}` not allowed by object classes of `{}`",
                        attr.name,
                        entry.dn()
                    ),
                ));
            }
            if at.single_valued && attr.values.len() > 1 {
                return Err(LdapError::new(
                    ResultCode::ConstraintViolation,
                    format!("attribute `{}` is single-valued", attr.name),
                ));
            }
            for v in &attr.values {
                if !at.syntax.validate(v) {
                    return Err(LdapError::new(
                        ResultCode::InvalidAttributeSyntax,
                        format!("value `{v}` violates syntax of `{}`", attr.name),
                    ));
                }
            }
        }
        // Naming: every RDN AVA must be an attribute value of the entry.
        if let Some(rdn) = entry.dn().rdn() {
            for ava in rdn.avas() {
                if !entry.has_value(ava.attr(), ava.value()) {
                    return Err(LdapError::new(
                        ResultCode::NamingViolation,
                        format!(
                            "RDN `{}={}` not present among entry attributes",
                            ava.attr(),
                            ava.value()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// True when every structural class among `classes` lies on one
    /// superclass chain (e.g. `person` ⊂ `organizationalPerson`).
    fn all_one_chain(&self, classes: &[String]) -> bool {
        let structurals: Vec<&str> = classes
            .iter()
            .map(String::as_str)
            .filter(|c| {
                self.class(c)
                    .is_some_and(|oc| oc.kind == ClassKind::Structural)
            })
            .collect();
        for a in &structurals {
            for b in &structurals {
                if a == b {
                    continue;
                }
                let a_chain: Vec<String> = match self.class_chain(a) {
                    Ok(ch) => ch.iter().map(|c| c.name.to_ascii_lowercase()).collect(),
                    Err(_) => return false,
                };
                let b_chain: Vec<String> = match self.class_chain(b) {
                    Ok(ch) => ch.iter().map(|c| c.name.to_ascii_lowercase()).collect(),
                    Err(_) => return false,
                };
                if !a_chain.contains(&b.to_ascii_lowercase())
                    && !b_chain.contains(&a.to_ascii_lowercase())
                {
                    return false;
                }
            }
        }
        true
    }
}

/// Shared schema handle used by the DIT.
pub type SchemaRef = Arc<Schema>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    fn person_entry() -> Entry {
        Entry::with_attrs(
            Dn::parse("cn=John Doe,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "John Doe"),
                ("sn", "Doe"),
            ],
        )
    }

    #[test]
    fn valid_person_passes() {
        Schema::x500_core().validate_entry(&person_entry()).unwrap();
    }

    #[test]
    fn missing_must_fails() {
        let mut e = person_entry();
        e.remove_attr("sn");
        let err = Schema::x500_core().validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
        assert!(err.message.contains("sn"));
    }

    #[test]
    fn attribute_outside_may_fails() {
        let mut e = person_entry();
        e.add_value("o", "Lucent"); // `o` is not in person's may set
        let err = Schema::x500_core().validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
    }

    #[test]
    fn unknown_attribute_fails() {
        let mut e = person_entry();
        e.add_value("frobnicator", "x");
        let err = Schema::x500_core().validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::UndefinedAttributeType);
    }

    #[test]
    fn no_structural_class_fails() {
        let e = Entry::with_attrs(
            Dn::parse("cn=X,o=Lucent").unwrap(),
            [("objectClass", "top"), ("cn", "X")],
        );
        let err = Schema::x500_core().validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
    }

    #[test]
    fn chained_structural_classes_allowed() {
        let mut e = person_entry();
        e.add_value("objectClass", "organizationalPerson");
        e.add_value("ou", "Research");
        Schema::x500_core().validate_entry(&e).unwrap();
    }

    #[test]
    fn unrelated_structural_classes_rejected() {
        let mut e = person_entry();
        e.add_value("objectClass", "organization");
        e.add_value("o", "Lucent");
        let err = Schema::x500_core().validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
    }

    #[test]
    fn auxiliary_class_with_must_rejected_at_registration() {
        let mut s = Schema::x500_core();
        let err = s
            .add_class(ObjectClass {
                name: "badAux".into(),
                kind: ClassKind::Auxiliary,
                superior: Some("top".into()),
                must: vec!["cn".into()],
                may: vec![],
            })
            .unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
    }

    #[test]
    fn auxiliary_class_attributes_allowed_when_class_present() {
        let mut s = Schema::x500_core();
        s.add_attribute(AttributeType::string("definityExtension").single())
            .unwrap();
        s.add_class(ObjectClass {
            name: "definityUser".into(),
            kind: ClassKind::Auxiliary,
            superior: Some("top".into()),
            must: vec![],
            may: vec!["definityExtension".into()],
        })
        .unwrap();
        let mut e = person_entry();
        // attribute without class: violation
        e.add_value("definityExtension", "9123");
        assert!(s.validate_entry(&e).is_err());
        // with the auxiliary class present: fine
        e.add_value("objectClass", "definityUser");
        s.validate_entry(&e).unwrap();
        // paper's §5.2 anomaly: class present but extension absent is LEGAL
        let mut anomaly = person_entry();
        anomaly.add_value("objectClass", "definityUser");
        s.validate_entry(&anomaly).unwrap();
    }

    #[test]
    fn telephone_syntax_enforced() {
        let mut e = person_entry();
        e.add_value("telephoneNumber", "not a number!");
        let err = Schema::x500_core().validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::InvalidAttributeSyntax);
    }

    #[test]
    fn single_valued_enforced() {
        let mut s = Schema::x500_core();
        s.add_attribute(AttributeType::string("mbid").single())
            .unwrap();
        s.add_class(ObjectClass {
            name: "mbAux".into(),
            kind: ClassKind::Auxiliary,
            superior: Some("top".into()),
            must: vec![],
            may: vec!["mbid".into()],
        })
        .unwrap();
        let mut e = person_entry();
        e.add_value("objectClass", "mbAux");
        e.put("mbid", vec!["1".into(), "2".into()]);
        let err = s.validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::ConstraintViolation);
    }

    #[test]
    fn naming_violation_detected() {
        let mut e = person_entry();
        e.put("cn", vec!["Different Name".into()]);
        let err = Schema::x500_core().validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::NamingViolation);
    }

    #[test]
    fn operational_attribute_always_allowed() {
        let mut s = Schema::x500_core();
        s.add_operational(AttributeType::string("lastUpdater").single())
            .unwrap();
        let mut e = person_entry();
        e.add_value("lastUpdater", "pbx-1");
        s.validate_entry(&e).unwrap();
    }

    #[test]
    fn permissive_schema_accepts_anything() {
        let s = Schema::permissive();
        let e = Entry::with_attrs(Dn::parse("x=y").unwrap(), [("whatever", "value")]);
        s.validate_entry(&e).unwrap();
    }

    #[test]
    fn syntaxes() {
        assert!(Syntax::TelephoneNumber.validate("+1 908 582-9123"));
        assert!(!Syntax::TelephoneNumber.validate("ext. nine"));
        assert!(Syntax::Integer.validate("-42"));
        assert!(!Syntax::Integer.validate("4.2"));
        assert!(Syntax::DnSyntax.validate("cn=a,o=b"));
        assert!(!Syntax::DnSyntax.validate("no-equals"));
        assert!(Syntax::Boolean.validate("TRUE"));
        assert!(!Syntax::Boolean.validate("yes"));
    }
}
