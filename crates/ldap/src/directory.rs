//! The `Directory` trait: one uniform API over every way of reaching a
//! directory — the in-process DIT, a TCP client, or the LTAP gateway.
//!
//! MetaComm's Update Manager, the examples, and the benchmarks are all
//! written against this trait, so swapping the LTAP gateway between its
//! network and library deployments (paper §5.5) is a one-line change.

use crate::dit::{Dit, Scope};
use crate::dn::{Dn, Rdn};
use crate::entry::{Entry, Modification};
use crate::error::Result;
use crate::filter::Filter;
use std::sync::Arc;

/// Uniform LDAP operations.
pub trait Directory: Send + Sync {
    fn add(&self, entry: Entry) -> Result<()>;

    fn delete(&self, dn: &Dn) -> Result<()>;

    fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()>;

    fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()>;

    fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>>;

    fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool>;

    /// Like [`search`](Directory::search), but a size-limit overflow is not
    /// an error: returns the entries up to the limit plus a "truncated"
    /// flag, matching RFC 2251 `sizeLimitExceeded` semantics (the server
    /// sends the partial result set, then a SearchResultDone with code 4).
    ///
    /// The default impl retries an over-limit search without the limit and
    /// truncates; concrete directories override it with a single pass.
    fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        match self.search(base, scope, filter, attrs, size_limit) {
            Ok(v) => Ok((v, false)),
            Err(e) if e.code == crate::error::ResultCode::SizeLimitExceeded && size_limit > 0 => {
                let mut v = self.search(base, scope, filter, attrs, 0)?;
                v.truncate(size_limit);
                Ok((v, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Stream matching entries through `visit` instead of collecting them;
    /// returns `(matches visited, truncated)`. Concrete directories close
    /// to the data override this to yield borrowed entries without a
    /// per-entry clone or a result vector — the wire server's streaming
    /// response path is built on it. The default impl collects via
    /// [`search_capped`](Directory::search_capped) and replays.
    fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        let (entries, truncated) = self.search_capped(base, scope, filter, attrs, size_limit)?;
        for e in &entries {
            visit(e);
        }
        Ok((entries.len(), truncated))
    }

    /// Convenience: fetch one entry by DN (`None` when absent).
    fn get(&self, dn: &Dn) -> Result<Option<Entry>> {
        match self.search(dn, Scope::Base, &Filter::match_all(), &[], 0) {
            Ok(mut v) => Ok(v.pop()),
            Err(e) if e.code == crate::error::ResultCode::NoSuchObject => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// The in-process implementation: direct calls into the DIT.
impl Directory for Dit {
    fn add(&self, entry: Entry) -> Result<()> {
        Dit::add(self, entry)
    }

    fn delete(&self, dn: &Dn) -> Result<()> {
        Dit::delete(self, dn)
    }

    fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        Dit::modify(self, dn, mods)
    }

    fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        Dit::modify_rdn(self, dn, new_rdn, delete_old, new_superior)
    }

    fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        Dit::search(self, base, scope, filter, attrs, size_limit)
    }

    fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        Dit::compare(self, dn, attr, value)
    }

    fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        Dit::search_capped(self, base, scope, filter, attrs, size_limit)
    }

    fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        Dit::search_visit(self, base, scope, filter, attrs, size_limit, visit)
    }
}

/// Blanket impl so `Arc<Dit>` (and `Arc<Gateway>` etc.) are Directories.
impl<T: Directory + ?Sized> Directory for Arc<T> {
    fn add(&self, entry: Entry) -> Result<()> {
        (**self).add(entry)
    }
    fn delete(&self, dn: &Dn) -> Result<()> {
        (**self).delete(dn)
    }
    fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        (**self).modify(dn, mods)
    }
    fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        (**self).modify_rdn(dn, new_rdn, delete_old, new_superior)
    }
    fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        (**self).search(base, scope, filter, attrs, size_limit)
    }
    fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        (**self).compare(dn, attr, value)
    }
    fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        (**self).search_capped(base, scope, filter, attrs, size_limit)
    }
    fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        (**self).search_visit(base, scope, filter, attrs, size_limit, visit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::figure2_tree;

    #[test]
    fn dit_implements_directory() {
        let dit: Arc<Dit> = Dit::new();
        figure2_tree(&dit).unwrap();
        let dir: &dyn Directory = &dit;
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let e = dir.get(&john).unwrap().unwrap();
        assert_eq!(e.first("sn"), Some("Doe"));
        assert_eq!(
            dir.get(&Dn::parse("cn=ghost,o=Lucent").unwrap()).unwrap(),
            None
        );
    }

    #[test]
    fn arc_blanket_impl() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        fn takes_directory(d: &impl Directory) -> usize {
            d.search(
                &Dn::parse("o=Lucent").unwrap(),
                Scope::Sub,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap()
            .len()
        }
        assert_eq!(takes_directory(&dit), 9);
    }
}
