//! LDAP server: serves the wire protocol over TCP against any
//! [`Directory`] implementation.
//!
//! Because the server fronts a `Directory` (not the DIT concretely), the
//! same code serves both a plain directory server and the LTAP *gateway*
//! deployment — LTAP's interceptor implements `Directory` too.
//!
//! ## Wire engines
//!
//! Two engines serve the same protocol, switched by
//! [`ServerBuilder::with_event_loop`]:
//!
//! - **Event loop** (default on Linux, [`crate::event`]): one epoll
//!   readiness thread owns every nonblocking connection; decoded requests
//!   run on a shared CPU stage and responses flush back writev-batched.
//!   Scales to 10k+ connections without a thread per client.
//! - **Threaded** (the ablation arm, and the only engine off-Linux): one
//!   thread per connection, with an optional per-connection decode-ahead
//!   worker pool ([`ServerBuilder::with_wire_workers`]).
//!
//! Both engines read through a buffered incremental [`FrameReader`] (one
//! reusable scratch buffer, no per-frame allocation), answer strictly in
//! request order per connection (RFC 2251), and stream search results
//! through one reusable encode buffer flushed in bounded chunks.

use crate::directory::Directory;
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{LdapError, Result, ResultCode};
use crate::proto::{
    encode_search_entry_into, entry_from_wire, entry_to_wire, notice_of_disconnection, parse_rdn,
    FrameReader, LdapMessage, LdapResult, ProtocolOp,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Flush the streaming search buffer whenever it grows past this (also the
/// per-iovec cap in the event engine's writev batches).
pub(crate) const FLUSH_CHUNK: usize = 32 * 1024;

/// Per-operation wire metrics: request counts by operation, BER decode
/// failures, entries streamed back, connection gauges, and a tally of every
/// result code sent. Plain atomics — cheap enough to be always on.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    pub binds: AtomicU64,
    pub searches: AtomicU64,
    pub compares: AtomicU64,
    pub adds: AtomicU64,
    pub modifies: AtomicU64,
    pub modify_dns: AtomicU64,
    pub deletes: AtomicU64,
    pub unbinds: AtomicU64,
    /// Frames that failed BER decoding (the connection is then dropped
    /// after a Notice of Disconnection).
    pub decode_failures: AtomicU64,
    /// SearchResultEntry messages sent.
    pub entries_returned: AtomicU64,
    /// Connections currently being served.
    pub connections_open: AtomicU64,
    /// Connections accepted since the server started.
    pub connections_total: AtomicU64,
    /// Notices of Disconnection sent to misbehaving clients.
    pub disconnect_notices: AtomicU64,
    /// Connections dropped by the idle-timeout reaper
    /// ([`ServerBuilder::with_idle_timeout`]).
    pub disconnect_idle: AtomicU64,
    /// Times the accept path hit fd exhaustion (EMFILE/ENFILE) and backed
    /// off before retrying — on either engine.
    pub accept_pauses: AtomicU64,
    /// result code → times sent (any operation).
    result_codes: Mutex<BTreeMap<u32, u64>>,
}

impl ServerMetrics {
    fn record_result(&self, code: ResultCode) {
        *self.result_codes.lock().entry(code.code()).or_insert(0) += 1;
    }

    /// How many results carried `code`.
    pub fn result_code_count(&self, code: u32) -> u64 {
        self.result_codes.lock().get(&code).copied().unwrap_or(0)
    }

    /// Results whose code is not in `tallied` (the long tail).
    pub fn result_code_other(&self, tallied: &[u32]) -> u64 {
        self.result_codes
            .lock()
            .iter()
            .filter(|(c, _)| !tallied.contains(c))
            .map(|(_, n)| *n)
            .sum()
    }

    /// All `(code, count)` pairs sent so far, sorted by code.
    pub fn result_code_counts(&self) -> Vec<(u32, u64)> {
        self.result_codes
            .lock()
            .iter()
            .map(|(c, n)| (*c, *n))
            .collect()
    }
}

/// Per-connection pipeline configuration (threaded engine).
#[derive(Clone, Copy)]
struct WireConfig {
    workers: usize,
    streaming: bool,
    idle_timeout: Option<std::time::Duration>,
}

/// Builder for a [`Server`], exposing the wire performance knobs.
#[derive(Clone, Copy)]
pub struct ServerBuilder {
    /// `None` = pick at start time from the host's parallelism.
    wire_workers: Option<usize>,
    streaming: bool,
    event_loop: bool,
    idle_timeout: Option<std::time::Duration>,
}

impl Default for ServerBuilder {
    fn default() -> ServerBuilder {
        ServerBuilder::new()
    }
}

impl ServerBuilder {
    pub fn new() -> ServerBuilder {
        ServerBuilder {
            wire_workers: None,
            streaming: true,
            event_loop: true,
            idle_timeout: None,
        }
    }

    /// Size of the per-connection decode-ahead worker pool. `1` disables
    /// pipelining (requests are served strictly one at a time, decoded
    /// inline). When not set, the pool defaults to
    /// `min(available_parallelism, 4)` — in particular, a single-core host
    /// gets inline decode rather than a decode-ahead worker it would only
    /// contend with.
    pub fn with_wire_workers(mut self, n: usize) -> ServerBuilder {
        self.wire_workers = Some(n.max(1));
        self
    }

    /// The worker count [`start`](ServerBuilder::start) will use: the
    /// explicit `with_wire_workers` value, else the adaptive default.
    pub fn resolved_wire_workers(&self) -> usize {
        self.wire_workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(4)
        })
    }

    /// Stream search responses through one reusable encode buffer, flushed
    /// in bounded chunks (default). `false` restores the legacy
    /// collect-all-then-concatenate path — kept as the E14 ablation
    /// baseline.
    pub fn with_streaming(mut self, on: bool) -> ServerBuilder {
        self.streaming = on;
        self
    }

    /// Serve connections from the epoll readiness loop (default on Linux;
    /// see [`crate::event`]). `false` restores the thread-per-connection
    /// engine — kept as the E14 ablation arm. On non-Linux targets the
    /// threaded engine always runs regardless of this knob.
    pub fn with_event_loop(mut self, on: bool) -> ServerBuilder {
        self.event_loop = on;
        self
    }

    /// Drop connections with no socket activity for `timeout` (and count
    /// them in the `disconnectIdle` gauge), so 10k-connection deployments
    /// shed dead clients. Applies to both engines. Default: never.
    pub fn with_idle_timeout(mut self, timeout: std::time::Duration) -> ServerBuilder {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Whether [`start`](ServerBuilder::start) will run the event engine
    /// on this target.
    pub fn resolved_event_loop(&self) -> bool {
        self.event_loop && cfg!(target_os = "linux")
    }

    /// Start serving `dir` on `addr` (use port 0 for an ephemeral port).
    pub fn start(self, dir: Arc<dyn Directory>, addr: &str) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::default());
        #[cfg(target_os = "linux")]
        if self.resolved_event_loop() {
            return self.start_event(listener, local, dir, stop, metrics);
        }
        self.start_threaded(listener, local, dir, stop, metrics)
    }

    /// The epoll readiness engine: one loop thread owns every connection.
    #[cfg(target_os = "linux")]
    fn start_event(
        self,
        listener: TcpListener,
        local: std::net::SocketAddr,
        dir: Arc<dyn Directory>,
        stop: Arc<AtomicBool>,
        metrics: Arc<ServerMetrics>,
    ) -> Result<Server> {
        let wire_workers = self.resolved_wire_workers();
        let waker = Arc::new(
            crate::event::Waker::new()
                .map_err(|e| LdapError::new(ResultCode::Unavailable, e.to_string()))?,
        );
        let epoll = crate::event::setup(&listener, &waker)
            .map_err(|e| LdapError::new(ResultCode::Unavailable, e.to_string()))?;
        let cfg = crate::event::EventConfig {
            workers: wire_workers,
            streaming: self.streaming,
            idle_timeout: self.idle_timeout,
        };
        let m2 = metrics.clone();
        let stop2 = stop.clone();
        let waker2 = waker.clone();
        let loop_thread = std::thread::Builder::new()
            .name("ldap-event".into())
            .spawn(move || {
                crate::event::serve_event_loop(epoll, listener, dir, m2, cfg, stop2, waker2);
            })
            .map_err(|e| LdapError::new(ResultCode::Unavailable, e.to_string()))?;
        Ok(Server {
            addr: local,
            stop,
            engine: Some(Engine::Event {
                thread: loop_thread,
                waker,
            }),
            metrics,
            wire_workers,
            event_loop: true,
        })
    }

    /// The thread-per-connection engine (the ablation arm).
    fn start_threaded(
        self,
        listener: TcpListener,
        local: std::net::SocketAddr,
        dir: Arc<dyn Directory>,
        stop: Arc<AtomicBool>,
        metrics: Arc<ServerMetrics>,
    ) -> Result<Server> {
        let cfg = WireConfig {
            workers: self.resolved_wire_workers(),
            streaming: self.streaming,
            idle_timeout: self.idle_timeout,
        };
        let stop2 = stop.clone();
        let m2 = metrics.clone();
        let conns: Arc<ConnRegistry> = Arc::new(Mutex::new(HashMap::new()));
        let conns2 = conns.clone();
        let accept_thread = std::thread::Builder::new()
            .name("ldap-accept".into())
            .spawn(move || {
                let mut next_conn: u64 = 0;
                let mut accept_backoff = Duration::from_millis(10);
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            accept_backoff = Duration::from_millis(10);
                            stream.set_nodelay(true).ok();
                            m2.connections_total.fetch_add(1, Ordering::Relaxed);
                            // One fd per connection: the registry, reader,
                            // and writers all share this handle, so the
                            // accept(2) above is the only point that can
                            // hit fd exhaustion — a connection, once
                            // accepted, cannot be lost to an EMFILE on a
                            // secondary try_clone.
                            let stream = Arc::new(stream);
                            let registry_half = stream.clone();
                            m2.connections_open.fetch_add(1, Ordering::Relaxed);
                            let dir = dir.clone();
                            let m = m2.clone();
                            let spawned = std::thread::Builder::new()
                                .name("ldap-conn".into())
                                .spawn(move || {
                                    serve_connection(stream, dir, &m, cfg);
                                    m.connections_open.fetch_sub(1, Ordering::Relaxed);
                                });
                            match spawned {
                                Ok(handle) => {
                                    let mut reg = conns2.lock();
                                    // Sweep finished connections so the
                                    // registry stays bounded by peak
                                    // concurrency.
                                    reg.retain(|_, slot| !slot.handle.is_finished());
                                    reg.insert(
                                        next_conn,
                                        ConnSlot {
                                            stream: registry_half,
                                            handle,
                                        },
                                    );
                                    next_conn += 1;
                                }
                                Err(_) => {
                                    m2.connections_open.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::ConnectionAborted
                                    | std::io::ErrorKind::Interrupted
                            ) =>
                        {
                            continue
                        }
                        // EMFILE/ENFILE and friends: accept(2) fails
                        // instantly while fds are exhausted, so a plain
                        // retry spins hot and a `break` abandons the
                        // listener for the life of the server. Back off
                        // (bounded) and retry; the stop flag is rechecked
                        // every iteration so shutdown still works even if
                        // fds never free up.
                        Err(_) => {
                            m2.accept_pauses.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(accept_backoff);
                            accept_backoff = (accept_backoff * 2).min(Duration::from_secs(1));
                        }
                    }
                }
            })
            .map_err(|e| LdapError::new(ResultCode::Unavailable, e.to_string()))?;
        Ok(Server {
            addr: local,
            stop,
            engine: Some(Engine::Threaded {
                accept_thread,
                conns,
            }),
            metrics,
            wire_workers: cfg.workers,
            event_loop: false,
        })
    }
}

type ConnRegistry = Mutex<HashMap<u64, ConnSlot>>;

struct ConnSlot {
    stream: Arc<TcpStream>,
    handle: JoinHandle<()>,
}

/// The running wire engine behind a [`Server`].
enum Engine {
    /// Thread-per-connection, joined through the connection registry.
    Threaded {
        accept_thread: JoinHandle<()>,
        conns: Arc<ConnRegistry>,
    },
    /// One epoll loop thread owning every connection (Linux).
    #[cfg(target_os = "linux")]
    Event {
        thread: JoinHandle<()>,
        waker: Arc<crate::event::Waker>,
    },
}

/// A running LDAP server. Shuts down when dropped.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    engine: Option<Engine>,
    metrics: Arc<ServerMetrics>,
    wire_workers: usize,
    event_loop: bool,
}

impl Server {
    /// Start serving `dir` on `addr` with default knobs.
    pub fn start(dir: Arc<dyn Directory>, addr: &str) -> Result<Server> {
        ServerBuilder::new().start(dir, addr)
    }

    /// A builder exposing the wire performance knobs.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::new()
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Live per-operation wire metrics.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        self.metrics.clone()
    }

    /// The decode-ahead pool size this server runs with (1 = inline
    /// decode, no pipelining). Per connection in the threaded engine,
    /// shared across connections in the event engine.
    pub fn wire_workers(&self) -> usize {
        self.wire_workers
    }

    /// Whether this server runs the epoll readiness engine.
    pub fn event_loop(&self) -> bool {
        self.event_loop
    }

    /// Stop accepting, force-close live connections, and join the wire
    /// engine (every connection thread, or the loop and its workers). The
    /// `connections_open` gauge reads zero afterwards.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            match self.engine.take() {
                Some(Engine::Threaded {
                    accept_thread,
                    conns,
                }) => {
                    // Unblock the accept loop.
                    let _ = TcpStream::connect(self.addr);
                    let _ = accept_thread.join();
                    // Drain the registry before joining so the lock is not
                    // held while connection threads wind down.
                    let drained: Vec<ConnSlot> = {
                        let mut reg = conns.lock();
                        reg.drain().map(|(_, slot)| slot).collect()
                    };
                    for slot in &drained {
                        let _ = slot.stream.shutdown(std::net::Shutdown::Both);
                    }
                    for slot in drained {
                        let _ = slot.handle.join();
                    }
                }
                #[cfg(target_os = "linux")]
                Some(Engine::Event { thread, waker }) => {
                    waker.wake();
                    let _ = thread.join();
                }
                None => {}
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What the reader saw on the wire.
enum Inbound {
    Msg(LdapMessage),
    /// Undecodable bytes: framing violation or BER decode failure.
    Malformed(String),
    /// The idle timeout elapsed with no readable bytes.
    Idle,
    Closed,
}

fn read_inbound<R: std::io::Read>(frames: &mut FrameReader<R>, metrics: &ServerMetrics) -> Inbound {
    match frames.next_frame() {
        Ok(Some(frame)) => match LdapMessage::decode(frame) {
            Ok(m) => Inbound::Msg(m),
            Err(e) => {
                metrics.decode_failures.fetch_add(1, Ordering::Relaxed);
                Inbound::Malformed(e.message)
            }
        },
        Ok(None) => Inbound::Closed,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            metrics.decode_failures.fetch_add(1, Ordering::Relaxed);
            Inbound::Malformed(e.to_string())
        }
        // A blocking socket with a read timeout reports the expiry as
        // WouldBlock (or TimedOut, platform-dependent).
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Inbound::Idle
        }
        Err(_) => Inbound::Closed,
    }
}

/// The encoded RFC 2251 Notice of Disconnection, with its metrics
/// recorded — shared by both wire engines.
pub(crate) fn disconnect_notice_bytes(metrics: &ServerMetrics, detail: &str) -> Vec<u8> {
    metrics.disconnect_notices.fetch_add(1, Ordering::Relaxed);
    metrics.record_result(ResultCode::ProtocolError);
    notice_of_disconnection(ResultCode::ProtocolError, detail).encode()
}

/// Tell the client why it is being dropped (RFC 2251 Notice of
/// Disconnection) so malformed-request is distinguishable from a crash.
fn send_disconnect_notice(mut w: impl Write, metrics: &ServerMetrics, detail: &str) {
    let msg = disconnect_notice_bytes(metrics, detail);
    let _ = w.write_all(&msg);
    let _ = w.flush();
}

fn serve_connection(
    stream: Arc<TcpStream>,
    dir: Arc<dyn Directory>,
    metrics: &ServerMetrics,
    cfg: WireConfig,
) {
    // The threaded engine enforces the idle timeout through the socket's
    // read timeout: an expiry surfaces as `Inbound::Idle` in the reader.
    // (SO_RCVTIMEO lives on the socket, so any shared handle sees it.)
    if let Some(t) = cfg.idle_timeout {
        let _ = stream.set_read_timeout(Some(t));
    }
    let mut frames = FrameReader::new(&*stream);
    if cfg.workers <= 1 {
        serve_serial(&mut frames, &stream, &dir, metrics, cfg.streaming);
    } else {
        serve_pipelined(&mut frames, &stream, &dir, metrics, cfg);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn serve_serial(
    frames: &mut FrameReader<&TcpStream>,
    stream: &TcpStream,
    dir: &Arc<dyn Directory>,
    metrics: &ServerMetrics,
    streaming: bool,
) {
    let mut buf = Vec::with_capacity(4096);
    loop {
        match read_inbound(frames, metrics) {
            Inbound::Msg(msg) => match msg.op {
                ProtocolOp::UnbindRequest => {
                    metrics.unbinds.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                op => {
                    let prepared = prepare_op(msg.id, op, dir, metrics, streaming, &mut buf);
                    let mut w = stream;
                    if write_response(&mut w, &mut buf, msg.id, prepared).is_err() {
                        return;
                    }
                }
            },
            Inbound::Malformed(detail) => {
                send_disconnect_notice(stream, metrics, &detail);
                return;
            }
            Inbound::Idle => {
                metrics.disconnect_idle.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Inbound::Closed => return,
        }
    }
}

/// One unit of decode-ahead work.
enum Job {
    Request {
        seq: u64,
        id: i64,
        op: ProtocolOp,
    },
    /// Malformed input: write the Notice of Disconnection in turn order
    /// (after every earlier response), then stop all further writes.
    Disconnect {
        seq: u64,
        detail: String,
    },
}

/// Per-connection pipeline shared between the reader and its workers: a
/// bounded FIFO job queue (backpressure on the reader) plus a turn counter
/// serializing response writes into request order.
struct Pipeline {
    queue: Mutex<JobQueue>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    turn: Mutex<u64>,
    turn_cv: Condvar,
    dead: AtomicBool,
}

struct JobQueue {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Pipeline {
    fn new(cap: usize) -> Pipeline {
        Pipeline {
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            turn: Mutex::new(0),
            turn_cv: Condvar::new(),
            dead: AtomicBool::new(false),
        }
    }

    /// Reader side: blocks while the queue is full (per-connection
    /// backpressure). `false` once the pipeline died or closed.
    fn push(&self, job: Job) -> bool {
        let mut q = self.queue.lock();
        while q.jobs.len() >= self.cap && !q.closed && !self.dead.load(Ordering::Relaxed) {
            self.not_full.wait(&mut q);
        }
        if q.closed || self.dead.load(Ordering::Relaxed) {
            return false;
        }
        q.jobs.push_back(job);
        self.not_empty.notify_one();
        true
    }

    /// Worker side: `None` once the queue is closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut q = self.queue.lock();
        loop {
            if let Some(j) = q.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(j);
            }
            if q.closed {
                return None;
            }
            self.not_empty.wait(&mut q);
        }
    }

    fn close(&self) {
        let mut q = self.queue.lock();
        q.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
        // Wake a reader blocked on backpressure.
        self.not_full.notify_all();
    }

    /// Wait for `seq`'s write turn. Jobs are popped FIFO, so the worker
    /// holding the smallest outstanding seq has already left the queue and
    /// will reach its turn — later seqs waiting here cannot deadlock.
    fn begin_turn(&self, seq: u64) {
        let mut t = self.turn.lock();
        while *t != seq {
            self.turn_cv.wait(&mut t);
        }
    }

    fn end_turn(&self) {
        let mut t = self.turn.lock();
        *t += 1;
        self.turn_cv.notify_all();
    }
}

fn serve_pipelined(
    frames: &mut FrameReader<&TcpStream>,
    stream: &TcpStream,
    dir: &Arc<dyn Directory>,
    metrics: &ServerMetrics,
    cfg: WireConfig,
) {
    let pipe = Pipeline::new(cfg.workers * 2);
    std::thread::scope(|s| {
        for _ in 0..cfg.workers {
            s.spawn(|| worker_loop(&pipe, stream, dir, metrics, cfg.streaming));
        }
        let mut seq: u64 = 0;
        loop {
            match read_inbound(frames, metrics) {
                Inbound::Msg(msg) => match msg.op {
                    ProtocolOp::UnbindRequest => {
                        metrics.unbinds.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    op => {
                        if !pipe.push(Job::Request {
                            seq,
                            id: msg.id,
                            op,
                        }) {
                            break;
                        }
                        seq += 1;
                    }
                },
                Inbound::Malformed(detail) => {
                    pipe.push(Job::Disconnect { seq, detail });
                    break;
                }
                Inbound::Idle => {
                    metrics.disconnect_idle.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Inbound::Closed => break,
            }
        }
        pipe.close();
        // Scope exit joins the workers: they drain the queue, writing
        // pending responses in request order, then stop.
    });
}

fn worker_loop(
    pipe: &Pipeline,
    stream: &TcpStream,
    dir: &Arc<dyn Directory>,
    metrics: &ServerMetrics,
    streaming: bool,
) {
    let mut buf = Vec::with_capacity(4096);
    while let Some(job) = pipe.pop() {
        match job {
            Job::Request { seq, id, op } => {
                // Directory work runs concurrently across workers; only the
                // write below is serialized. Once the connection is dead,
                // just keep the turn counter moving.
                let prepared = if pipe.dead.load(Ordering::Relaxed) {
                    None
                } else {
                    // Streaming searches even encode here, before the turn:
                    // only raw byte writes remain serialized.
                    Some(prepare_op(id, op, dir, metrics, streaming, &mut buf))
                };
                pipe.begin_turn(seq);
                if let Some(p) = prepared {
                    if !pipe.dead.load(Ordering::Relaxed) {
                        let mut w = stream;
                        if write_response(&mut w, &mut buf, id, p).is_err() {
                            pipe.kill();
                        }
                    }
                }
                pipe.end_turn();
            }
            Job::Disconnect { seq, detail } => {
                pipe.begin_turn(seq);
                if !pipe.dead.load(Ordering::Relaxed) {
                    send_disconnect_notice(stream, metrics, &detail);
                    pipe.kill();
                }
                pipe.end_turn();
            }
        }
    }
}

/// A computed response, ready for its write turn.
pub(crate) enum Prepared {
    /// Streaming search: the whole response (entries + done) is already
    /// BER in the connection's reusable scratch buffer — encoded straight
    /// off borrowed store entries by [`Directory::search_visit`], no
    /// per-entry clone, no result vector, no per-message allocation.
    Encoded,
    /// Legacy search outcome (the E14 ablation baseline): collected
    /// entries plus the truncated flag, or a failure; encoded at write
    /// time the way the pre-streaming server did it.
    Search(Result<(Vec<Entry>, bool)>),
    /// Any other operation: its single response op.
    Op(ProtocolOp),
}

fn result_of(r: Result<()>, metrics: &ServerMetrics) -> LdapResult {
    let lr = match r {
        Ok(()) => LdapResult::success(),
        Err(e) => LdapResult::error(&e),
    };
    metrics.record_result(lr.code);
    lr
}

/// Run the directory work for one request and record its metrics.
/// Streaming searches encode into `buf` right here (so the directory work
/// AND the encoding overlap across pipeline workers); everything else is
/// encoded later, under the connection's write turn.
pub(crate) fn prepare_op(
    id: i64,
    op: ProtocolOp,
    dir: &Arc<dyn Directory>,
    metrics: &ServerMetrics,
    streaming: bool,
    buf: &mut Vec<u8>,
) -> Prepared {
    match op {
        ProtocolOp::BindRequest { dn, password, .. } => {
            metrics.binds.fetch_add(1, Ordering::Relaxed);
            let lr = bind_result(dir, &dn, &password);
            metrics.record_result(lr.code);
            Prepared::Op(ProtocolOp::BindResponse(lr))
        }
        ProtocolOp::SearchRequest {
            base,
            scope,
            size_limit,
            filter,
            attrs,
        } => {
            metrics.searches.fetch_add(1, Ordering::Relaxed);
            let limit = size_limit.max(0) as usize;
            if streaming {
                buf.clear();
                let outcome = Dn::parse(&base).and_then(|b| {
                    dir.search_visit(&b, scope, &filter, &attrs, limit, &mut |e| {
                        encode_search_entry_into(buf, id, e);
                    })
                });
                let done = match outcome {
                    Ok((count, truncated)) => {
                        metrics
                            .entries_returned
                            .fetch_add(count as u64, Ordering::Relaxed);
                        metrics.record_result(if truncated {
                            ResultCode::SizeLimitExceeded
                        } else {
                            ResultCode::Success
                        });
                        search_done(truncated)
                    }
                    Err(e) => {
                        metrics.record_result(e.code);
                        ProtocolOp::SearchResultDone(LdapResult::error(&e))
                    }
                };
                LdapMessage { id, op: done }.encode_into(buf);
                Prepared::Encoded
            } else {
                let outcome = Dn::parse(&base)
                    .and_then(|b| dir.search_capped(&b, scope, &filter, &attrs, limit));
                match &outcome {
                    Ok((entries, truncated)) => {
                        metrics
                            .entries_returned
                            .fetch_add(entries.len() as u64, Ordering::Relaxed);
                        metrics.record_result(if *truncated {
                            ResultCode::SizeLimitExceeded
                        } else {
                            ResultCode::Success
                        });
                    }
                    Err(e) => metrics.record_result(e.code),
                }
                Prepared::Search(outcome)
            }
        }
        ProtocolOp::AddRequest { dn, attrs } => {
            metrics.adds.fetch_add(1, Ordering::Relaxed);
            let r = entry_from_wire(&dn, &attrs).and_then(|e| dir.add(e));
            Prepared::Op(ProtocolOp::AddResponse(result_of(r, metrics)))
        }
        ProtocolOp::DelRequest { dn } => {
            metrics.deletes.fetch_add(1, Ordering::Relaxed);
            let r = Dn::parse(&dn).and_then(|d| dir.delete(&d));
            Prepared::Op(ProtocolOp::DelResponse(result_of(r, metrics)))
        }
        ProtocolOp::ModifyRequest { dn, mods } => {
            metrics.modifies.fetch_add(1, Ordering::Relaxed);
            let r = Dn::parse(&dn).and_then(|d| dir.modify(&d, &mods));
            Prepared::Op(ProtocolOp::ModifyResponse(result_of(r, metrics)))
        }
        ProtocolOp::ModifyDnRequest {
            dn,
            new_rdn,
            delete_old,
            new_superior,
        } => {
            metrics.modify_dns.fetch_add(1, Ordering::Relaxed);
            let r = (|| {
                let d = Dn::parse(&dn)?;
                let rdn = parse_rdn(&new_rdn)?;
                let sup = match &new_superior {
                    Some(s) => Some(Dn::parse(s)?),
                    None => None,
                };
                dir.modify_rdn(&d, &rdn, delete_old, sup.as_ref())
            })();
            Prepared::Op(ProtocolOp::ModifyDnResponse(result_of(r, metrics)))
        }
        ProtocolOp::CompareRequest { dn, attr, value } => {
            metrics.compares.fetch_add(1, Ordering::Relaxed);
            let res = Dn::parse(&dn).and_then(|d| dir.compare(&d, &attr, &value));
            let lr = match res {
                Ok(true) => LdapResult {
                    code: ResultCode::CompareTrue,
                    matched_dn: String::new(),
                    message: String::new(),
                },
                Ok(false) => LdapResult {
                    code: ResultCode::CompareFalse,
                    matched_dn: String::new(),
                    message: String::new(),
                },
                Err(e) => LdapResult::error(&e),
            };
            metrics.record_result(lr.code);
            Prepared::Op(ProtocolOp::CompareResponse(lr))
        }
        // Requests a server never receives (responses, unbind handled by
        // the reader).
        _ => {
            let lr = LdapResult::error(&LdapError::protocol("unexpected protocol op"));
            metrics.record_result(lr.code);
            Prepared::Op(ProtocolOp::SearchResultDone(lr))
        }
    }
}

fn search_done(truncated: bool) -> ProtocolOp {
    ProtocolOp::SearchResultDone(if truncated {
        LdapResult {
            code: ResultCode::SizeLimitExceeded,
            matched_dn: String::new(),
            message: "size limit exceeded".into(),
        }
    } else {
        LdapResult::success()
    })
}

/// Finish encoding a prepared response into `buf`. Streaming searches are
/// already BER in `buf` (left untouched); everything else is encoded here.
/// Both wire engines share this so their byte streams are bit-identical.
pub(crate) fn render_response(buf: &mut Vec<u8>, id: i64, prepared: Prepared) {
    match prepared {
        Prepared::Encoded => {
            // `buf` was filled by prepare_op; don't clear it.
        }
        Prepared::Op(op) => {
            buf.clear();
            LdapMessage { id, op }.encode_into(buf);
        }
        Prepared::Search(Err(e)) => {
            buf.clear();
            LdapMessage {
                id,
                op: ProtocolOp::SearchResultDone(LdapResult::error(&e)),
            }
            .encode_into(buf);
        }
        Prepared::Search(Ok((entries, truncated))) => {
            // Legacy path (the E14 ablation baseline): materialize every
            // ProtocolOp, encode each into a fresh per-message buffer,
            // then concatenate.
            buf.clear();
            let ops: Vec<ProtocolOp> = entries
                .iter()
                .map(|e| {
                    let (dn, attrs) = entry_to_wire(e);
                    ProtocolOp::SearchResultEntry { dn, attrs }
                })
                .chain(std::iter::once(search_done(truncated)))
                .collect();
            for op in ops {
                buf.extend(LdapMessage { id, op }.encode());
            }
        }
    }
}

/// Send one prepared response, reusing `buf` across calls. Responses go
/// out in [`FLUSH_CHUNK`]-sized writes so a huge result set never forces
/// one giant syscall.
fn write_response<W: Write>(
    w: &mut W,
    buf: &mut Vec<u8>,
    id: i64,
    prepared: Prepared,
) -> std::io::Result<()> {
    render_response(buf, id, prepared);
    for chunk in buf.chunks(FLUSH_CHUNK) {
        w.write_all(chunk)?;
    }
    w.flush()
}

fn bind_result(dir: &Arc<dyn Directory>, dn: &str, password: &str) -> LdapResult {
    // Anonymous bind always succeeds.
    if dn.is_empty() {
        return LdapResult::success();
    }
    let parsed = match Dn::parse(dn) {
        Ok(d) => d,
        Err(e) => return LdapResult::error(&e),
    };
    match dir.get(&parsed) {
        Ok(Some(entry)) => {
            if entry.has_value("userPassword", password) {
                LdapResult::success()
            } else {
                LdapResult::error(&LdapError::new(
                    ResultCode::InvalidCredentials,
                    "wrong password",
                ))
            }
        }
        Ok(None) => LdapResult::error(&LdapError::new(
            ResultCode::InvalidCredentials,
            "no such user",
        )),
        Err(e) => LdapResult::error(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TcpDirectory;
    use crate::dit::{figure2_tree, Dit, Scope};

    #[test]
    fn server_starts_and_stops() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let mut server = Server::start(dit, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        // Plain TCP connect works.
        let _c = TcpStream::connect(addr).unwrap();
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_live_connections() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let mut server = Server::start(dit, "127.0.0.1:0").unwrap();
        let metrics = server.metrics();
        let addr = server.addr().to_string();
        let clients: Vec<TcpDirectory> = (0..4)
            .map(|_| TcpDirectory::connect(&addr).unwrap())
            .collect();
        for c in &clients {
            assert!(c
                .get(&Dn::parse("cn=Jill Lu,o=R&D,o=Lucent").unwrap())
                .unwrap()
                .is_some());
        }
        assert_eq!(metrics.connections_open.load(Ordering::Relaxed), 4);
        assert_eq!(metrics.connections_total.load(Ordering::Relaxed), 4);
        // Shutdown force-closes the live connections and joins their
        // threads, so the gauge must read zero afterwards.
        server.shutdown();
        assert_eq!(metrics.connections_open.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn truncated_search_returns_partial_entries_and_code_4() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let server = Server::start(dit, "127.0.0.1:0").unwrap();
        let client = TcpDirectory::connect(&server.addr().to_string()).unwrap();
        let (entries, truncated) = client
            .search_capped(
                &Dn::parse("o=Lucent").unwrap(),
                Scope::Sub,
                &crate::filter::Filter::match_all(),
                &[],
                3,
            )
            .unwrap();
        assert!(truncated);
        assert_eq!(entries.len(), 3, "entries up to the limit are delivered");
        // The strict `search` still surfaces the error.
        let err = client
            .search(
                &Dn::parse("o=Lucent").unwrap(),
                Scope::Sub,
                &crate::filter::Filter::match_all(),
                &[],
                3,
            )
            .unwrap_err();
        assert_eq!(err.code, ResultCode::SizeLimitExceeded);
    }

    #[test]
    fn serial_mode_still_serves() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let server = Server::builder()
            .with_wire_workers(1)
            .start(dit, "127.0.0.1:0")
            .unwrap();
        let client = TcpDirectory::connect(&server.addr().to_string()).unwrap();
        let hits = client
            .search(
                &Dn::parse("o=Lucent").unwrap(),
                Scope::Sub,
                &crate::filter::Filter::match_all(),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn legacy_encode_path_matches_streaming() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let streaming = Server::builder()
            .with_streaming(true)
            .start(dit.clone(), "127.0.0.1:0")
            .unwrap();
        let legacy = Server::builder()
            .with_streaming(false)
            .start(dit, "127.0.0.1:0")
            .unwrap();
        let base = Dn::parse("o=Lucent").unwrap();
        let f = crate::filter::Filter::match_all();
        let a = TcpDirectory::connect(&streaming.addr().to_string()).unwrap();
        let b = TcpDirectory::connect(&legacy.addr().to_string()).unwrap();
        let ea = a.search(&base, Scope::Sub, &f, &[], 0).unwrap();
        let eb = b.search(&base, Scope::Sub, &f, &[], 0).unwrap();
        assert_eq!(ea, eb);
    }
}
