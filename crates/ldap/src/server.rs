//! Threaded LDAP server: serves the wire protocol over TCP against any
//! [`Directory`] implementation.
//!
//! Because the server fronts a `Directory` (not the DIT concretely), the
//! same code serves both a plain directory server and the LTAP *gateway*
//! deployment — LTAP's interceptor implements `Directory` too.

use crate::directory::Directory;
use crate::dit::Scope;
use crate::dn::Dn;
use crate::error::{LdapError, Result, ResultCode};
use crate::filter::Filter;
use crate::proto::{
    entry_from_wire, entry_to_wire, parse_rdn, read_frame, LdapMessage, LdapResult, ProtocolOp,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-operation wire metrics: request counts by operation, BER decode
/// failures, entries streamed back, and a tally of every result code sent.
/// Plain atomics — cheap enough to be always on.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    pub binds: AtomicU64,
    pub searches: AtomicU64,
    pub compares: AtomicU64,
    pub adds: AtomicU64,
    pub modifies: AtomicU64,
    pub modify_dns: AtomicU64,
    pub deletes: AtomicU64,
    pub unbinds: AtomicU64,
    /// Frames that failed BER decoding (the connection is then dropped).
    pub decode_failures: AtomicU64,
    /// SearchResultEntry messages sent.
    pub entries_returned: AtomicU64,
    /// result code → times sent (any operation).
    result_codes: Mutex<BTreeMap<u32, u64>>,
}

impl ServerMetrics {
    fn record_result(&self, code: ResultCode) {
        *self.result_codes.lock().entry(code.code()).or_insert(0) += 1;
    }

    /// How many results carried `code`.
    pub fn result_code_count(&self, code: u32) -> u64 {
        self.result_codes.lock().get(&code).copied().unwrap_or(0)
    }

    /// Results whose code is not in `tallied` (the long tail).
    pub fn result_code_other(&self, tallied: &[u32]) -> u64 {
        self.result_codes
            .lock()
            .iter()
            .filter(|(c, _)| !tallied.contains(c))
            .map(|(_, n)| *n)
            .sum()
    }

    /// All `(code, count)` pairs sent so far, sorted by code.
    pub fn result_code_counts(&self) -> Vec<(u32, u64)> {
        self.result_codes
            .lock()
            .iter()
            .map(|(c, n)| (*c, *n))
            .collect()
    }
}

/// A running LDAP server. Shuts down when dropped.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
}

impl Server {
    /// Start serving `dir` on `addr` (use port 0 for an ephemeral port).
    pub fn start(dir: Arc<dyn Directory>, addr: &str) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let metrics = Arc::new(ServerMetrics::default());
        let m2 = metrics.clone();
        let accept_thread = std::thread::Builder::new()
            .name("ldap-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            stream.set_nodelay(true).ok();
                            let dir = dir.clone();
                            let m = m2.clone();
                            let _ = std::thread::Builder::new()
                                .name("ldap-conn".into())
                                .spawn(move || serve_connection(stream, dir, m));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| LdapError::new(ResultCode::Unavailable, e.to_string()))?;
        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            metrics,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Live per-operation wire metrics.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        self.metrics.clone()
    }

    /// Stop accepting connections.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop.
            let _ = TcpStream::connect(self.addr);
            if let Some(t) = self.accept_thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, dir: Arc<dyn Directory>, metrics: Arc<ServerMetrics>) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            _ => return,
        };
        let msg = match LdapMessage::decode(&frame) {
            Ok(m) => m,
            Err(_) => {
                metrics.decode_failures.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let id = msg.id;
        let responses = match msg.op {
            ProtocolOp::UnbindRequest => {
                metrics.unbinds.fetch_add(1, Ordering::Relaxed);
                return;
            }
            op => handle_op(op, &dir, &metrics),
        };
        // One write per request: search results can be hundreds of
        // messages, and per-message syscalls dominate otherwise.
        let mut out = Vec::new();
        for op in responses {
            out.extend(LdapMessage { id, op }.encode());
        }
        if stream.write_all(&out).is_err() {
            return;
        }
        let _ = stream.flush();
    }
}

fn result_of(r: Result<()>, metrics: &ServerMetrics) -> LdapResult {
    let lr = match r {
        Ok(()) => LdapResult::success(),
        Err(e) => LdapResult::error(&e),
    };
    metrics.record_result(lr.code);
    lr
}

fn handle_op(op: ProtocolOp, dir: &Arc<dyn Directory>, metrics: &ServerMetrics) -> Vec<ProtocolOp> {
    match op {
        ProtocolOp::BindRequest { dn, password, .. } => {
            metrics.binds.fetch_add(1, Ordering::Relaxed);
            let lr = bind_result(dir, &dn, &password);
            metrics.record_result(lr.code);
            vec![ProtocolOp::BindResponse(lr)]
        }
        ProtocolOp::SearchRequest {
            base,
            scope,
            size_limit,
            filter,
            attrs,
        } => {
            metrics.searches.fetch_add(1, Ordering::Relaxed);
            search_responses(dir, &base, scope, size_limit, &filter, &attrs, metrics)
        }
        ProtocolOp::AddRequest { dn, attrs } => {
            metrics.adds.fetch_add(1, Ordering::Relaxed);
            let r = entry_from_wire(&dn, &attrs).and_then(|e| dir.add(e));
            vec![ProtocolOp::AddResponse(result_of(r, metrics))]
        }
        ProtocolOp::DelRequest { dn } => {
            metrics.deletes.fetch_add(1, Ordering::Relaxed);
            let r = Dn::parse(&dn).and_then(|d| dir.delete(&d));
            vec![ProtocolOp::DelResponse(result_of(r, metrics))]
        }
        ProtocolOp::ModifyRequest { dn, mods } => {
            metrics.modifies.fetch_add(1, Ordering::Relaxed);
            let r = Dn::parse(&dn).and_then(|d| dir.modify(&d, &mods));
            vec![ProtocolOp::ModifyResponse(result_of(r, metrics))]
        }
        ProtocolOp::ModifyDnRequest {
            dn,
            new_rdn,
            delete_old,
            new_superior,
        } => {
            metrics.modify_dns.fetch_add(1, Ordering::Relaxed);
            let r = (|| {
                let d = Dn::parse(&dn)?;
                let rdn = parse_rdn(&new_rdn)?;
                let sup = match &new_superior {
                    Some(s) => Some(Dn::parse(s)?),
                    None => None,
                };
                dir.modify_rdn(&d, &rdn, delete_old, sup.as_ref())
            })();
            vec![ProtocolOp::ModifyDnResponse(result_of(r, metrics))]
        }
        ProtocolOp::CompareRequest { dn, attr, value } => {
            metrics.compares.fetch_add(1, Ordering::Relaxed);
            let res = Dn::parse(&dn).and_then(|d| dir.compare(&d, &attr, &value));
            let lr = match res {
                Ok(true) => LdapResult {
                    code: ResultCode::CompareTrue,
                    matched_dn: String::new(),
                    message: String::new(),
                },
                Ok(false) => LdapResult {
                    code: ResultCode::CompareFalse,
                    matched_dn: String::new(),
                    message: String::new(),
                },
                Err(e) => LdapResult::error(&e),
            };
            metrics.record_result(lr.code);
            vec![ProtocolOp::CompareResponse(lr)]
        }
        // Requests a server never receives (responses, unbind handled above).
        _ => {
            let lr = LdapResult::error(&LdapError::protocol("unexpected protocol op"));
            metrics.record_result(lr.code);
            vec![ProtocolOp::SearchResultDone(lr)]
        }
    }
}

fn bind_result(dir: &Arc<dyn Directory>, dn: &str, password: &str) -> LdapResult {
    // Anonymous bind always succeeds.
    if dn.is_empty() {
        return LdapResult::success();
    }
    let parsed = match Dn::parse(dn) {
        Ok(d) => d,
        Err(e) => return LdapResult::error(&e),
    };
    match dir.get(&parsed) {
        Ok(Some(entry)) => {
            if entry.has_value("userPassword", password) {
                LdapResult::success()
            } else {
                LdapResult::error(&LdapError::new(
                    ResultCode::InvalidCredentials,
                    "wrong password",
                ))
            }
        }
        Ok(None) => LdapResult::error(&LdapError::new(
            ResultCode::InvalidCredentials,
            "no such user",
        )),
        Err(e) => LdapResult::error(&e),
    }
}

fn search_responses(
    dir: &Arc<dyn Directory>,
    base: &str,
    scope: Scope,
    size_limit: i64,
    filter: &Filter,
    attrs: &[String],
    metrics: &ServerMetrics,
) -> Vec<ProtocolOp> {
    let result = Dn::parse(base)
        .and_then(|b| dir.search(&b, scope, filter, attrs, size_limit.max(0) as usize));
    match result {
        Ok(entries) => {
            metrics
                .entries_returned
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            let mut out: Vec<ProtocolOp> = entries
                .iter()
                .map(|e| {
                    let (dn, attrs) = entry_to_wire(e);
                    ProtocolOp::SearchResultEntry { dn, attrs }
                })
                .collect();
            metrics.record_result(ResultCode::Success);
            out.push(ProtocolOp::SearchResultDone(LdapResult::success()));
            out
        }
        Err(e) => {
            metrics.record_result(e.code);
            vec![ProtocolOp::SearchResultDone(LdapResult::error(&e))]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::{figure2_tree, Dit};

    #[test]
    fn server_starts_and_stops() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let mut server = Server::start(dit, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        // Plain TCP connect works.
        let _c = TcpStream::connect(addr).unwrap();
        server.shutdown();
    }
}
