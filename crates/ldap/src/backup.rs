//! Durable snapshots, the LDIF change journal, and the DIT side of the
//! binary write-ahead log.
//!
//! Paper §2: "replication and backups are used to handle system and media
//! failure". Three layers live here:
//!
//! 1. **Snapshots** — full LDIF dumps with a `# seq` header recording the
//!    commit sequence they reflect and a `# crc32` footer so a torn or
//!    corrupted file is detected (and an older snapshot used instead). The
//!    write path is crash-safe: tmp file, fsync, atomic rename, fsync of
//!    the parent directory.
//! 2. **The LDIF [`Journal`]** — the human-readable change log (one LDIF
//!    change record per commit, `# commit`-terminated). Kept for exports
//!    and debugging; write failures are counted and surfaced through an
//!    error sink instead of being swallowed.
//! 3. **WAL integration** — commits serialized as `[seq][LDIF change]`
//!    frames in a [`crate::wal::Wal`], and the matching replay that sorts
//!    by commit sequence and applies exactly the *committed prefix*: replay
//!    stops at the first gap, because commit observers run outside the
//!    store lock and two racing commits may reach the log out of order —
//!    a missing sequence number means that commit's frame was torn.
//!
//! [`SnapshotStore`] ties 1 and 3 together into generation-numbered
//! rotation (`snap-NNNNNN.ldif` + `wal-NNNNNN.log`), giving recovery the
//! order the DESIGN doc specifies: newest valid snapshot, then the log.

use crate::dit::{ChangeOp, ChangeRecord, Dit};
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{LdapError, Result, ResultCode};
use crate::ldif;
use crate::wal::{crc32, Crc32, Wal};
use parking_lot::Mutex;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Marker line terminating each journal record; a record without it was
/// torn by a crash and is ignored at recovery.
const COMMIT_MARK: &str = "# commit";

/// Snapshot header comment carrying the commit sequence of the export.
const SEQ_PREFIX: &str = "# seq: ";

/// Snapshot footer comment carrying the CRC of everything before it.
const CRC_PREFIX: &str = "# crc32: ";

/// WAL frame tag for a DIT commit (`[seq: u64 LE][LDIF change text]`).
pub const TAG_DIT_CHANGE: u8 = 1;

/// Fsync a directory so a rename inside it is on stable storage (the
/// classic create-fsync-rename-fsyncdir sequence).
fn sync_dir(dir: &Path) -> Result<()> {
    // Directories cannot be opened for writing; a read handle suffices for
    // fsync on the platforms we target.
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Crash-safe file replace: write to a tmp sibling, fsync it, rename over
/// `path`, fsync the parent directory. A crash at any point leaves either
/// the old file or the new one, never a torn mix.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            sync_dir(parent)?;
        }
    }
    Ok(())
}

/// Serialize a full export with the `# seq` header and `# crc32` footer,
/// and write it crash-safely to `path`.
fn write_snapshot_file(entries: &[Entry], seq: u64, path: &Path) -> Result<()> {
    let mut text = format!("{SEQ_PREFIX}{seq}\n");
    text.push_str(&ldif::to_ldif(entries));
    let crc = crc32(text.as_bytes());
    text.push_str(&format!("{CRC_PREFIX}{crc:08x}\n"));
    atomic_write(path, text.as_bytes())
}

/// Read a snapshot file, verifying its checksum footer when present.
/// Returns the LDIF text plus the recorded commit sequence (0 for legacy
/// snapshots without a header). Fails on a missing/corrupt checksum so the
/// caller can fall back to an older generation; `require_footer` is false
/// only for legacy pre-WAL snapshots.
fn read_snapshot_file(path: &Path, require_footer: bool) -> Result<(String, u64)> {
    let text = std::fs::read_to_string(path)?;
    // The footer is only ever the final line: anchor the search to a line
    // start and reject interior matches, so a legacy footer-less snapshot
    // whose LDIF data happens to contain the literal marker is not
    // misparsed as checksummed (and then failed as corrupt).
    let footer_at = text
        .rfind(&format!("\n{CRC_PREFIX}"))
        .map(|at| at + 1)
        .or_else(|| text.starts_with(CRC_PREFIX).then_some(0))
        .filter(|&at| !text[at..].trim_end().contains('\n'));
    let body = match footer_at {
        Some(at) => {
            // The footer must be the final line and must verify.
            let footer = text[at..].trim_end();
            let want = u32::from_str_radix(footer.trim_start_matches(CRC_PREFIX), 16)
                .map_err(|_| snapshot_error(path, "unparseable checksum footer"))?;
            let got = crc32(&text.as_bytes()[..at]);
            if got != want {
                return Err(snapshot_error(
                    path,
                    &format!("checksum mismatch (stored {want:08x}, computed {got:08x})"),
                ));
            }
            &text[..at]
        }
        None if require_footer => return Err(snapshot_error(path, "missing checksum footer")),
        None => &text[..],
    };
    let seq = body
        .lines()
        .find_map(|l| l.strip_prefix(SEQ_PREFIX))
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    Ok((body.to_string(), seq))
}

fn snapshot_error(path: &Path, what: &str) -> LdapError {
    LdapError::new(
        ResultCode::Other,
        format!("snapshot {}: {what}", path.display()),
    )
}

/// Load parsed snapshot text into an empty DIT. Content records only.
fn load_snapshot_text(dit: &Dit, text: &str, path: &Path) -> Result<usize> {
    let records = ldif::parse(text)?;
    let mut n = 0;
    for r in records {
        match r {
            ldif::Record::Content(e) => {
                dit.add(e)?;
                n += 1;
            }
            other => {
                return Err(snapshot_error(
                    path,
                    &format!("contains a change record: {other:?}"),
                ))
            }
        }
    }
    Ok(n)
}

/// Write a full LDIF snapshot of the DIT: checksummed, fsynced, and
/// atomically renamed into place (a crash leaves either the old file or
/// the new one, never a torn mix).
///
/// On the compact backing the export is streamed entry-by-entry under one
/// read guard — a million-entry checkpoint never materializes the full
/// `Vec<Entry>` or the full LDIF text. The legacy backing keeps the
/// materializing path (the E18 ablation prices exactly that). Both paths
/// produce byte-identical files.
pub fn snapshot(dit: &Dit, path: &Path) -> Result<()> {
    if dit.is_compact() {
        return write_snapshot_stream(dit, path).map(|_seq| ());
    }
    let (entries, seq) = dit.export_with_seq();
    write_snapshot_file(&entries, seq, path)
}

/// Streaming snapshot writer: header, entries, and checksum footer go
/// through one bounded `BufWriter` with the CRC folded incrementally, so
/// memory stays O(one entry) regardless of DIT size. Same tmp-file +
/// fsync + rename + dir-fsync crash safety, same bytes, as
/// [`write_snapshot_file`]. Returns the commit sequence the snapshot
/// reflects.
fn write_snapshot_stream(dit: &Dit, path: &Path) -> Result<u64> {
    use std::fmt::Write as _;
    struct W {
        out: std::io::BufWriter<std::fs::File>,
        crc: Crc32,
        buf: String,
    }
    impl W {
        fn emit_buf(&mut self) -> Result<()> {
            self.crc.update(self.buf.as_bytes());
            self.out.write_all(self.buf.as_bytes())?;
            Ok(())
        }
    }
    let tmp = path.with_extension("tmp");
    let file = std::fs::File::create(&tmp)?;
    let w = std::cell::RefCell::new(W {
        out: std::io::BufWriter::with_capacity(1 << 20, file),
        crc: Crc32::new(),
        buf: String::new(),
    });
    let seq_out = std::cell::Cell::new(0u64);
    dit.export_stream(
        &mut |seq| {
            seq_out.set(seq);
            let mut w = w.borrow_mut();
            w.buf.clear();
            writeln!(w.buf, "{SEQ_PREFIX}{seq}").expect("string write");
            w.emit_buf()
        },
        &mut |e| {
            let mut w = w.borrow_mut();
            w.buf.clear();
            ldif::write_entry(&mut w.buf, e);
            w.buf.push('\n');
            w.emit_buf()
        },
    )?;
    let mut w = w.into_inner();
    let footer = format!("{CRC_PREFIX}{:08x}\n", w.crc.finish());
    w.out.write_all(footer.as_bytes())?;
    let file = w.out.into_inner().map_err(|e| e.into_error())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            sync_dir(parent)?;
        }
    }
    Ok(seq_out.get())
}

/// Single-pass snapshot scanner: reads lines through a bounded buffer,
/// folds every byte into the running CRC, and yields whole LDIF blocks at
/// blank-line boundaries. The checksum footer is only ever the *final*
/// line, but that is unknowable mid-stream, so a `# crc32: ` line is held
/// back tentatively: if more content follows it was an interior comment
/// (fold it in and keep going); if EOF follows it is the footer and must
/// verify against everything before it.
struct SnapshotScanner<R: BufRead> {
    r: R,
    crc: Crc32,
    line: String,
    pending_footer: Option<String>,
    block: String,
    /// Commit sequence from the `# seq: ` header, once seen.
    seq: Option<u64>,
    path: PathBuf,
}

impl<R: BufRead> SnapshotScanner<R> {
    fn new(r: R, path: &Path) -> SnapshotScanner<R> {
        SnapshotScanner {
            r,
            crc: Crc32::new(),
            line: String::new(),
            pending_footer: None,
            block: String::new(),
            seq: None,
            path: path.to_path_buf(),
        }
    }

    /// The next LDIF block, or `None` at (checksum-verified) EOF.
    fn next_block(&mut self) -> Result<Option<String>> {
        loop {
            self.line.clear();
            if self.r.read_line(&mut self.line)? == 0 {
                let footer = self
                    .pending_footer
                    .take()
                    .ok_or_else(|| snapshot_error(&self.path, "missing checksum footer"))?;
                let want =
                    u32::from_str_radix(footer.trim_end().trim_start_matches(CRC_PREFIX), 16)
                        .map_err(|_| snapshot_error(&self.path, "unparseable checksum footer"))?;
                let got = self.crc.finish();
                if got != want {
                    return Err(snapshot_error(
                        &self.path,
                        &format!("checksum mismatch (stored {want:08x}, computed {got:08x})"),
                    ));
                }
                if self.block.is_empty() {
                    return Ok(None);
                }
                return Ok(Some(std::mem::take(&mut self.block)));
            }
            if let Some(f) = self.pending_footer.take() {
                // Not the final line after all: an interior comment.
                self.crc.update(f.as_bytes());
                self.block.push_str(&f);
            }
            if self.line.starts_with(CRC_PREFIX) {
                self.pending_footer = Some(self.line.clone());
                continue;
            }
            self.crc.update(self.line.as_bytes());
            if self.seq.is_none() {
                if let Some(s) = self.line.strip_prefix(SEQ_PREFIX) {
                    self.seq = s.trim().parse().ok();
                }
            }
            if self.line.trim().is_empty() {
                if !self.block.is_empty() {
                    return Ok(Some(std::mem::take(&mut self.block)));
                }
                continue;
            }
            self.block.push_str(&self.line);
        }
    }
}

/// Parse one scanner block into content entries (comments drop out in the
/// LDIF parser; change records are a corrupt snapshot).
fn parse_block_entries(block: &str, path: &Path) -> Result<Vec<Entry>> {
    ldif::parse_content(block).map_err(|e| snapshot_error(path, &format!("bad content block: {e}")))
}

/// How many blocks a parse batch carries through the worker channel.
const PARSE_BATCH_BLOCKS: usize = 512;

/// Streaming snapshot load into an empty compact-backing DIT: a bounded
/// single pass over the file (no whole-file `String`, no all-records
/// `Vec`), with block parsing fanned across `available_parallelism - 1`
/// workers when the machine has them (inline otherwise), ordered
/// reassembly, and insertion in bulk-load mode via [`Dit::bulk_add`] —
/// `trusted` because the CRC footer covers every byte, so the entries were
/// schema-validated when this system first wrote them. A checksum failure
/// surfaces as `Err` *after* a partial load; the caller falls back a
/// generation and clears the DIT, exactly as with the materializing
/// reader. Returns `(entries loaded, snapshot commit seq)`.
fn load_snapshot_stream(dit: &Dit, path: &Path) -> Result<(usize, u64)> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).min(8))
        .unwrap_or(0);
    let file = std::fs::File::open(path)?;
    let mut scanner = SnapshotScanner::new(std::io::BufReader::with_capacity(1 << 20, file), path);
    dit.begin_bulk();
    let res = if workers == 0 {
        load_blocks_inline(dit, path, &mut scanner)
    } else {
        load_blocks_parallel(dit, path, scanner, workers)
    };
    dit.finish_bulk();
    res
}

fn load_blocks_inline<R: BufRead>(
    dit: &Dit,
    path: &Path,
    scanner: &mut SnapshotScanner<R>,
) -> Result<(usize, u64)> {
    let mut n = 0;
    while let Some(block) = scanner.next_block()? {
        for e in parse_block_entries(&block, path)? {
            dit.bulk_add(e, true)?;
            n += 1;
        }
    }
    Ok((n, scanner.seq.unwrap_or(0)))
}

fn load_blocks_parallel<R: BufRead + Send>(
    dit: &Dit,
    path: &Path,
    mut scanner: SnapshotScanner<R>,
    workers: usize,
) -> Result<(usize, u64)> {
    use std::sync::mpsc::sync_channel;
    type Batch = (usize, Vec<String>);
    type Parsed = (usize, Result<Vec<Entry>>);
    std::thread::scope(|sc| {
        let (batch_tx, batch_rx) = sync_channel::<Batch>(workers * 2);
        let (parsed_tx, parsed_rx) = sync_channel::<Parsed>(workers * 2);
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        for _ in 0..workers {
            let batch_rx = batch_rx.clone();
            let parsed_tx = parsed_tx.clone();
            sc.spawn(move || loop {
                let msg = batch_rx.lock().recv();
                let Ok((idx, blocks)) = msg else { break };
                let parsed = blocks.iter().try_fold(Vec::new(), |mut acc, b| {
                    let mut es = parse_block_entries(b, path)?;
                    // Flatten + intern in the worker, in parallel, so the
                    // single-threaded inserter has less to do.
                    for e in &mut es {
                        e.compact_for_store();
                    }
                    acc.append(&mut es);
                    Ok(acc)
                });
                if parsed_tx.send((idx, parsed)).is_err() {
                    break;
                }
            });
        }
        drop(parsed_tx);
        // Reader: scan + CRC on its own thread; returns the verify outcome
        // and the header seq.
        let reader = sc.spawn(move || -> (Result<()>, Option<u64>) {
            let mut idx = 0;
            let mut batch: Vec<String> = Vec::with_capacity(PARSE_BATCH_BLOCKS);
            loop {
                match scanner.next_block() {
                    Ok(Some(b)) => {
                        batch.push(b);
                        if batch.len() == PARSE_BATCH_BLOCKS {
                            if batch_tx.send((idx, std::mem::take(&mut batch))).is_err() {
                                return (Ok(()), scanner.seq);
                            }
                            idx += 1;
                        }
                    }
                    Ok(None) => {
                        if !batch.is_empty() {
                            let _ = batch_tx.send((idx, batch));
                        }
                        return (Ok(()), scanner.seq);
                    }
                    Err(e) => return (Err(e), scanner.seq),
                }
            }
        });
        // Inserter (this thread): reassemble batches in file order —
        // parents must land before their children — and bulk-insert.
        let mut pending: std::collections::BTreeMap<usize, Result<Vec<Entry>>> =
            std::collections::BTreeMap::new();
        let mut next = 0usize;
        let mut n = 0usize;
        let mut failure: Option<LdapError> = None;
        'recv: for (idx, res) in parsed_rx.iter() {
            pending.insert(idx, res);
            while let Some(res) = pending.remove(&next) {
                next += 1;
                match res {
                    Ok(entries) => {
                        for e in entries {
                            if let Err(err) = dit.bulk_add(e, true) {
                                failure = Some(err);
                                break 'recv;
                            }
                            n += 1;
                        }
                    }
                    Err(err) => {
                        failure = Some(err);
                        break 'recv;
                    }
                }
            }
        }
        drop(parsed_rx); // bail-out path: unblock workers, then the reader
        let (read_res, seq) = reader.join().expect("snapshot reader thread");
        if let Some(err) = failure {
            return Err(err);
        }
        read_res?;
        Ok((n, seq.unwrap_or(0)))
    })
}

/// Load a snapshot into an empty DIT, verifying the checksum footer when
/// one is present (snapshots written before the footer existed still load).
pub fn restore_snapshot(dit: &Dit, path: &Path) -> Result<usize> {
    let (text, _) = read_snapshot_file(path, false)?;
    load_snapshot_text(dit, &text, path)
}

type ErrorSink = Box<dyn Fn(&str) + Send + Sync>;

/// An append-only change journal attached to a DIT.
pub struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    write_errors: AtomicU64,
    on_error: Mutex<Option<ErrorSink>>,
}

impl Journal {
    /// Open (or create) the journal and attach it to the DIT: every commit
    /// is appended and flushed before the commit returns to the caller.
    pub fn attach(dit: &Arc<Dit>, path: &Path) -> Result<Arc<Journal>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let journal = Arc::new(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            write_errors: AtomicU64::new(0),
            on_error: Mutex::new(None),
        });
        let j = journal.clone();
        dit.observe(move |rec| j.append(rec));
        Ok(journal)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Failed journal appends since attach. Non-zero means the on-disk
    /// change log is missing records (durability is degraded).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Install the write-failure sink (§4.4 log-and-alert). At most one;
    /// later calls replace it.
    pub fn set_error_sink(&self, f: impl Fn(&str) + Send + Sync + 'static) {
        *self.on_error.lock() = Some(Box::new(f));
    }

    fn append(&self, rec: &ChangeRecord) {
        let mut text = ldif::change_to_ldif(&change_to_ldif_record(rec));
        text.push_str(COMMIT_MARK);
        text.push('\n');
        // A failed journal write must not poison the commit (the paper's
        // systems kept running when logging degraded) — but it must not be
        // invisible either: count it and alert the administrator (§4.4).
        let res = {
            let mut f = self.file.lock();
            f.write_all(text.as_bytes()).and_then(|()| f.flush())
        };
        if let Err(e) = res {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            if let Some(sink) = self.on_error.lock().as_ref() {
                sink(&format!(
                    "journal append failed on {} (commit seq {}): {e}",
                    self.path.display(),
                    rec.seq
                ));
            }
        }
    }

    /// Replay a journal file into a DIT. Returns the number of applied
    /// change records; a torn final record (crash mid-append) is discarded.
    pub fn replay(dit: &Dit, path: &Path) -> Result<usize> {
        let text = std::fs::read_to_string(path)?;
        let sep = format!("{COMMIT_MARK}\n");
        // The file is a sequence of `<record><mark>` blocks; only the text
        // AFTER the last mark can be a torn record.
        let ends_clean = text.is_empty() || text.ends_with(&sep);
        let chunks: Vec<&str> = text.split(&sep).collect();
        let last = chunks.len().saturating_sub(1);
        let mut applied = 0;
        for (i, chunk) in chunks.iter().enumerate() {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            if i == last && !ends_clean {
                break; // torn tail: never followed by a commit mark
            }
            let records = ldif::parse(chunk)?;
            for r in records {
                apply(dit, r)?;
                applied += 1;
            }
        }
        Ok(applied)
    }
}

/// The LDIF change record equivalent of a commit observation.
fn change_to_ldif_record(rec: &ChangeRecord) -> ldif::Record {
    match &rec.op {
        ChangeOp::Add(e) => ldif::Record::Add(e.clone()),
        ChangeOp::Delete => ldif::Record::Delete(rec.dn.clone()),
        ChangeOp::Modify(mods) => ldif::Record::Modify(rec.dn.clone(), mods.clone()),
        ChangeOp::ModifyRdn {
            new_rdn,
            delete_old,
            new_superior,
        } => ldif::Record::ModRdn {
            dn: rec.dn.clone(),
            new_rdn: new_rdn.clone(),
            delete_old: *delete_old,
            new_superior: new_superior.clone(),
        },
    }
}

fn apply(dit: &Dit, r: ldif::Record) -> Result<()> {
    match r {
        ldif::Record::Content(e) | ldif::Record::Add(e) => dit.add(e),
        ldif::Record::Delete(dn) => dit.delete(&dn),
        ldif::Record::Modify(dn, mods) => dit.modify(&dn, &mods),
        ldif::Record::ModRdn {
            dn,
            new_rdn,
            delete_old,
            new_superior,
        } => dit.modify_rdn(&dn, &new_rdn, delete_old, new_superior.as_ref()),
    }
}

/// Full recovery: snapshot (if present) + journal replay (if present).
pub fn recover(dit: &Dit, snapshot_path: &Path, journal_path: &Path) -> Result<(usize, usize)> {
    let from_snapshot = if snapshot_path.exists() {
        restore_snapshot(dit, snapshot_path)?
    } else {
        0
    };
    let from_journal = if journal_path.exists() {
        Journal::replay(dit, journal_path)?
    } else {
        0
    };
    Ok((from_snapshot, from_journal))
}

/// Convenience used by recovery flows: does this DN exist after recovery?
pub fn verify_entry(dit: &Dit, dn: &str) -> Result<Entry> {
    let dn = Dn::parse(dn)?;
    dit.get(&dn).ok_or_else(|| LdapError::no_such_object(&dn))
}

// ---------------------------------------------------------------------------
// WAL integration
// ---------------------------------------------------------------------------

/// Serialize a commit observation as a WAL payload: `[seq: u64 LE][LDIF]`.
pub fn wal_payload(rec: &ChangeRecord) -> Vec<u8> {
    let text = ldif::change_to_ldif(&change_to_ldif_record(rec));
    let mut buf = Vec::with_capacity(8 + text.len());
    buf.extend_from_slice(&rec.seq.to_le_bytes());
    buf.extend_from_slice(text.as_bytes());
    buf
}

/// Decode a [`TAG_DIT_CHANGE`] payload back into `(seq, ldif text)`.
pub fn decode_wal_payload(payload: &[u8]) -> Result<(u64, &str)> {
    if payload.len() < 8 {
        return Err(LdapError::new(
            ResultCode::Other,
            "short DIT wal record".to_string(),
        ));
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let text = std::str::from_utf8(&payload[8..])
        .map_err(|e| LdapError::new(ResultCode::Other, format!("non-UTF8 DIT wal record: {e}")))?;
    Ok((seq, text))
}

/// Attach a WAL to a DIT: every commit appends (and, per the WAL's fsync
/// policy, makes durable) one [`TAG_DIT_CHANGE`] frame before the commit
/// returns to the caller. Append failures surface through the WAL's error
/// sink — the commit itself stands (degraded durability, not an outage).
pub fn attach_wal(dit: &Arc<Dit>, wal: Arc<Wal>) {
    dit.observe(move |rec| {
        let _ = wal.append(TAG_DIT_CHANGE, &wal_payload(rec));
    });
}

/// Outcome of replaying collected DIT WAL records over a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DitReplay {
    /// Change records applied.
    pub applied: usize,
    /// Records skipped because the snapshot already covered them.
    pub skipped: usize,
    /// Records discarded past a sequence gap (a racing commit's frame was
    /// torn; everything after it is not part of the committed prefix).
    pub discarded: usize,
    /// Highest commit sequence now reflected in the DIT.
    pub max_seq: u64,
}

/// Apply collected `(seq, ldif)` WAL records over a DIT restored from a
/// snapshot at commit sequence `snap_seq`.
///
/// Commit observers run outside the store lock, so two racing commits may
/// have reached the log out of sequence order: records are sorted by
/// commit sequence first. Records the snapshot already covers are skipped;
/// application stops at the first *gap* in the sequence (the missing
/// commit's frame was torn mid-write, so later records may depend on state
/// that was never made durable). Afterwards the DIT's own commit counter is
/// fast-forwarded so new commits continue the original numbering.
pub fn apply_wal_records(
    dit: &Dit,
    mut records: Vec<(u64, String)>,
    snap_seq: u64,
) -> Result<DitReplay> {
    records.sort_by_key(|(seq, _)| *seq);
    let mut out = DitReplay {
        max_seq: snap_seq,
        ..DitReplay::default()
    };
    let mut expected = snap_seq + 1;
    for (i, (seq, text)) in records.iter().enumerate() {
        if *seq <= snap_seq {
            out.skipped += 1;
            continue;
        }
        if *seq != expected {
            out.discarded = records.len() - i;
            break;
        }
        for r in ldif::parse(text)? {
            apply(dit, r)?;
        }
        out.applied += 1;
        out.max_seq = *seq;
        expected += 1;
    }
    dit.set_seq(out.max_seq);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Generation-numbered snapshot + WAL rotation
// ---------------------------------------------------------------------------

/// Names and rotates the durable files of one deployment directory:
/// `snap-NNNNNN.ldif` snapshots and the matching `wal-NNNNNN.log` segments.
/// Recovery picks the newest snapshot that verifies (falling back one
/// generation on a torn footer) and replays every log segment over it;
/// checkpointing opens generation N+1 and prunes everything older than N.
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    pub fn new(dir: impl Into<PathBuf>) -> SnapshotStore {
        SnapshotStore { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn snapshot_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("snap-{generation:06}.ldif"))
    }

    pub fn wal_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("wal-{generation:06}.log"))
    }

    fn generations_of(&self, prefix: &str, suffix: &str) -> Vec<u64> {
        let mut out = Vec::new();
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for entry in rd.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(mid) = name
                    .strip_prefix(prefix)
                    .and_then(|r| r.strip_suffix(suffix))
                {
                    if let Ok(n) = mid.parse() {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Snapshot generations on disk, ascending.
    pub fn snapshot_generations(&self) -> Vec<u64> {
        self.generations_of("snap-", ".ldif")
    }

    /// WAL segment generations on disk, ascending.
    pub fn wal_generations(&self) -> Vec<u64> {
        self.generations_of("wal-", ".log")
    }

    /// The newest generation present in any form (0 when the directory is
    /// fresh).
    pub fn latest_generation(&self) -> u64 {
        self.snapshot_generations()
            .last()
            .copied()
            .unwrap_or(0)
            .max(self.wal_generations().last().copied().unwrap_or(0))
    }

    /// Write the snapshot for `generation` from a consistent export.
    pub fn write_snapshot(&self, entries: &[Entry], seq: u64, generation: u64) -> Result<()> {
        write_snapshot_file(entries, seq, &self.snapshot_path(generation))
    }

    /// Write the snapshot for `generation` straight off the DIT,
    /// streaming on the compact backing (no full export materialized);
    /// returns the commit sequence the snapshot reflects.
    pub fn write_snapshot_streamed(&self, dit: &Dit, generation: u64) -> Result<u64> {
        let path = self.snapshot_path(generation);
        if dit.is_compact() {
            return write_snapshot_stream(dit, &path);
        }
        let (entries, seq) = dit.export_with_seq();
        write_snapshot_file(&entries, seq, &path)?;
        Ok(seq)
    }

    /// Restore the newest snapshot that verifies into an empty DIT.
    /// Returns `(generation, snapshot seq, entries loaded)`; a snapshot
    /// with a torn or corrupt footer is skipped in favor of the previous
    /// generation (and the DIT is cleared of any partial load).
    ///
    /// Compact-backing DITs load through the streaming single-pass reader
    /// (parallel block parsing, bulk-mode insertion); the legacy backing
    /// keeps the materializing read-everything-then-add path as the E18
    /// ablation baseline. Either way a corrupt generation leaves the DIT
    /// cleared and the previous generation is tried.
    pub fn restore_latest(&self, dit: &Dit) -> Result<Option<(u64, u64, usize)>> {
        for generation in self.snapshot_generations().into_iter().rev() {
            let path = self.snapshot_path(generation);
            let loaded = if dit.is_compact() {
                load_snapshot_stream(dit, &path)
            } else {
                read_snapshot_file(&path, true)
                    .and_then(|(text, seq)| Ok((load_snapshot_text(dit, &text, &path)?, seq)))
            };
            match loaded {
                Ok((n, seq)) => return Ok(Some((generation, seq, n))),
                Err(_) => dit.clear(),
            }
        }
        Ok(None)
    }

    /// Remove snapshots and WAL segments older than `keep_from`.
    pub fn prune_below(&self, keep_from: u64) {
        for generation in self.snapshot_generations() {
            if generation < keep_from {
                let _ = std::fs::remove_file(self.snapshot_path(generation));
            }
        }
        for generation in self.wal_generations() {
            if generation < keep_from {
                let _ = std::fs::remove_file(self.wal_path(generation));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::figure2_tree;
    use crate::dn::Rdn;
    use crate::entry::Modification;
    use crate::wal::FsyncPolicy;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metacomm-backup-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = tmpdir("snap");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let path = dir.join("dit.ldif");
        snapshot(&dit, &path).unwrap();
        let restored = Dit::new();
        let n = restore_snapshot(&restored, &path).unwrap();
        assert_eq!(n, 9);
        assert_eq!(restored.export().len(), dit.export().len());
        for e in dit.export() {
            assert_eq!(restored.get(e.dn()).as_ref(), Some(&e));
        }
    }

    #[test]
    fn snapshot_footer_detects_corruption() {
        let dir = tmpdir("snapcrc");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let path = dir.join("dit.ldif");
        snapshot(&dit, &path).unwrap();
        // Corrupt one byte in the body: restore must refuse.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let restored = Dit::new();
        assert!(restore_snapshot(&restored, &path).is_err());
    }

    #[test]
    fn legacy_snapshot_without_footer_still_loads() {
        let dir = tmpdir("snaplegacy");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let path = dir.join("dit.ldif");
        std::fs::write(&path, ldif::to_ldif(&dit.export())).unwrap();
        let restored = Dit::new();
        assert_eq!(restore_snapshot(&restored, &path).unwrap(), 9);
    }

    #[test]
    fn legacy_snapshot_with_footer_lookalike_still_loads() {
        let dir = tmpdir("snapdecoy");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let path = dir.join("dit.ldif");
        // A footer-less legacy snapshot whose text contains the footer
        // marker — as a leading comment line and mid-line inside data —
        // with real records after it. Neither occurrence is the final
        // line, so neither is a footer: the file must load as legacy
        // instead of being rejected as failing checksum verification.
        let text = format!(
            "# crc32: cafebabe\n# see # crc32: deadbeef for details\n{}",
            ldif::to_ldif(&dit.export())
        );
        std::fs::write(&path, text).unwrap();
        let restored = Dit::new();
        assert_eq!(restore_snapshot(&restored, &path).unwrap(), 9);
    }

    #[test]
    fn journal_captures_and_replays_all_ops() {
        let dir = tmpdir("journal");
        let jpath = dir.join("changes.ldif");
        let dit = Dit::new();
        let _journal = Journal::attach(&dit, &jpath).unwrap();
        figure2_tree(&dit).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("telephoneNumber", "9123")])
            .unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
            .unwrap();
        let pat = Dn::parse("cn=Pat Smith,o=Marketing,o=Lucent").unwrap();
        dit.delete(&pat).unwrap();

        // Recover from the journal alone.
        let recovered = Dit::new();
        let applied = Journal::replay(&recovered, &jpath).unwrap();
        assert_eq!(applied, 9 + 3);
        assert!(recovered
            .get(&Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap())
            .is_some());
        assert!(recovered.get(&pat).is_none());
        assert_eq!(
            recovered
                .get(&Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap())
                .unwrap()
                .first("telephoneNumber"),
            Some("9123")
        );
    }

    #[test]
    fn torn_final_record_discarded() {
        let dir = tmpdir("torn");
        let jpath = dir.join("changes.ldif");
        let dit = Dit::new();
        let _journal = Journal::attach(&dit, &jpath).unwrap();
        figure2_tree(&dit).unwrap();
        // Simulate a crash mid-append: write half a record with no commit mark.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&jpath)
                .unwrap();
            write!(f, "dn: cn=Torn,o=Lucent\nchangetype: add\nobjectCl").unwrap();
        }
        let recovered = Dit::new();
        let applied = Journal::replay(&recovered, &jpath).unwrap();
        assert_eq!(applied, 9, "torn record must be discarded");
        assert!(recovered
            .get(&Dn::parse("cn=Torn,o=Lucent").unwrap())
            .is_none());
    }

    #[test]
    fn journal_write_failure_is_counted_and_alerted() {
        let dir = tmpdir("jfail");
        let jpath = dir.join("changes.ldif");
        let dit = Dit::new();
        let journal = Journal::attach(&dit, &jpath).unwrap();
        let alerts = Arc::new(AtomicU64::new(0));
        let a = alerts.clone();
        journal.set_error_sink(move |_| {
            a.fetch_add(1, Ordering::SeqCst);
        });
        // Swap the journal's file handle for a read-only one: appends fail.
        {
            let ro = std::fs::OpenOptions::new().read(true).open(&jpath).unwrap();
            *journal.file.lock() = ro;
        }
        figure2_tree(&dit).unwrap();
        assert_eq!(journal.write_errors(), 9, "every failed append is counted");
        assert_eq!(
            alerts.load(Ordering::SeqCst),
            9,
            "and surfaced via the sink"
        );
    }

    #[test]
    fn snapshot_plus_journal_recovery() {
        let dir = tmpdir("full");
        let spath = dir.join("snap.ldif");
        let jpath = dir.join("changes.ldif");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        snapshot(&dit, &spath).unwrap();
        // Post-snapshot updates go to the journal only.
        let _journal = Journal::attach(&dit, &jpath).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("roomNumber", "2B-401")])
            .unwrap();

        let recovered = Dit::new();
        let (s, j) = recover(&recovered, &spath, &jpath).unwrap();
        assert_eq!((s, j), (9, 1));
        let e = verify_entry(&recovered, "cn=John Doe,o=Marketing,o=Lucent").unwrap();
        assert_eq!(e.first("roomNumber"), Some("2B-401"));
    }

    #[test]
    fn recover_with_nothing_present_is_empty() {
        let dir = tmpdir("none");
        let dit = Dit::new();
        let (s, j) = recover(&dit, &dir.join("nope.ldif"), &dir.join("nada.ldif")).unwrap();
        assert_eq!((s, j), (0, 0));
        assert!(dit.is_empty());
    }

    fn collect_dit_records(path: &Path) -> Vec<(u64, String)> {
        let mut records = Vec::new();
        crate::wal::replay(path, |tag, payload| {
            assert_eq!(tag, TAG_DIT_CHANGE);
            let (seq, text) = decode_wal_payload(payload)?;
            records.push((seq, text.to_string()));
            Ok(())
        })
        .unwrap();
        records
    }

    #[test]
    fn wal_attach_replay_round_trip() {
        let dir = tmpdir("walrt");
        let path = dir.join("wal-000001.log");
        let dit = Dit::new();
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        attach_wal(&dit, wal);
        figure2_tree(&dit).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("telephoneNumber", "9123")])
            .unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
            .unwrap();
        dit.delete(&Dn::parse("cn=Pat Smith,o=Marketing,o=Lucent").unwrap())
            .unwrap();

        let recovered = Dit::new();
        let replay = apply_wal_records(&recovered, collect_dit_records(&path), 0).unwrap();
        assert_eq!(replay.applied, 12);
        assert_eq!(replay.discarded, 0);
        assert_eq!(replay.max_seq, 12);
        assert_eq!(recovered.seq(), dit.seq());
        assert_eq!(
            ldif::to_ldif(&recovered.export()),
            ldif::to_ldif(&dit.export()),
            "recovered export must be bit-for-bit equal"
        );
    }

    #[test]
    fn wal_replay_skips_records_covered_by_snapshot() {
        let dir = tmpdir("walskip");
        let path = dir.join("wal-000001.log");
        let dit = Dit::new();
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        attach_wal(&dit, wal);
        figure2_tree(&dit).unwrap(); // seq 1..=9 in the wal
        let (entries, snap_seq) = dit.export_with_seq();
        let store = SnapshotStore::new(&dir);
        store.write_snapshot(&entries, snap_seq, 1).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("roomNumber", "9Z")])
            .unwrap(); // seq 10

        let recovered = Dit::new();
        let (generation, seq, n) = store.restore_latest(&recovered).unwrap().unwrap();
        assert_eq!((generation, seq, n), (1, 9, 9));
        recovered.set_seq(seq);
        let replay = apply_wal_records(&recovered, collect_dit_records(&path), seq).unwrap();
        assert_eq!(replay.skipped, 9);
        assert_eq!(replay.applied, 1);
        assert_eq!(
            verify_entry(&recovered, "cn=John Doe,o=Marketing,o=Lucent")
                .unwrap()
                .first("roomNumber"),
            Some("9Z")
        );
    }

    #[test]
    fn wal_replay_stops_at_sequence_gap() {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let mut records = Vec::new();
        let capture: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let c = capture.clone();
            dit.observe(move |rec| {
                let payload = wal_payload(rec);
                let (seq, text) = decode_wal_payload(&payload).unwrap();
                c.lock().push((seq, text.to_string()));
            });
        }
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("roomNumber", "1")])
            .unwrap(); // seq 10
        dit.modify(&john, &[Modification::set("roomNumber", "2")])
            .unwrap(); // seq 11
        dit.modify(&john, &[Modification::set("roomNumber", "3")])
            .unwrap(); // seq 12
        records.extend(capture.lock().iter().cloned());
        // Simulate a torn frame for seq 11: drop it (later records survive
        // in the file but are not part of the committed prefix).
        records.retain(|(seq, _)| *seq != 11);

        // Rebuild a base dit equal to the figure2 tree.
        let recovered = Dit::new();
        figure2_tree(&recovered).unwrap();
        let replay = apply_wal_records(&recovered, records, 9).unwrap();
        assert_eq!(replay.applied, 1, "only seq 10 applies");
        assert_eq!(replay.discarded, 1, "seq 12 is past the gap");
        assert_eq!(replay.max_seq, 10);
        assert_eq!(
            verify_entry(&recovered, "cn=John Doe,o=Marketing,o=Lucent")
                .unwrap()
                .first("roomNumber"),
            Some("1")
        );
    }

    #[test]
    fn streamed_and_materialized_snapshot_files_are_byte_identical() {
        let dir = tmpdir("streambytes");
        let dit = Dit::new(); // compact backing
        figure2_tree(&dit).unwrap();
        // Force a value that needs base64 so both encoders hit that path.
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("description", " spaced ")])
            .unwrap();
        let streamed = dir.join("streamed.ldif");
        let materialized = dir.join("materialized.ldif");
        let seq = write_snapshot_stream(&dit, &streamed).unwrap();
        let (entries, seq2) = dit.export_with_seq();
        write_snapshot_file(&entries, seq2, &materialized).unwrap();
        assert_eq!(seq, seq2);
        assert_eq!(
            std::fs::read(&streamed).unwrap(),
            std::fs::read(&materialized).unwrap(),
            "the streaming writer must produce the exact legacy bytes"
        );
    }

    #[test]
    fn streaming_restore_matches_legacy_restore() {
        let dir = tmpdir("streamparity");
        let src = Dit::new();
        figure2_tree(&src).unwrap();
        let store = SnapshotStore::new(&dir);
        let (entries, seq) = src.export_with_seq();
        store.write_snapshot(&entries, seq, 1).unwrap();

        let compact = Dit::new();
        let legacy = Dit::with_schema_indexed_compact(
            Arc::new(crate::schema::Schema::permissive()),
            crate::dit::DEFAULT_INDEXED_ATTRS,
            false,
        );
        let a = store.restore_latest(&compact).unwrap().unwrap();
        let b = store.restore_latest(&legacy).unwrap().unwrap();
        assert_eq!(a, b);
        assert_eq!(compact.export(), legacy.export());
        assert_eq!(
            ldif::to_ldif(&compact.export()),
            ldif::to_ldif(&src.export())
        );
    }

    #[test]
    fn streaming_restore_detects_corruption_and_clears() {
        let dir = tmpdir("streamcrc");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let store = SnapshotStore::new(&dir);
        let seq = store.write_snapshot_streamed(&dit, 1).unwrap();
        assert_eq!(seq, 9);
        // Corrupt one body byte: the only generation fails, recovery finds
        // nothing, and the partially loaded DIT is cleared.
        let path = store.snapshot_path(1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let restored = Dit::new();
        assert!(store.restore_latest(&restored).unwrap().is_none());
        assert!(restored.is_empty());
    }

    #[test]
    fn streaming_restore_handles_interior_footer_lookalike() {
        // An entry value that base64-decodes is not at risk, but a raw
        // comment line matching the footer prefix mid-file must be treated
        // as content, not a footer. Hand-build such a snapshot with a
        // correct CRC over everything before the real footer.
        let dir = tmpdir("streamdecoy");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let (entries, seq) = dit.export_with_seq();
        let mut text = format!("{SEQ_PREFIX}{seq}\n");
        text.push_str("# crc32: deadbeef\n"); // interior lookalike comment
        text.push_str(&ldif::to_ldif(&entries));
        let crc = crc32(text.as_bytes());
        text.push_str(&format!("{CRC_PREFIX}{crc:08x}\n"));
        let store = SnapshotStore::new(&dir);
        std::fs::write(store.snapshot_path(1), &text).unwrap();
        let restored = Dit::new();
        let (generation, got_seq, n) = store.restore_latest(&restored).unwrap().unwrap();
        assert_eq!((generation, got_seq, n), (1, 9, 9));
        assert_eq!(restored.export(), dit.export());
    }

    #[test]
    fn snapshot_store_falls_back_on_torn_generation() {
        let dir = tmpdir("rotation");
        let store = SnapshotStore::new(&dir);
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let (entries, seq) = dit.export_with_seq();
        store.write_snapshot(&entries, seq, 1).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("roomNumber", "X")])
            .unwrap();
        let (entries, seq) = dit.export_with_seq();
        store.write_snapshot(&entries, seq, 2).unwrap();
        // Tear generation 2 (truncate mid-file): recovery must fall back.
        let snap2 = store.snapshot_path(2);
        let bytes = std::fs::read(&snap2).unwrap();
        std::fs::write(&snap2, &bytes[..bytes.len() / 2]).unwrap();
        let recovered = Dit::new();
        let (generation, snap_seq, n) = store.restore_latest(&recovered).unwrap().unwrap();
        assert_eq!(generation, 1, "torn generation 2 skipped");
        assert_eq!(snap_seq, 9);
        assert_eq!(n, 9);
        // Pruning below the latest keeps only generation 2's files.
        store.prune_below(2);
        assert_eq!(store.snapshot_generations(), vec![2]);
    }
}
