//! Durable snapshots and a change journal for the DIT.
//!
//! Paper §2: "replication and backups are used to handle system and media
//! failure". This module provides the backup half: an LDIF snapshot of the
//! whole DIT plus an append-only journal of LDIF change records written at
//! commit time (via the DIT's observer hook). Recovery loads the snapshot
//! and replays the journal; a torn final record (crash mid-write) is
//! detected and discarded.

use crate::dit::{ChangeOp, ChangeRecord, Dit};
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{LdapError, Result, ResultCode};
use crate::ldif;
use parking_lot::Mutex;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Marker line terminating each journal record; a record without it was
/// torn by a crash and is ignored at recovery.
const COMMIT_MARK: &str = "# commit";

/// Write a full LDIF snapshot of the DIT.
pub fn snapshot(dit: &Dit, path: &Path) -> Result<()> {
    let text = ldif::to_ldif(&dit.export());
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a snapshot into an empty DIT.
pub fn restore_snapshot(dit: &Dit, path: &Path) -> Result<usize> {
    let text = std::fs::read_to_string(path)?;
    let records = ldif::parse(&text)?;
    let mut n = 0;
    for r in records {
        match r {
            ldif::Record::Content(e) => {
                dit.add(e)?;
                n += 1;
            }
            other => {
                return Err(LdapError::new(
                    ResultCode::Other,
                    format!("snapshot contains a change record: {other:?}"),
                ))
            }
        }
    }
    Ok(n)
}

/// An append-only change journal attached to a DIT.
pub struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Open (or create) the journal and attach it to the DIT: every commit
    /// is appended and flushed before the commit returns to the caller.
    pub fn attach(dit: &Arc<Dit>, path: &Path) -> Result<Arc<Journal>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let journal = Arc::new(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        });
        let j = journal.clone();
        dit.observe(move |rec| j.append(rec));
        Ok(journal)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, rec: &ChangeRecord) {
        let ldif_rec = match &rec.op {
            ChangeOp::Add(e) => ldif::Record::Add(e.clone()),
            ChangeOp::Delete => ldif::Record::Delete(rec.dn.clone()),
            ChangeOp::Modify(mods) => ldif::Record::Modify(rec.dn.clone(), mods.clone()),
            ChangeOp::ModifyRdn {
                new_rdn,
                delete_old,
                new_superior,
            } => ldif::Record::ModRdn {
                dn: rec.dn.clone(),
                new_rdn: new_rdn.clone(),
                delete_old: *delete_old,
                new_superior: new_superior.clone(),
            },
        };
        let mut text = ldif::change_to_ldif(&ldif_rec);
        text.push_str(COMMIT_MARK);
        text.push('\n');
        let mut f = self.file.lock();
        // Best effort: a failed journal write must not poison the commit
        // (the paper's systems kept running when logging degraded).
        let _ = f.write_all(text.as_bytes());
        let _ = f.flush();
    }

    /// Replay a journal file into a DIT. Returns the number of applied
    /// change records; a torn final record (crash mid-append) is discarded.
    pub fn replay(dit: &Dit, path: &Path) -> Result<usize> {
        let text = std::fs::read_to_string(path)?;
        let sep = format!("{COMMIT_MARK}\n");
        // The file is a sequence of `<record><mark>` blocks; only the text
        // AFTER the last mark can be a torn record.
        let ends_clean = text.is_empty() || text.ends_with(&sep);
        let chunks: Vec<&str> = text.split(&sep).collect();
        let last = chunks.len().saturating_sub(1);
        let mut applied = 0;
        for (i, chunk) in chunks.iter().enumerate() {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            if i == last && !ends_clean {
                break; // torn tail: never followed by a commit mark
            }
            let records = ldif::parse(chunk)?;
            for r in records {
                apply(dit, r)?;
                applied += 1;
            }
        }
        Ok(applied)
    }
}

fn apply(dit: &Dit, r: ldif::Record) -> Result<()> {
    match r {
        ldif::Record::Content(e) | ldif::Record::Add(e) => dit.add(e),
        ldif::Record::Delete(dn) => dit.delete(&dn),
        ldif::Record::Modify(dn, mods) => dit.modify(&dn, &mods),
        ldif::Record::ModRdn {
            dn,
            new_rdn,
            delete_old,
            new_superior,
        } => dit.modify_rdn(&dn, &new_rdn, delete_old, new_superior.as_ref()),
    }
}

/// Full recovery: snapshot (if present) + journal replay (if present).
pub fn recover(dit: &Dit, snapshot_path: &Path, journal_path: &Path) -> Result<(usize, usize)> {
    let from_snapshot = if snapshot_path.exists() {
        restore_snapshot(dit, snapshot_path)?
    } else {
        0
    };
    let from_journal = if journal_path.exists() {
        Journal::replay(dit, journal_path)?
    } else {
        0
    };
    Ok((from_snapshot, from_journal))
}

/// Convenience used by recovery flows: does this DN exist after recovery?
pub fn verify_entry(dit: &Dit, dn: &str) -> Result<Entry> {
    let dn = Dn::parse(dn)?;
    dit.get(&dn).ok_or_else(|| LdapError::no_such_object(&dn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::figure2_tree;
    use crate::dn::Rdn;
    use crate::entry::Modification;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metacomm-backup-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = tmpdir("snap");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let path = dir.join("dit.ldif");
        snapshot(&dit, &path).unwrap();
        let restored = Dit::new();
        let n = restore_snapshot(&restored, &path).unwrap();
        assert_eq!(n, 9);
        assert_eq!(restored.export().len(), dit.export().len());
        for e in dit.export() {
            assert_eq!(restored.get(e.dn()).as_ref(), Some(&e));
        }
    }

    #[test]
    fn journal_captures_and_replays_all_ops() {
        let dir = tmpdir("journal");
        let jpath = dir.join("changes.ldif");
        let dit = Dit::new();
        let _journal = Journal::attach(&dit, &jpath).unwrap();
        figure2_tree(&dit).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("telephoneNumber", "9123")])
            .unwrap();
        dit.modify_rdn(&john, &Rdn::new("cn", "Jack Doe"), true, None)
            .unwrap();
        let pat = Dn::parse("cn=Pat Smith,o=Marketing,o=Lucent").unwrap();
        dit.delete(&pat).unwrap();

        // Recover from the journal alone.
        let recovered = Dit::new();
        let applied = Journal::replay(&recovered, &jpath).unwrap();
        assert_eq!(applied, 9 + 3);
        assert!(recovered
            .get(&Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap())
            .is_some());
        assert!(recovered.get(&pat).is_none());
        assert_eq!(
            recovered
                .get(&Dn::parse("cn=Jack Doe,o=Marketing,o=Lucent").unwrap())
                .unwrap()
                .first("telephoneNumber"),
            Some("9123")
        );
    }

    #[test]
    fn torn_final_record_discarded() {
        let dir = tmpdir("torn");
        let jpath = dir.join("changes.ldif");
        let dit = Dit::new();
        let _journal = Journal::attach(&dit, &jpath).unwrap();
        figure2_tree(&dit).unwrap();
        // Simulate a crash mid-append: write half a record with no commit mark.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&jpath)
                .unwrap();
            write!(f, "dn: cn=Torn,o=Lucent\nchangetype: add\nobjectCl").unwrap();
        }
        let recovered = Dit::new();
        let applied = Journal::replay(&recovered, &jpath).unwrap();
        assert_eq!(applied, 9, "torn record must be discarded");
        assert!(recovered
            .get(&Dn::parse("cn=Torn,o=Lucent").unwrap())
            .is_none());
    }

    #[test]
    fn snapshot_plus_journal_recovery() {
        let dir = tmpdir("full");
        let spath = dir.join("snap.ldif");
        let jpath = dir.join("changes.ldif");
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        snapshot(&dit, &spath).unwrap();
        // Post-snapshot updates go to the journal only.
        let _journal = Journal::attach(&dit, &jpath).unwrap();
        let john = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        dit.modify(&john, &[Modification::set("roomNumber", "2B-401")])
            .unwrap();

        let recovered = Dit::new();
        let (s, j) = recover(&recovered, &spath, &jpath).unwrap();
        assert_eq!((s, j), (9, 1));
        let e = verify_entry(&recovered, "cn=John Doe,o=Marketing,o=Lucent").unwrap();
        assert_eq!(e.first("roomNumber"), Some("2B-401"));
    }

    #[test]
    fn recover_with_nothing_present_is_empty() {
        let dir = tmpdir("none");
        let dit = Dit::new();
        let (s, j) = recover(&dit, &dir.join("nope.ldif"), &dir.join("nada.ldif")).unwrap();
        assert_eq!((s, j), (0, 0));
        assert!(dit.is_empty());
    }
}
