//! A binary write-ahead log with group commit.
//!
//! Paper §2: "replication and backups are used to handle system and media
//! failure". The LDIF journal in [`crate::backup`] gave the DIT a readable
//! change log; this module is the production-shaped half: records are
//! length-prefixed and CRC-framed so a crash mid-write tears at a record
//! boundary, and an fsync batcher coalesces concurrent commits so the
//! pipelined update path keeps its throughput while every acknowledged
//! commit is durable.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [tag: u8] [payload: len-1 bytes]
//! ```
//!
//! `len` counts the tag byte plus the payload; `crc32` (IEEE) covers the
//! same bytes. Replay stops at the first frame that is short, zero-length,
//! absurdly long, or fails its checksum — everything before it is the
//! *committed prefix*, everything after is discarded as torn.
//!
//! ## Group commit
//!
//! [`FsyncPolicy::Group`] elects a *leader* among concurrent committers:
//! appenders write their frame under the file lock (cheap — page cache),
//! then wait for the log to be durable past their own frame. The first
//! waiter to find no fsync in flight becomes the leader, syncs once, and
//! wakes everyone whose frame that sync covered. While a sync is in flight,
//! later appenders keep writing; the next leader's single fsync covers the
//! whole batch. One fsync per *batch* instead of one per commit — the
//! classical group-commit protocol.

use crate::error::Result;
use parking_lot::{Condvar, Mutex};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frames longer than this are treated as corruption at replay.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// When (and how) appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// One fsync per append, under the write lock — the naive durable
    /// baseline every textbook warns about.
    Always,
    /// Leader-elected batch fsync: every append is durable before it
    /// returns, but concurrent commits share one fsync (see module docs).
    #[default]
    Group,
    /// Never fsync: appended records survive a process crash (the OS holds
    /// them) but not a machine crash. The ablation arm for benchmarks.
    Never,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Group => write!(f, "group"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Counters the monitor mirrors into `cn=monitor` (see the core crate).
#[derive(Debug, Default)]
pub struct WalStats {
    /// Frames appended.
    pub appends: AtomicU64,
    /// Bytes appended (frames, including headers).
    pub bytes: AtomicU64,
    /// fsync calls actually issued. `appends / fsyncs` is the group-commit
    /// coalescing factor.
    pub fsyncs: AtomicU64,
    /// Append or fsync failures (degraded durability, surfaced via the
    /// error sink).
    pub write_errors: AtomicU64,
}

struct WalFile {
    f: File,
    /// Logical bytes appended since open (durability targets).
    written: u64,
}

struct SyncState {
    /// Everything up to this write offset is known durable.
    durable: u64,
    /// A leader's fsync is in flight.
    in_flight: bool,
}

type ErrorSink = Box<dyn Fn(&str) + Send + Sync>;

/// An append-only write-ahead log. Cheap to share (`Arc`); every public
/// method takes `&self`.
pub struct Wal {
    path: PathBuf,
    policy: FsyncPolicy,
    file: Mutex<WalFile>,
    /// Second handle to the same descriptor so the leader's fsync does not
    /// block followers' appends.
    sync_file: File,
    sync: Mutex<SyncState>,
    sync_cv: Condvar,
    stats: Arc<WalStats>,
    on_error: Mutex<Option<ErrorSink>>,
}

impl Wal {
    /// Open (or create) the log at `path`, appending after any committed
    /// prefix already present.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<Arc<Wal>> {
        Wal::open_with_stats(path, policy, Arc::new(WalStats::default()))
    }

    /// Like [`Wal::open`], but accounting into an existing [`WalStats`] —
    /// used by segment rotation so counters stay cumulative across the
    /// deployment's successive log files.
    pub fn open_with_stats(
        path: &Path,
        policy: FsyncPolicy,
        stats: Arc<WalStats>,
    ) -> Result<Arc<Wal>> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let len = f.seek(SeekFrom::End(0))?;
        let sync_file = f.try_clone()?;
        Ok(Arc::new(Wal {
            path: path.to_path_buf(),
            policy,
            file: Mutex::new(WalFile { f, written: len }),
            sync_file,
            sync: Mutex::new(SyncState {
                durable: len,
                in_flight: false,
            }),
            sync_cv: Condvar::new(),
            stats,
            on_error: Mutex::new(None),
        }))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    pub fn stats(&self) -> &Arc<WalStats> {
        &self.stats
    }

    /// Bytes appended since open (close to the file size; exposed as a
    /// gauge).
    pub fn len_bytes(&self) -> u64 {
        self.file.lock().written
    }

    /// Install the write-failure sink (§4.4 log-and-alert). At most one;
    /// later calls replace it.
    pub fn set_error_sink(&self, f: impl Fn(&str) + Send + Sync + 'static) {
        *self.on_error.lock() = Some(Box::new(f));
    }

    /// Count a write failure and alert through the sink. Never called with
    /// the file lock held: the sink may log through the directory, whose
    /// synchronous commit observer appends to this same WAL on this same
    /// thread. For the same reason a thread-local guard suppresses the
    /// nested alert when that observer append fails too — the failure is
    /// still counted, but the sink is not re-entered (which would recurse
    /// until the disk came back, or deadlock on the sink lock).
    fn report_error(&self, what: &str, e: &std::io::Error) {
        thread_local! {
            static IN_SINK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
        }
        self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
        if IN_SINK.with(|f| f.replace(true)) {
            return;
        }
        if let Some(sink) = self.on_error.lock().as_ref() {
            sink(&format!(
                "wal {what} failed on {}: {e}",
                self.path.display()
            ));
        }
        IN_SINK.with(|f| f.set(false));
    }

    /// Append one record. When this returns `Ok` under [`FsyncPolicy::Always`]
    /// or [`FsyncPolicy::Group`], the record is on stable storage.
    pub fn append(&self, tag: u8, payload: &[u8]) -> Result<()> {
        self.append_inner(tag, payload, true)
    }

    /// Append one record without waiting for durability under
    /// [`FsyncPolicy::Group`] — the async half of group commit. The caller
    /// must reach a [`Wal::sync`] barrier before acknowledging whatever the
    /// record represents; until then the record is in the page cache only.
    /// ([`FsyncPolicy::Always`] still syncs inline; this flag only moves
    /// the *wait*, never weakens the policy.)
    pub fn append_nowait(&self, tag: u8, payload: &[u8]) -> Result<()> {
        self.append_inner(tag, payload, false)
    }

    fn append_inner(&self, tag: u8, payload: &[u8], wait: bool) -> Result<()> {
        let len = (payload.len() + 1) as u32;
        let mut frame = Vec::with_capacity(9 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        let mut body = Vec::with_capacity(payload.len() + 1);
        body.push(tag);
        body.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);

        // Errors are reported only after the file lock is dropped: the
        // error sink may append to this WAL from the same thread (see
        // `report_error`), and the lock is not re-entrant.
        let outcome: std::result::Result<u64, (&'static str, std::io::Error)> = {
            let mut g = self.file.lock();
            match g.f.write_all(&frame) {
                Err(e) => Err(("append", e)),
                Ok(()) => {
                    if self.policy == FsyncPolicy::Always {
                        match g.f.sync_data() {
                            Err(e) => Err(("fsync", e)),
                            Ok(()) => {
                                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                                g.written += frame.len() as u64;
                                Ok(g.written)
                            }
                        }
                    } else {
                        g.written += frame.len() as u64;
                        Ok(g.written)
                    }
                }
            }
        };
        let target = match outcome {
            Ok(target) => target,
            Err((what, e)) => {
                self.report_error(what, &e);
                return Err(e.into());
            }
        };
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        match self.policy {
            FsyncPolicy::Always | FsyncPolicy::Never => Ok(()),
            FsyncPolicy::Group if wait => self.ensure_durable(target),
            FsyncPolicy::Group => Ok(()),
        }
    }

    /// Block until the log is durable at least through `target` (group
    /// commit: the first waiter with no sync in flight leads).
    fn ensure_durable(&self, target: u64) -> Result<()> {
        let mut st = self.sync.lock();
        loop {
            if st.durable >= target {
                return Ok(());
            }
            if st.in_flight {
                self.sync_cv.wait(&mut st);
                continue;
            }
            st.in_flight = true;
            drop(st);
            // Brief leader pause before the sync (MySQL's
            // binlog_group_commit_sync_delay, here just scheduler yields):
            // on a loaded box this lets runnable committers finish their
            // append and join this batch; on an idle one it costs ~nothing.
            std::thread::yield_now();
            std::thread::yield_now();
            // Everything written before this read is in the page cache, so
            // one sync covers the whole batch — including followers that
            // appended while the previous leader was syncing.
            let upto = self.file.lock().written;
            let res = self.sync_file.sync_data();
            st = self.sync.lock();
            st.in_flight = false;
            match res {
                Ok(()) => {
                    self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                    st.durable = st.durable.max(upto);
                    self.sync_cv.notify_all();
                }
                Err(e) => {
                    self.sync_cv.notify_all();
                    drop(st);
                    self.report_error("fsync", &e);
                    return Err(e.into());
                }
            }
        }
    }

    /// Force everything appended so far to stable storage (used at
    /// checkpoint boundaries regardless of policy).
    pub fn sync(&self) -> Result<()> {
        let upto = self.file.lock().written;
        match self.policy {
            FsyncPolicy::Group => self.ensure_durable(upto),
            _ => {
                self.sync_file
                    .sync_data()
                    .inspect_err(|e| self.report_error("fsync", e))?;
                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }
}

/// Summary of one [`replay`] pass.
#[derive(Debug, Clone, Default)]
pub struct ReplaySummary {
    /// Complete, checksum-valid frames delivered to the callback.
    pub records: usize,
    /// Bytes consumed by those frames.
    pub bytes: u64,
    /// A torn or corrupt frame stopped the scan before end-of-file.
    pub torn: bool,
}

/// Scan a log file, delivering every frame of the committed prefix to
/// `visit(tag, payload)`. Stops (without error) at the first torn or
/// corrupt frame; a callback error aborts the scan and propagates.
pub fn replay(
    path: &Path,
    mut visit: impl FnMut(u8, &[u8]) -> Result<()>,
) -> Result<ReplaySummary> {
    let mut summary = ReplaySummary::default();
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(summary),
        Err(e) => return Err(e.into()),
    };
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    let mut at = 0usize;
    while at + 8 <= data.len() {
        let len = u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(data[at + 4..at + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME {
            summary.torn = true;
            return Ok(summary);
        }
        let (start, end) = (at + 8, at + 8 + len as usize);
        if end > data.len() {
            summary.torn = true; // short final frame: crash mid-append
            return Ok(summary);
        }
        let body = &data[start..end];
        if crc32(body) != crc {
            summary.torn = true;
            return Ok(summary);
        }
        visit(body[0], &body[1..])?;
        summary.records += 1;
        summary.bytes += 8 + len as u64;
        at = end;
    }
    if at != data.len() {
        summary.torn = true; // trailing partial header
    }
    Ok(summary)
}

/// Incremental IEEE CRC-32 (table-driven, no external dependency): feed
/// chunks with [`Crc32::update`] and read the digest with
/// [`Crc32::finish`]. The streaming snapshot writer/reader in
/// [`crate::backup`] checksums files it never holds in memory at once.
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let table = crc_table();
        let mut c = self.state;
        for &b in bytes {
            c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// IEEE CRC-32 over `bytes` in one call. Also used by snapshot footers in
/// [`crate::backup`].
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metacomm-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn collect(path: &Path) -> (Vec<(u8, Vec<u8>)>, ReplaySummary) {
        let mut out = Vec::new();
        let s = replay(path, |tag, payload| {
            out.push((tag, payload.to_vec()));
            Ok(())
        })
        .unwrap();
        (out, s)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let wal = Wal::open(&path, FsyncPolicy::Group).unwrap();
        wal.append(1, b"first").unwrap();
        wal.append(2, b"").unwrap();
        wal.append(7, b"a longer record with some bytes in it")
            .unwrap();
        let (records, s) = collect(&path);
        assert_eq!(s.records, 3);
        assert!(!s.torn);
        assert_eq!(records[0], (1, b"first".to_vec()));
        assert_eq!(records[1], (2, Vec::new()));
        assert_eq!(records[2].0, 7);
        assert_eq!(wal.stats().appends.load(Ordering::Relaxed), 3);
        assert!(wal.stats().fsyncs.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn reopen_appends_after_existing_prefix() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal.log");
        {
            let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
            wal.append(1, b"one").unwrap();
        }
        {
            let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
            wal.append(1, b"two").unwrap();
        }
        let (records, s) = collect(&path);
        assert_eq!(s.records, 2);
        assert!(!s.torn);
        assert_eq!(records[1].1, b"two");
    }

    #[test]
    fn truncated_tail_yields_committed_prefix() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for i in 0..10u8 {
            wal.append(i, &[i; 16]).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Every possible truncation point recovers a prefix, never errors.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (records, s) = collect(&path);
            assert!(records.len() <= 10);
            assert_eq!(s.torn, cut % 25 != 0, "cut at {cut}");
            for (i, (tag, payload)) in records.iter().enumerate() {
                assert_eq!(*tag, i as u8);
                assert_eq!(payload, &[i as u8; 16]);
            }
        }
    }

    #[test]
    fn corrupt_byte_stops_replay_at_the_frame() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for i in 0..5u8 {
            wal.append(i, &[i; 8]).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Flip one payload byte inside the third frame (frame = 8 + 9 bytes).
        let mut bad = full;
        bad[2 * 17 + 9] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let (records, s) = collect(&path);
        assert_eq!(records.len(), 2, "replay stops before the corrupt frame");
        assert!(s.torn);
    }

    #[test]
    fn group_commit_coalesces_concurrent_appends() {
        let dir = tmpdir("group");
        let path = dir.join("wal.log");
        let wal = Wal::open(&path, FsyncPolicy::Group).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let w = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..50u8 {
                        w.append(t as u8, &[i; 32]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let appends = wal.stats().appends.load(Ordering::Relaxed);
        let fsyncs = wal.stats().fsyncs.load(Ordering::Relaxed);
        assert_eq!(appends, 400);
        assert!(fsyncs <= appends, "fsyncs {fsyncs} must not exceed appends");
        let (records, s) = collect(&path);
        assert_eq!(records.len(), 400);
        assert!(!s.torn);
    }

    #[test]
    fn error_sink_fires_on_append_failure() {
        let dir = tmpdir("sink");
        let path = dir.join("wal.log");
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        wal.set_error_sink(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        wal.append(1, b"fine").unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        // Sabotage the descriptor: replace the open file with a directory
        // is not portable; instead check the counter wiring directly.
        wal.report_error("append", &std::io::Error::other("disk gone"));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(wal.stats().write_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn error_sink_may_reenter_the_wal_without_deadlock_or_recursion() {
        let dir = tmpdir("reenter");
        let path = dir.join("wal.log");
        let wal = Wal::open(&path, FsyncPolicy::Group).unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        let (h, w) = (hits.clone(), wal.clone());
        wal.set_error_sink(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
            // The production sink logs through the directory, whose commit
            // observer appends back into this same WAL on this same thread.
            w.append(9, b"error log entry").unwrap();
            // And if that nested append had failed, reporting it must not
            // re-enter this sink (unbounded recursion on a dead disk).
            w.report_error("append", &std::io::Error::other("still dead"));
        });
        wal.report_error("fsync", &std::io::Error::other("disk gone"));
        assert_eq!(hits.load(Ordering::SeqCst), 1, "sink ran once, no re-entry");
        assert_eq!(
            wal.stats().write_errors.load(Ordering::Relaxed),
            2,
            "both failures counted"
        );
        // The sink's directory write reached the log.
        let (records, s) = collect(&path);
        assert_eq!(records.len(), 1);
        assert!(!s.torn);
        // A later failure alerts again: the guard is per-invocation, not
        // a one-shot latch.
        wal.report_error("fsync", &std::io::Error::other("disk gone again"));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
