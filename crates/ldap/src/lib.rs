//! # ldap — directory substrate for the MetaComm reproduction
//!
//! A from-scratch LDAP directory implementation providing everything the
//! MetaComm meta-directory (Freire et al., ICDE 2000) assumes of its
//! directory server:
//!
//! - the X.500 data model: [`dn::Dn`]s, multi-valued attributes,
//!   [`entry::Entry`]s arranged in a [`dit::Dit`] tree;
//! - a [`schema::Schema`] with structural and auxiliary object classes —
//!   including the auxiliary-class restrictions the paper's integrated
//!   schema design works around;
//! - RFC 2254 search [`filter::Filter`]s;
//! - the LDAP update model: atomic single-entry add/delete/modify/modifyRDN,
//!   **no multi-entry transactions** (the weakness MetaComm's Update Manager
//!   is built to survive);
//! - LDIF import/export ([`ldif`]);
//! - an LDAPv3 wire subset: BER codec ([`ber`]), message layer ([`proto`]),
//!   a threaded TCP [`server`] and [`client`];
//! - lazy multi-master [`repl`]ication with the relaxed write-write
//!   consistency the paper describes directories as having.
//!
//! The [`directory::Directory`] trait unifies the in-process DIT, the TCP
//! client, and (in the `ltap` crate) the trigger gateway.

pub mod attr;
pub mod backup;
pub mod ber;
pub mod client;
pub mod directory;
pub mod dit;
pub mod dn;
pub mod entry;
pub mod error;
#[cfg(target_os = "linux")]
pub mod event;
pub mod filter;
pub mod ldif;
pub mod proto;
pub mod repl;
pub mod schema;
pub mod server;
pub mod shard;
pub mod wal;

pub use attr::{AttrName, Attribute};
pub use directory::Directory;
pub use dit::{ChangeOp, ChangeRecord, Dit, Scope};
pub use dn::{Ava, Dn, Rdn};
pub use entry::{Entry, ModOp, Modification};
pub use error::{LdapError, Result, ResultCode};
pub use filter::Filter;
pub use schema::{AttributeType, ClassKind, ObjectClass, Schema, SchemaRef, Syntax};
pub use shard::{ShardMap, ShardMetrics, ShardRouter};
pub use wal::{FsyncPolicy, Wal};
