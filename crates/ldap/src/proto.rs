//! LDAPv3 message layer (RFC 2251 subset): protocol-op types, BER
//! encode/decode, and stream framing.
//!
//! Covered ops: Bind, Unbind, Search (+ entry/done), Modify, Add, Delete,
//! ModifyDN, Compare. Controls, SASL, referrals and extended ops are out of
//! scope — MetaComm does not use them.

use crate::ber::{self, Reader, Writer};
use crate::dit::Scope;
use crate::dn::{Dn, Rdn};
use crate::entry::{Entry, ModOp, Modification};
use crate::error::{LdapError, Result, ResultCode};
use crate::filter::Filter;
use std::io::Read;

/// An LDAPMessage: id + protocol op.
#[derive(Debug, Clone, PartialEq)]
pub struct LdapMessage {
    pub id: i64,
    pub op: ProtocolOp,
}

/// The LDAPResult wire structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdapResult {
    pub code: ResultCode,
    pub matched_dn: String,
    pub message: String,
}

impl LdapResult {
    pub fn success() -> LdapResult {
        LdapResult {
            code: ResultCode::Success,
            matched_dn: String::new(),
            message: String::new(),
        }
    }

    pub fn error(e: &LdapError) -> LdapResult {
        LdapResult {
            code: e.code,
            matched_dn: String::new(),
            message: e.message.clone(),
        }
    }

    /// Convert to `Err` unless the code is non-error.
    pub fn into_result(self) -> Result<LdapResult> {
        if self.code.is_non_error() {
            Ok(self)
        } else {
            Err(LdapError::new(self.code, self.message))
        }
    }
}

/// Protocol operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolOp {
    BindRequest {
        version: i64,
        dn: String,
        password: String,
    },
    BindResponse(LdapResult),
    UnbindRequest,
    SearchRequest {
        base: String,
        scope: Scope,
        size_limit: i64,
        filter: Filter,
        attrs: Vec<String>,
    },
    SearchResultEntry {
        dn: String,
        attrs: Vec<(String, Vec<String>)>,
    },
    SearchResultDone(LdapResult),
    ModifyRequest {
        dn: String,
        mods: Vec<Modification>,
    },
    ModifyResponse(LdapResult),
    AddRequest {
        dn: String,
        attrs: Vec<(String, Vec<String>)>,
    },
    AddResponse(LdapResult),
    DelRequest {
        dn: String,
    },
    DelResponse(LdapResult),
    ModifyDnRequest {
        dn: String,
        new_rdn: String,
        delete_old: bool,
        new_superior: Option<String>,
    },
    ModifyDnResponse(LdapResult),
    CompareRequest {
        dn: String,
        attr: String,
        value: String,
    },
    CompareResponse(LdapResult),
    /// Server-initiated ExtendedResponse — only the Notice of Disconnection
    /// (RFC 2251 §4.4.1) is produced; `name` carries the response OID.
    ExtendedResponse {
        result: LdapResult,
        name: Option<String>,
    },
}

// Application tags (RFC 2251 §4).
const OP_BIND_REQ: u8 = 0;
const OP_BIND_RESP: u8 = 1;
const OP_UNBIND: u8 = 2;
const OP_SEARCH_REQ: u8 = 3;
const OP_SEARCH_ENTRY: u8 = 4;
const OP_SEARCH_DONE: u8 = 5;
const OP_MODIFY_REQ: u8 = 6;
const OP_MODIFY_RESP: u8 = 7;
const OP_ADD_REQ: u8 = 8;
const OP_ADD_RESP: u8 = 9;
const OP_DEL_REQ: u8 = 10;
const OP_DEL_RESP: u8 = 11;
const OP_MODDN_REQ: u8 = 12;
const OP_MODDN_RESP: u8 = 13;
const OP_COMPARE_REQ: u8 = 14;
const OP_COMPARE_RESP: u8 = 15;
const OP_EXTENDED_RESP: u8 = 24;

/// The responseName of the unsolicited Notice of Disconnection.
pub const NOTICE_OF_DISCONNECTION_OID: &str = "1.3.6.1.4.1.1466.20036";

/// Build the unsolicited Notice of Disconnection (message ID 0) the server
/// sends before dropping a misbehaving connection.
pub fn notice_of_disconnection(code: ResultCode, message: impl Into<String>) -> LdapMessage {
    LdapMessage {
        id: 0,
        op: ProtocolOp::ExtendedResponse {
            result: LdapResult {
                code,
                matched_dn: String::new(),
                message: message.into(),
            },
            name: Some(NOTICE_OF_DISCONNECTION_OID.to_string()),
        },
    }
}

impl LdapMessage {
    /// Encode to the wire form (a complete BER TLV).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encode appending to `out` — lets a connection reuse one buffer for
    /// many messages instead of allocating per message.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::wrap(std::mem::take(out));
        w.sequence(|w| {
            w.integer(self.id);
            encode_op(w, &self.op);
        });
        *out = w.into_bytes();
    }

    /// Decode one message from a complete frame.
    pub fn decode(frame: &[u8]) -> Result<LdapMessage> {
        let mut r = Reader::new(frame);
        let mut seq = r.sequence()?;
        let id = seq.integer()?;
        let op = decode_op(&mut seq)?;
        Ok(LdapMessage { id, op })
    }
}

fn encode_result(w: &mut Writer, tag: u8, res: &LdapResult) {
    w.constructed(ber::app(tag), |w| {
        w.enumerated(i64::from(res.code.code()));
        w.str(&res.matched_dn);
        w.str(&res.message);
    });
}

fn encode_op(w: &mut Writer, op: &ProtocolOp) {
    match op {
        ProtocolOp::BindRequest {
            version,
            dn,
            password,
        } => w.constructed(ber::app(OP_BIND_REQ), |w| {
            w.integer(*version);
            w.str(dn);
            // simple auth: context primitive 0
            w.octet_string_tagged(ber::ctx_prim(0), password.as_bytes());
        }),
        ProtocolOp::BindResponse(r) => encode_result(w, OP_BIND_RESP, r),
        ProtocolOp::UnbindRequest => {
            w.tlv(ber::app_prim(OP_UNBIND), &[]);
        }
        ProtocolOp::SearchRequest {
            base,
            scope,
            size_limit,
            filter,
            attrs,
        } => w.constructed(ber::app(OP_SEARCH_REQ), |w| {
            w.str(base);
            w.enumerated(i64::from(scope.code()));
            w.enumerated(0); // derefAliases: never
            w.integer(*size_limit);
            w.integer(0); // timeLimit
            w.boolean(false); // typesOnly
            encode_filter(w, filter);
            w.sequence(|w| {
                for a in attrs {
                    w.str(a);
                }
            });
        }),
        ProtocolOp::SearchResultEntry { dn, attrs } => {
            w.constructed(ber::app(OP_SEARCH_ENTRY), |w| {
                w.str(dn);
                w.sequence(|w| {
                    for (name, values) in attrs {
                        w.sequence(|w| {
                            w.str(name);
                            w.set(|w| {
                                for v in values {
                                    w.str(v);
                                }
                            });
                        });
                    }
                });
            })
        }
        ProtocolOp::SearchResultDone(r) => encode_result(w, OP_SEARCH_DONE, r),
        ProtocolOp::ModifyRequest { dn, mods } => w.constructed(ber::app(OP_MODIFY_REQ), |w| {
            w.str(dn);
            w.sequence(|w| {
                for m in mods {
                    w.sequence(|w| {
                        w.enumerated(match m.op {
                            ModOp::Add => 0,
                            ModOp::Delete => 1,
                            ModOp::Replace => 2,
                        });
                        w.sequence(|w| {
                            w.str(m.attr.as_str());
                            w.set(|w| {
                                for v in &m.values {
                                    w.str(v);
                                }
                            });
                        });
                    });
                }
            });
        }),
        ProtocolOp::ModifyResponse(r) => encode_result(w, OP_MODIFY_RESP, r),
        ProtocolOp::AddRequest { dn, attrs } => w.constructed(ber::app(OP_ADD_REQ), |w| {
            w.str(dn);
            w.sequence(|w| {
                for (name, values) in attrs {
                    w.sequence(|w| {
                        w.str(name);
                        w.set(|w| {
                            for v in values {
                                w.str(v);
                            }
                        });
                    });
                }
            });
        }),
        ProtocolOp::AddResponse(r) => encode_result(w, OP_ADD_RESP, r),
        ProtocolOp::DelRequest { dn } => {
            w.octet_string_tagged(ber::app_prim(OP_DEL_REQ), dn.as_bytes());
        }
        ProtocolOp::DelResponse(r) => encode_result(w, OP_DEL_RESP, r),
        ProtocolOp::ModifyDnRequest {
            dn,
            new_rdn,
            delete_old,
            new_superior,
        } => w.constructed(ber::app(OP_MODDN_REQ), |w| {
            w.str(dn);
            w.str(new_rdn);
            w.boolean(*delete_old);
            if let Some(sup) = new_superior {
                w.octet_string_tagged(ber::ctx_prim(0), sup.as_bytes());
            }
        }),
        ProtocolOp::ModifyDnResponse(r) => encode_result(w, OP_MODDN_RESP, r),
        ProtocolOp::CompareRequest { dn, attr, value } => {
            w.constructed(ber::app(OP_COMPARE_REQ), |w| {
                w.str(dn);
                w.sequence(|w| {
                    w.str(attr);
                    w.str(value);
                });
            })
        }
        ProtocolOp::CompareResponse(r) => encode_result(w, OP_COMPARE_RESP, r),
        ProtocolOp::ExtendedResponse { result, name } => {
            w.constructed(ber::app(OP_EXTENDED_RESP), |w| {
                w.enumerated(i64::from(result.code.code()));
                w.str(&result.matched_dn);
                w.str(&result.message);
                if let Some(oid) = name {
                    w.octet_string_tagged(ber::ctx_prim(10), oid.as_bytes());
                }
            })
        }
    }
}

/// Encode a SearchResultEntry message straight from an [`Entry`], appending
/// to `out` — the streaming-search hot path. Skips the `entry_to_wire`
/// DN/attribute clones entirely.
pub fn encode_search_entry_into(out: &mut Vec<u8>, id: i64, e: &Entry) {
    let mut w = Writer::wrap(std::mem::take(out));
    w.sequence(|w| {
        w.integer(id);
        w.constructed(ber::app(OP_SEARCH_ENTRY), |w| {
            w.str_display(e.dn());
            w.sequence(|w| {
                for a in e.attributes() {
                    w.sequence(|w| {
                        w.str(a.name.as_str());
                        w.set(|w| {
                            for v in &a.values {
                                w.str(v);
                            }
                        });
                    });
                }
            });
        });
    });
    *out = w.into_bytes();
}

fn decode_result(body: &[u8]) -> Result<LdapResult> {
    let mut r = Reader::new(body);
    let code = ResultCode::from_code(r.enumerated()? as u32);
    let matched_dn = r.string()?;
    let message = r.string()?;
    Ok(LdapResult {
        code,
        matched_dn,
        message,
    })
}

fn decode_partial_attrs(r: &mut Reader) -> Result<Vec<(String, Vec<String>)>> {
    let mut attrs = Vec::new();
    let mut list = r.sequence()?;
    while !list.is_empty() {
        let mut item = list.sequence()?;
        let name = item.string()?;
        let mut vals = item.sub(ber::TAG_SET)?;
        let mut values = Vec::new();
        while !vals.is_empty() {
            values.push(vals.string()?);
        }
        attrs.push((name, values));
    }
    Ok(attrs)
}

fn decode_op(r: &mut Reader) -> Result<ProtocolOp> {
    let (tag, body) = r.tlv()?;
    let mut b = Reader::new(body);
    let app_tag = tag & 0x1F;
    match (tag & 0xE0, app_tag) {
        (0x60, OP_BIND_REQ) => {
            let version = b.integer()?;
            let dn = b.string()?;
            let password = match b.peek_tag() {
                Some(t) if t == ber::ctx_prim(0) => String::from_utf8(b.expect(t)?.to_vec())
                    .map_err(|_| LdapError::protocol("non-UTF-8 password"))?,
                _ => String::new(),
            };
            Ok(ProtocolOp::BindRequest {
                version,
                dn,
                password,
            })
        }
        (0x60, OP_BIND_RESP) => Ok(ProtocolOp::BindResponse(decode_result(body)?)),
        (0x40, OP_UNBIND) | (0x60, OP_UNBIND) => Ok(ProtocolOp::UnbindRequest),
        (0x60, OP_SEARCH_REQ) => {
            let base = b.string()?;
            let scope = Scope::from_code(b.enumerated()? as u32)?;
            let _deref = b.enumerated()?;
            let size_limit = b.integer()?;
            let _time_limit = b.integer()?;
            let _types_only = b.boolean()?;
            let filter = decode_filter(&mut b)?;
            let mut attr_list = b.sequence()?;
            let mut attrs = Vec::new();
            while !attr_list.is_empty() {
                attrs.push(attr_list.string()?);
            }
            Ok(ProtocolOp::SearchRequest {
                base,
                scope,
                size_limit,
                filter,
                attrs,
            })
        }
        (0x60, OP_SEARCH_ENTRY) => {
            let dn = b.string()?;
            let attrs = decode_partial_attrs(&mut b)?;
            Ok(ProtocolOp::SearchResultEntry { dn, attrs })
        }
        (0x60, OP_SEARCH_DONE) => Ok(ProtocolOp::SearchResultDone(decode_result(body)?)),
        (0x60, OP_MODIFY_REQ) => {
            let dn = b.string()?;
            let mut list = b.sequence()?;
            let mut mods = Vec::new();
            while !list.is_empty() {
                let mut item = list.sequence()?;
                let op = match item.enumerated()? {
                    0 => ModOp::Add,
                    1 => ModOp::Delete,
                    2 => ModOp::Replace,
                    other => return Err(LdapError::protocol(format!("bad mod op {other}"))),
                };
                let mut ava = item.sequence()?;
                let attr = ava.string()?;
                let mut vals = ava.sub(ber::TAG_SET)?;
                let mut values = Vec::new();
                while !vals.is_empty() {
                    values.push(vals.string()?);
                }
                mods.push(Modification {
                    op,
                    attr: attr.into(),
                    values,
                });
            }
            Ok(ProtocolOp::ModifyRequest { dn, mods })
        }
        (0x60, OP_MODIFY_RESP) => Ok(ProtocolOp::ModifyResponse(decode_result(body)?)),
        (0x60, OP_ADD_REQ) => {
            let dn = b.string()?;
            let attrs = decode_partial_attrs(&mut b)?;
            Ok(ProtocolOp::AddRequest { dn, attrs })
        }
        (0x60, OP_ADD_RESP) => Ok(ProtocolOp::AddResponse(decode_result(body)?)),
        (0x40, OP_DEL_REQ) => {
            let dn = String::from_utf8(body.to_vec())
                .map_err(|_| LdapError::protocol("non-UTF-8 DN"))?;
            Ok(ProtocolOp::DelRequest { dn })
        }
        (0x60, OP_DEL_RESP) => Ok(ProtocolOp::DelResponse(decode_result(body)?)),
        (0x60, OP_MODDN_REQ) => {
            let dn = b.string()?;
            let new_rdn = b.string()?;
            let delete_old = b.boolean()?;
            let new_superior = match b.peek_tag() {
                Some(t) if t == ber::ctx_prim(0) => Some(
                    String::from_utf8(b.expect(t)?.to_vec())
                        .map_err(|_| LdapError::protocol("non-UTF-8 newSuperior"))?,
                ),
                _ => None,
            };
            Ok(ProtocolOp::ModifyDnRequest {
                dn,
                new_rdn,
                delete_old,
                new_superior,
            })
        }
        (0x60, OP_MODDN_RESP) => Ok(ProtocolOp::ModifyDnResponse(decode_result(body)?)),
        (0x60, OP_COMPARE_REQ) => {
            let dn = b.string()?;
            let mut ava = b.sequence()?;
            let attr = ava.string()?;
            let value = ava.string()?;
            Ok(ProtocolOp::CompareRequest { dn, attr, value })
        }
        (0x60, OP_COMPARE_RESP) => Ok(ProtocolOp::CompareResponse(decode_result(body)?)),
        (0x60, OP_EXTENDED_RESP) => {
            let code = ResultCode::from_code(b.enumerated()? as u32);
            let matched_dn = b.string()?;
            let message = b.string()?;
            let name = match b.peek_tag() {
                Some(t) if t == ber::ctx_prim(10) => Some(
                    String::from_utf8(b.expect(t)?.to_vec())
                        .map_err(|_| LdapError::protocol("non-UTF-8 responseName"))?,
                ),
                _ => None,
            };
            Ok(ProtocolOp::ExtendedResponse {
                result: LdapResult {
                    code,
                    matched_dn,
                    message,
                },
                name,
            })
        }
        _ => Err(LdapError::protocol(format!(
            "unknown protocol op tag 0x{tag:02x}"
        ))),
    }
}

/// Filter encoding (RFC 2251 §4.5.1 context tags).
fn encode_filter(w: &mut Writer, f: &Filter) {
    match f {
        Filter::And(fs) => w.constructed(ber::ctx(0), |w| {
            for x in fs {
                encode_filter(w, x);
            }
        }),
        Filter::Or(fs) => w.constructed(ber::ctx(1), |w| {
            for x in fs {
                encode_filter(w, x);
            }
        }),
        Filter::Not(x) => w.constructed(ber::ctx(2), |w| encode_filter(w, x)),
        Filter::Equality(a, v) => w.constructed(ber::ctx(3), |w| {
            w.str(a);
            w.str(v);
        }),
        Filter::Substring {
            attr,
            initial,
            any,
            final_,
        } => w.constructed(ber::ctx(4), |w| {
            w.str(attr);
            w.sequence(|w| {
                if let Some(i) = initial {
                    w.octet_string_tagged(ber::ctx_prim(0), i.as_bytes());
                }
                for a in any {
                    w.octet_string_tagged(ber::ctx_prim(1), a.as_bytes());
                }
                if let Some(x) = final_ {
                    w.octet_string_tagged(ber::ctx_prim(2), x.as_bytes());
                }
            });
        }),
        Filter::GreaterOrEqual(a, v) => w.constructed(ber::ctx(5), |w| {
            w.str(a);
            w.str(v);
        }),
        Filter::LessOrEqual(a, v) => w.constructed(ber::ctx(6), |w| {
            w.str(a);
            w.str(v);
        }),
        Filter::Present(a) => w.octet_string_tagged(ber::ctx_prim(7), a.as_bytes()),
        Filter::Approx(a, v) => w.constructed(ber::ctx(8), |w| {
            w.str(a);
            w.str(v);
        }),
    }
}

fn decode_filter(r: &mut Reader) -> Result<Filter> {
    let (tag, body) = r.tlv()?;
    let mut b = Reader::new(body);
    match tag {
        t if t == ber::ctx(0) || t == ber::ctx(1) => {
            let mut parts = Vec::new();
            while !b.is_empty() {
                parts.push(decode_filter(&mut b)?);
            }
            if parts.is_empty() {
                return Err(LdapError::protocol("empty and/or filter"));
            }
            Ok(if tag == ber::ctx(0) {
                Filter::And(parts)
            } else {
                Filter::Or(parts)
            })
        }
        t if t == ber::ctx(2) => Ok(Filter::Not(Box::new(decode_filter(&mut b)?))),
        t if t == ber::ctx(3) => Ok(Filter::Equality(b.string()?, b.string()?)),
        t if t == ber::ctx(4) => {
            let attr = b.string()?;
            let mut parts = b.sequence()?;
            let (mut initial, mut any, mut final_) = (None, Vec::new(), None);
            while !parts.is_empty() {
                let (ptag, pbody) = parts.tlv()?;
                let s = String::from_utf8(pbody.to_vec())
                    .map_err(|_| LdapError::protocol("non-UTF-8 substring"))?;
                match ptag {
                    t if t == ber::ctx_prim(0) => initial = Some(s),
                    t if t == ber::ctx_prim(1) => any.push(s),
                    t if t == ber::ctx_prim(2) => final_ = Some(s),
                    other => {
                        return Err(LdapError::protocol(format!(
                            "bad substring tag 0x{other:02x}"
                        )))
                    }
                }
            }
            Ok(Filter::Substring {
                attr,
                initial,
                any,
                final_,
            })
        }
        t if t == ber::ctx(5) => Ok(Filter::GreaterOrEqual(b.string()?, b.string()?)),
        t if t == ber::ctx(6) => Ok(Filter::LessOrEqual(b.string()?, b.string()?)),
        t if t == ber::ctx_prim(7) => Ok(Filter::Present(
            String::from_utf8(body.to_vec())
                .map_err(|_| LdapError::protocol("non-UTF-8 attribute"))?,
        )),
        t if t == ber::ctx(8) => Ok(Filter::Approx(b.string()?, b.string()?)),
        other => Err(LdapError::protocol(format!(
            "unknown filter tag 0x{other:02x}"
        ))),
    }
}

/// Hard cap on a single BER frame (tag + length + body).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

const READ_CHUNK: usize = 16 * 1024;

/// Buffered incremental BER frame splitter.
///
/// Reads from the underlying stream in large chunks into one reusable
/// scratch buffer and yields complete frames as slices into it — no
/// per-frame allocation and no per-frame read syscalls, unlike
/// [`read_frame`]. Consumed space is reclaimed by compaction before the
/// buffer would otherwise grow.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            start: 0,
            end: 0,
        }
    }

    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Next complete frame, or `None` on clean EOF at a frame boundary.
    /// Mid-frame EOF is `UnexpectedEof`; malformed or oversized headers are
    /// `InvalidData`.
    pub fn next_frame(&mut self) -> std::io::Result<Option<&[u8]>> {
        let frame_len = loop {
            match self.parse_header()? {
                Some(len) if self.end - self.start >= len => break len,
                _ => {
                    if !self.fill()? {
                        return if self.start == self.end {
                            Ok(None)
                        } else {
                            Err(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "truncated BER frame",
                            ))
                        };
                    }
                }
            }
        };
        let s = self.start;
        self.start += frame_len;
        Ok(Some(&self.buf[s..s + frame_len]))
    }

    /// Total frame length if the buffered bytes hold a complete header,
    /// `None` if more bytes are needed.
    fn parse_header(&self) -> std::io::Result<Option<usize>> {
        let avail = &self.buf[self.start..self.end];
        if avail.len() < 2 {
            return Ok(None);
        }
        let (body_len, header_len) = if avail[1] < 0x80 {
            (avail[1] as usize, 2)
        } else {
            let n = (avail[1] & 0x7F) as usize;
            if n == 0 || n > 8 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "unsupported BER length",
                ));
            }
            if avail.len() < 2 + n {
                return Ok(None);
            }
            let mut len = 0usize;
            for &b in &avail[2..2 + n] {
                len = (len << 8) | b as usize;
            }
            (len, 2 + n)
        };
        if body_len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "BER frame too large",
            ));
        }
        Ok(Some(header_len + body_len))
    }

    /// Read more bytes from the stream; `false` on EOF.
    fn fill(&mut self) -> std::io::Result<bool> {
        // Reclaim consumed space before growing the buffer.
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.start > 0 && self.end + READ_CHUNK > self.buf.len() {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() < self.end + READ_CHUNK {
            self.buf.resize(self.end + READ_CHUNK, 0);
        }
        let n = self.inner.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n > 0)
    }
}

/// Read one complete BER frame (tag + length + body) from a stream.
/// Returns `None` on clean EOF at a frame boundary.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 2];
    let mut read = 0;
    while read < 2 {
        let n = stream.read(&mut head[read..])?;
        if n == 0 {
            if read == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated BER frame header",
            ));
        }
        read += n;
    }
    let mut frame = head.to_vec();
    let body_len = if head[1] < 0x80 {
        head[1] as usize
    } else {
        let n = (head[1] & 0x7F) as usize;
        if n == 0 || n > 8 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unsupported BER length",
            ));
        }
        let mut ext = vec![0u8; n];
        stream.read_exact(&mut ext)?;
        let mut len = 0usize;
        for b in &ext {
            len = (len << 8) | *b as usize;
        }
        frame.extend_from_slice(&ext);
        len
    };
    if body_len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "BER frame too large",
        ));
    }
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body)?;
    frame.extend_from_slice(&body);
    Ok(Some(frame))
}

/// Convert an [`Entry`] to the wire attribute list.
pub fn entry_to_wire(e: &Entry) -> (String, Vec<(String, Vec<String>)>) {
    (
        e.dn().to_string(),
        e.attributes()
            .map(|a| (a.name.as_str().to_string(), a.values.to_vec()))
            .collect(),
    )
}

/// Convert a wire attribute list back to an [`Entry`].
pub fn entry_from_wire(dn: &str, attrs: &[(String, Vec<String>)]) -> Result<Entry> {
    let mut e = Entry::new(Dn::parse(dn)?);
    for (name, values) in attrs {
        for v in values {
            e.add_value(name.as_str(), v.clone());
        }
    }
    Ok(e)
}

/// Parse the string forms used in requests.
pub fn parse_rdn(s: &str) -> Result<Rdn> {
    Rdn::parse(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(op: ProtocolOp) {
        let msg = LdapMessage { id: 42, op };
        let bytes = msg.encode();
        let decoded = LdapMessage::decode(&bytes).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn bind_round_trip() {
        round_trip(ProtocolOp::BindRequest {
            version: 3,
            dn: "cn=admin,o=Lucent".into(),
            password: "secret".into(),
        });
        round_trip(ProtocolOp::BindResponse(LdapResult::success()));
    }

    #[test]
    fn unbind_round_trip() {
        round_trip(ProtocolOp::UnbindRequest);
    }

    #[test]
    fn search_round_trip() {
        round_trip(ProtocolOp::SearchRequest {
            base: "o=Lucent".into(),
            scope: Scope::Sub,
            size_limit: 100,
            filter: Filter::parse(
                "(&(objectClass=person)(|(cn=J*n)(sn>=A))(!(mail=*))(cn~=jd)(x<=9))",
            )
            .unwrap(),
            attrs: vec!["cn".into(), "sn".into()],
        });
        round_trip(ProtocolOp::SearchResultEntry {
            dn: "cn=J,o=Lucent".into(),
            attrs: vec![
                ("cn".into(), vec!["J".into()]),
                ("objectClass".into(), vec!["top".into(), "person".into()]),
            ],
        });
        round_trip(ProtocolOp::SearchResultDone(LdapResult::success()));
    }

    #[test]
    fn modify_round_trip() {
        round_trip(ProtocolOp::ModifyRequest {
            dn: "cn=J,o=Lucent".into(),
            mods: vec![
                Modification::set("telephoneNumber", "9123"),
                Modification::delete_attr("mail"),
                Modification::add("ou", vec!["a".into(), "b".into()]),
            ],
        });
    }

    #[test]
    fn add_delete_round_trip() {
        round_trip(ProtocolOp::AddRequest {
            dn: "cn=J,o=Lucent".into(),
            attrs: vec![("cn".into(), vec!["J".into()])],
        });
        round_trip(ProtocolOp::DelRequest {
            dn: "cn=J,o=Lucent".into(),
        });
        round_trip(ProtocolOp::DelResponse(LdapResult {
            code: ResultCode::NoSuchObject,
            matched_dn: "o=Lucent".into(),
            message: "nope".into(),
        }));
    }

    #[test]
    fn moddn_round_trip() {
        round_trip(ProtocolOp::ModifyDnRequest {
            dn: "cn=J,o=Lucent".into(),
            new_rdn: "cn=K".into(),
            delete_old: true,
            new_superior: None,
        });
        round_trip(ProtocolOp::ModifyDnRequest {
            dn: "cn=J,o=Lucent".into(),
            new_rdn: "cn=K".into(),
            delete_old: false,
            new_superior: Some("o=R&D,o=Lucent".into()),
        });
    }

    #[test]
    fn compare_round_trip() {
        round_trip(ProtocolOp::CompareRequest {
            dn: "cn=J,o=Lucent".into(),
            attr: "sn".into(),
            value: "Doe".into(),
        });
        round_trip(ProtocolOp::CompareResponse(LdapResult {
            code: ResultCode::CompareTrue,
            matched_dn: String::new(),
            message: String::new(),
        }));
    }

    #[test]
    fn frame_reader_handles_stream() {
        let m1 = LdapMessage {
            id: 1,
            op: ProtocolOp::DelRequest { dn: "cn=a".into() },
        };
        let m2 = LdapMessage {
            id: 2,
            op: ProtocolOp::SearchResultEntry {
                dn: "cn=b".into(),
                attrs: vec![("description".into(), vec!["x".repeat(300)])],
            },
        };
        let mut stream: Vec<u8> = Vec::new();
        stream.extend(m1.encode());
        stream.extend(m2.encode());
        let mut cursor = std::io::Cursor::new(stream);
        let f1 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(LdapMessage::decode(&f1).unwrap(), m1);
        let f2 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(LdapMessage::decode(&f2).unwrap(), m2);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_error() {
        let m = LdapMessage {
            id: 1,
            op: ProtocolOp::DelRequest { dn: "cn=a".into() },
        };
        let bytes = m.encode();
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 1]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn extended_response_round_trip() {
        round_trip(ProtocolOp::ExtendedResponse {
            result: LdapResult {
                code: ResultCode::ProtocolError,
                matched_dn: String::new(),
                message: "bad frame".into(),
            },
            name: Some(NOTICE_OF_DISCONNECTION_OID.into()),
        });
        round_trip(ProtocolOp::ExtendedResponse {
            result: LdapResult::success(),
            name: None,
        });
        let notice = notice_of_disconnection(ResultCode::ProtocolError, "x");
        assert_eq!(notice.id, 0);
    }

    #[test]
    fn frame_reader_splits_stream_incrementally() {
        let m1 = LdapMessage {
            id: 1,
            op: ProtocolOp::DelRequest { dn: "cn=a".into() },
        };
        let m2 = LdapMessage {
            id: 2,
            op: ProtocolOp::SearchResultEntry {
                dn: "cn=b".into(),
                // Long-form length: body > 127 bytes.
                attrs: vec![("description".into(), vec!["x".repeat(40_000)])],
            },
        };
        let mut stream: Vec<u8> = Vec::new();
        for _ in 0..3 {
            stream.extend(m1.encode());
            stream.extend(m2.encode());
        }
        // A reader that trickles one byte at a time exercises the
        // partial-header / partial-body resume paths.
        struct OneByte(std::io::Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = 1.min(buf.len());
                self.0.read(&mut buf[..n])
            }
        }
        let mut fr = FrameReader::new(std::io::Cursor::new(stream.clone()));
        for _ in 0..3 {
            let f1 = fr.next_frame().unwrap().unwrap();
            assert_eq!(LdapMessage::decode(f1).unwrap(), m1);
            let f2 = fr.next_frame().unwrap().unwrap();
            assert_eq!(LdapMessage::decode(f2).unwrap(), m2);
        }
        assert!(fr.next_frame().unwrap().is_none());
        let mut fr = FrameReader::new(OneByte(std::io::Cursor::new(stream)));
        let f1 = fr.next_frame().unwrap().unwrap();
        assert_eq!(LdapMessage::decode(f1).unwrap(), m1);
        let f2 = fr.next_frame().unwrap().unwrap();
        assert_eq!(LdapMessage::decode(f2).unwrap(), m2);
    }

    #[test]
    fn frame_reader_rejects_bad_frames() {
        // Mid-frame EOF.
        let m = LdapMessage {
            id: 1,
            op: ProtocolOp::DelRequest { dn: "cn=a".into() },
        };
        let bytes = m.encode();
        let mut fr = FrameReader::new(std::io::Cursor::new(bytes[..bytes.len() - 1].to_vec()));
        let err = fr.next_frame().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // Oversized length claim.
        let mut fr = FrameReader::new(std::io::Cursor::new(vec![
            0x30, 0x84, 0x40, 0x00, 0x00, 0x00,
        ]));
        let err = fr.next_frame().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Garbage length form.
        let mut fr = FrameReader::new(std::io::Cursor::new(vec![0xFF; 64]));
        let err = fr.next_frame().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let m = LdapMessage {
            id: 9,
            op: ProtocolOp::CompareRequest {
                dn: "cn=J,o=L".into(),
                attr: "sn".into(),
                value: "D".into(),
            },
        };
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        m.encode_into(&mut buf);
        let one = m.encode();
        assert_eq!(buf.len(), one.len() * 2);
        assert_eq!(&buf[..one.len()], one.as_slice());
        assert_eq!(&buf[one.len()..], one.as_slice());
    }

    #[test]
    fn encode_search_entry_into_matches_legacy_path() {
        let e = Entry::with_attrs(
            Dn::parse("cn=J,o=L").unwrap(),
            [("cn", "J"), ("sn", "D"), ("ou", "a"), ("ou", "b")],
        );
        let mut streamed = Vec::new();
        encode_search_entry_into(&mut streamed, 7, &e);
        let (dn, attrs) = entry_to_wire(&e);
        let legacy = LdapMessage {
            id: 7,
            op: ProtocolOp::SearchResultEntry { dn, attrs },
        }
        .encode();
        assert_eq!(streamed, legacy);
    }

    #[test]
    fn entry_wire_round_trip() {
        let e = Entry::with_attrs(
            Dn::parse("cn=J,o=L").unwrap(),
            [("cn", "J"), ("sn", "D"), ("ou", "a"), ("ou", "b")],
        );
        let (dn, attrs) = entry_to_wire(&e);
        let back = entry_from_wire(&dn, &attrs).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn garbage_rejected() {
        assert!(LdapMessage::decode(&[0x01, 0x02, 0x03]).is_err());
        assert!(LdapMessage::decode(&[]).is_err());
    }
}
