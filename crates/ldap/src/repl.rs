//! Lazy multi-master replication with relaxed write-write consistency.
//!
//! Section 2 of the paper: "LDAP servers make extensive use of replication
//! to make directory information highly available … directory systems
//! maintain a relaxed write-write consistency by ensuring that updates
//! eventually result in the same values for object attributes being present
//! in each copy of the object."
//!
//! This module models exactly that guarantee: replicas accept writes
//! independently, stamp each *attribute* write with a Lamport clock
//! (total-ordered by `(time, replica-id)`), and reconcile pairwise with
//! last-writer-wins per attribute plus entry-level create/delete tombstones.
//! After any sequence of anti-entropy exchanges that connects all replicas,
//! every replica holds the same attribute values — the property MetaComm
//! *extends* to meta-directory updates by reapplying DDUs (see the
//! `metacomm` crate).

use crate::attr::Attribute;
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{LdapError, Result, ResultCode};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A replication stamp: Lamport time, tie-broken by replica id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Stamp {
    pub time: u64,
    pub replica: String,
}

/// Canonical digest form: `(normalized DN, sorted attribute/value sets)`.
pub type Digest = Vec<(String, Vec<(String, Vec<String>)>)>;

/// One replicated entry with per-attribute stamps.
#[derive(Debug, Clone)]
struct ReplEntry {
    /// Display DN (kept for exports).
    dn: Dn,
    /// attribute (normalized name) → (values, stamp of last write)
    attrs: HashMap<String, (Attribute, Stamp)>,
    created: Stamp,
    deleted: Option<Stamp>,
}

impl ReplEntry {
    fn is_visible(&self) -> bool {
        match &self.deleted {
            None => true,
            Some(d) => self.created > *d,
        }
    }
}

/// One replica of a replicated directory partition.
pub struct Replica {
    id: String,
    state: Mutex<State>,
}

struct State {
    clock: u64,
    entries: HashMap<String, ReplEntry>,
}

impl Replica {
    pub fn new(id: impl Into<String>) -> Replica {
        Replica {
            id: id.into(),
            state: Mutex::new(State {
                clock: 0,
                entries: HashMap::new(),
            }),
        }
    }

    pub fn id(&self) -> &str {
        &self.id
    }

    fn tick(&self, state: &mut State) -> Stamp {
        state.clock += 1;
        Stamp {
            time: state.clock,
            replica: self.id.clone(),
        }
    }

    /// Create (or resurrect) an entry with the given attribute image.
    pub fn put_entry(&self, entry: &Entry) -> Result<()> {
        let mut s = self.state.lock();
        let stamp = self.tick(&mut s);
        let key = entry.dn().norm_key();
        let mut attrs = HashMap::new();
        for a in entry.attributes() {
            attrs.insert(a.name.norm().to_string(), (a.clone(), stamp.clone()));
        }
        match s.entries.get_mut(&key) {
            Some(existing) => {
                existing.created = stamp;
                for (k, v) in attrs {
                    existing.attrs.insert(k, v);
                }
            }
            None => {
                s.entries.insert(
                    key,
                    ReplEntry {
                        dn: entry.dn().clone(),
                        attrs,
                        created: stamp,
                        deleted: None,
                    },
                );
            }
        }
        Ok(())
    }

    /// Overwrite one attribute of an entry.
    pub fn set_attr(&self, dn: &Dn, attr: Attribute) -> Result<()> {
        let mut s = self.state.lock();
        let stamp = self.tick(&mut s);
        let key = dn.norm_key();
        match s.entries.get_mut(&key) {
            Some(e) if e.is_visible() => {
                e.attrs.insert(attr.name.norm().to_string(), (attr, stamp));
                Ok(())
            }
            _ => Err(LdapError::no_such_object(dn)),
        }
    }

    /// Tombstone an entry.
    pub fn delete_entry(&self, dn: &Dn) -> Result<()> {
        let mut s = self.state.lock();
        let stamp = self.tick(&mut s);
        let key = dn.norm_key();
        match s.entries.get_mut(&key) {
            Some(e) if e.is_visible() => {
                e.deleted = Some(stamp);
                Ok(())
            }
            _ => Err(LdapError::no_such_object(dn)),
        }
    }

    /// Read back a visible entry.
    pub fn get(&self, dn: &Dn) -> Option<Entry> {
        let s = self.state.lock();
        let e = s.entries.get(&dn.norm_key())?;
        if !e.is_visible() {
            return None;
        }
        let mut out = Entry::new(e.dn.clone());
        for (attr, _) in e.attrs.values() {
            out.put(attr.name.clone(), attr.values.clone());
        }
        Some(out)
    }

    /// Number of visible entries.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .entries
            .values()
            .filter(|e| e.is_visible())
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One round of anti-entropy: pull `other`'s state into `self`, then
    /// push `self`'s merged state back. Afterwards both replicas agree.
    pub fn sync_with(&self, other: &Replica) {
        // Snapshot other's state.
        let other_snapshot: Vec<(String, ReplEntry)> = {
            let o = other.state.lock();
            o.entries
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        let other_clock = other.state.lock().clock;
        {
            let mut s = self.state.lock();
            s.clock = s.clock.max(other_clock);
            for (key, theirs) in other_snapshot {
                merge_entry(&mut s.entries, key, theirs);
            }
        }
        // Push merged state back.
        let my_snapshot: Vec<(String, ReplEntry)> = {
            let s = self.state.lock();
            s.entries
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        let my_clock = self.state.lock().clock;
        let mut o = other.state.lock();
        o.clock = o.clock.max(my_clock);
        for (key, theirs) in my_snapshot {
            merge_entry(&mut o.entries, key, theirs);
        }
    }

    /// A canonical digest of the visible state — equal digests mean the
    /// replicas have converged.
    pub fn digest(&self) -> Digest {
        let s = self.state.lock();
        let mut out: Digest = s
            .entries
            .iter()
            .filter(|(_, e)| e.is_visible())
            .map(|(k, e)| {
                let mut attrs: Vec<(String, Vec<String>)> = e
                    .attrs
                    .iter()
                    .map(|(n, (a, _))| {
                        let mut vals = a.values.clone();
                        vals.sort();
                        (n.clone(), vals)
                    })
                    .collect();
                attrs.sort();
                (k.clone(), attrs)
            })
            .collect();
        out.sort();
        out
    }
}

fn merge_entry(entries: &mut HashMap<String, ReplEntry>, key: String, theirs: ReplEntry) {
    match entries.get_mut(&key) {
        None => {
            entries.insert(key, theirs);
        }
        Some(mine) => {
            if theirs.created > mine.created {
                mine.created = theirs.created.clone();
            }
            match (&mine.deleted, &theirs.deleted) {
                (None, Some(_)) => mine.deleted = theirs.deleted.clone(),
                (Some(m), Some(t)) if t > m => mine.deleted = theirs.deleted.clone(),
                _ => {}
            }
            for (attr_key, (attr, stamp)) in theirs.attrs {
                match mine.attrs.get(&attr_key) {
                    Some((_, my_stamp)) if *my_stamp >= stamp => {}
                    _ => {
                        mine.attrs.insert(attr_key, (attr, stamp));
                    }
                }
            }
        }
    }
}

/// Error helper shared with the rest of the crate.
impl Replica {
    /// Like [`Replica::set_attr`] but fails with `NoSuchAttribute`-style
    /// context when the attribute was never written (used by tests).
    pub fn attr_stamp(&self, dn: &Dn, attr: &str) -> Result<Stamp> {
        let s = self.state.lock();
        s.entries
            .get(&dn.norm_key())
            .and_then(|e| e.attrs.get(&attr.to_ascii_lowercase()))
            .map(|(_, st)| st.clone())
            .ok_or_else(|| {
                LdapError::new(
                    ResultCode::NoSuchAttribute,
                    format!("no stamped attribute `{attr}` on `{dn}`"),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dn: &str, phone: &str) -> Entry {
        Entry::with_attrs(
            Dn::parse(dn).unwrap(),
            [
                ("objectClass", "person"),
                ("cn", "J"),
                ("sn", "D"),
                ("telephoneNumber", phone),
            ],
        )
    }

    #[test]
    fn basic_put_get_delete() {
        let r = Replica::new("r1");
        let dn = Dn::parse("cn=J,o=L").unwrap();
        r.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        assert_eq!(r.get(&dn).unwrap().first("telephoneNumber"), Some("1"));
        r.delete_entry(&dn).unwrap();
        assert!(r.get(&dn).is_none());
        assert!(r.set_attr(&dn, Attribute::single("sn", "X")).is_err());
    }

    #[test]
    fn concurrent_attr_writes_converge_lww() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.sync_with(&b);
        let dn = Dn::parse("cn=J,o=L").unwrap();
        // Concurrent independent writes to the SAME attribute.
        a.set_attr(&dn, Attribute::single("telephoneNumber", "from-a"))
            .unwrap();
        b.set_attr(&dn, Attribute::single("telephoneNumber", "from-b"))
            .unwrap();
        a.sync_with(&b);
        assert_eq!(a.digest(), b.digest(), "replicas must converge");
        // Winner is deterministic: equal times tie-break on replica id "b" > "a".
        assert_eq!(a.get(&dn).unwrap().first("telephoneNumber"), Some("from-b"));
    }

    #[test]
    fn disjoint_attr_writes_both_survive() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.sync_with(&b);
        let dn = Dn::parse("cn=J,o=L").unwrap();
        a.set_attr(&dn, Attribute::single("mail", "j@l.com"))
            .unwrap();
        b.set_attr(&dn, Attribute::single("roomNumber", "2B-401"))
            .unwrap();
        a.sync_with(&b);
        let merged = a.get(&dn).unwrap();
        assert_eq!(merged.first("mail"), Some("j@l.com"));
        assert_eq!(merged.first("roomNumber"), Some("2B-401"));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn delete_vs_update_resolved_by_stamp() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.sync_with(&b);
        let dn = Dn::parse("cn=J,o=L").unwrap();
        // b deletes, then a recreates with a later logical history after syncing.
        b.delete_entry(&dn).unwrap();
        b.sync_with(&a);
        assert!(a.get(&dn).is_none(), "delete propagates");
        a.put_entry(&entry("cn=J,o=L", "2")).unwrap();
        a.sync_with(&b);
        assert!(b.get(&dn).is_some(), "recreate wins over older tombstone");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn three_replicas_converge_via_chain() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        let c = Replica::new("c");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.put_entry(&entry("cn=K,o=L", "2")).unwrap();
        a.sync_with(&b);
        b.sync_with(&c);
        let dn_j = Dn::parse("cn=J,o=L").unwrap();
        let dn_k = Dn::parse("cn=K,o=L").unwrap();
        a.set_attr(&dn_j, Attribute::single("telephoneNumber", "11"))
            .unwrap();
        b.set_attr(&dn_k, Attribute::single("telephoneNumber", "22"))
            .unwrap();
        c.delete_entry(&dn_j).unwrap();
        // Chain topology: a<->b, b<->c, a<->b again.
        a.sync_with(&b);
        b.sync_with(&c);
        a.sync_with(&b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.digest(), c.digest());
    }

    #[test]
    fn sync_is_idempotent() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.sync_with(&b);
        let d1 = a.digest();
        a.sync_with(&b);
        a.sync_with(&b);
        assert_eq!(a.digest(), d1);
        assert_eq!(b.digest(), d1);
    }

    #[test]
    fn attr_stamps_advance() {
        let a = Replica::new("a");
        let dn = Dn::parse("cn=J,o=L").unwrap();
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        let s1 = a.attr_stamp(&dn, "telephoneNumber").unwrap();
        a.set_attr(&dn, Attribute::single("telephoneNumber", "2"))
            .unwrap();
        let s2 = a.attr_stamp(&dn, "telephoneNumber").unwrap();
        assert!(s2 > s1);
    }
}
