//! Lazy multi-master replication with relaxed write-write consistency.
//!
//! Section 2 of the paper: "LDAP servers make extensive use of replication
//! to make directory information highly available … directory systems
//! maintain a relaxed write-write consistency by ensuring that updates
//! eventually result in the same values for object attributes being present
//! in each copy of the object."
//!
//! This module models exactly that guarantee: replicas accept writes
//! independently, stamp each *attribute* write with a Lamport clock
//! (total-ordered by `(time, replica-id)`), and reconcile pairwise with
//! last-writer-wins per attribute plus entry-level create/delete tombstones.
//! After any sequence of anti-entropy exchanges that connects all replicas,
//! every replica holds the same attribute values — the property MetaComm
//! *extends* to meta-directory updates by reapplying DDUs (see the
//! `metacomm` crate).

use crate::attr::Attribute;
use crate::backup::atomic_write;
use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{LdapError, Result, ResultCode};
use crate::wal::crc32;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;

/// A replication stamp: Lamport time, tie-broken by replica id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Stamp {
    pub time: u64,
    pub replica: String,
}

/// Per-origin high-water marks: replica id → highest Lamport time covered.
///
/// A replica's version vector summarizes *everything it has seen*: it covers
/// stamp `s` iff `vv[s.replica] >= s.time`. Watermarks must be per-origin —
/// a single scalar watermark is unsound under transitive propagation (a
/// freshly-joined replica's low-numbered writes would hide behind another
/// peer's high clock and never ship).
pub type VersionVector = HashMap<String, u64>;

fn vv_covers(vv: &VersionVector, s: &Stamp) -> bool {
    vv.get(&s.replica).is_some_and(|t| *t >= s.time)
}

fn vv_note(vv: &mut VersionVector, s: &Stamp) {
    let slot = vv.entry(s.replica.clone()).or_insert(0);
    *slot = (*slot).max(s.time);
}

fn vv_join(into: &mut VersionVector, other: &VersionVector) {
    for (origin, time) in other {
        let slot = into.entry(origin.clone()).or_insert(0);
        *slot = (*slot).max(*time);
    }
}

/// Traffic accounting for one anti-entropy exchange (both directions).
///
/// `bytes_shipped` is a wire-size estimate — DN, attribute names and values
/// at string length, plus `8 + origin-id length` per stamp — consistent
/// between the delta and full paths so their ratio is meaningful.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncStats {
    pub entries_shipped: usize,
    pub attrs_shipped: usize,
    pub bytes_shipped: usize,
    /// True when no watermark was stored for the peer (first contact) and
    /// the whole store was shipped.
    pub full_exchange: bool,
}

/// One entry's worth of delta: only the attributes whose stamps the peer's
/// watermark does not cover. Create/delete stamps ride along on every
/// shipped entry — they are a few bytes and make application self-contained.
struct DeltaEntry {
    key: String,
    dn: Dn,
    created: Stamp,
    deleted: Option<Stamp>,
    attrs: Vec<(String, Attribute, Stamp)>,
}

/// Canonical digest form: `(normalized DN, sorted attribute/value sets)`.
pub type Digest = Vec<(String, Vec<(String, Vec<String>)>)>;

/// One replicated entry with per-attribute stamps.
#[derive(Debug, Clone)]
struct ReplEntry {
    /// Display DN (kept for exports).
    dn: Dn,
    /// attribute (normalized name) → (values, stamp of last write)
    attrs: HashMap<String, (Attribute, Stamp)>,
    created: Stamp,
    deleted: Option<Stamp>,
}

impl ReplEntry {
    fn is_visible(&self) -> bool {
        match &self.deleted {
            None => true,
            Some(d) => self.created > *d,
        }
    }
}

/// One replica of a replicated directory partition.
pub struct Replica {
    id: String,
    state: Mutex<State>,
}

struct State {
    clock: u64,
    entries: HashMap<String, ReplEntry>,
    /// peer id → version vector the peer is known to cover. Conservative:
    /// always ≤ the peer's true coverage, so over-shipping is the only
    /// failure mode, and merges are idempotent.
    watermarks: HashMap<String, VersionVector>,
}

impl State {
    /// The version vector of everything in this store: every surviving
    /// create/delete/attribute stamp, maxed per origin.
    fn version_vector(&self) -> VersionVector {
        let mut vv = VersionVector::new();
        for e in self.entries.values() {
            vv_note(&mut vv, &e.created);
            if let Some(d) = &e.deleted {
                vv_note(&mut vv, d);
            }
            for (_, stamp) in e.attrs.values() {
                vv_note(&mut vv, stamp);
            }
        }
        vv
    }

    /// Everything the given watermark does not cover. An entry ships iff
    /// its create stamp, tombstone, or at least one attribute is new to
    /// the peer; within a shipped entry only the uncovered attributes go.
    fn delta_since(&self, wm: &VersionVector) -> Vec<DeltaEntry> {
        let mut out = Vec::new();
        for (key, e) in &self.entries {
            let attrs: Vec<(String, Attribute, Stamp)> = e
                .attrs
                .iter()
                .filter(|(_, (_, stamp))| !vv_covers(wm, stamp))
                .map(|(n, (a, s))| (n.clone(), a.clone(), s.clone()))
                .collect();
            let fresh_created = !vv_covers(wm, &e.created);
            let fresh_deleted = e.deleted.as_ref().is_some_and(|d| !vv_covers(wm, d));
            if fresh_created || fresh_deleted || !attrs.is_empty() {
                out.push(DeltaEntry {
                    key: key.clone(),
                    dn: e.dn.clone(),
                    created: e.created.clone(),
                    deleted: e.deleted.clone(),
                    attrs,
                });
            }
        }
        out
    }

    /// LWW-merge a delta into this store. Same semantics as a full-state
    /// merge; a partial entry can only arrive when its missing attributes
    /// are already covered here (watermark invariant), so inserting it
    /// verbatim on first sight is safe.
    fn apply_delta(&mut self, delta: Vec<DeltaEntry>) {
        for d in delta {
            match self.entries.get_mut(&d.key) {
                None => {
                    self.entries.insert(
                        d.key,
                        ReplEntry {
                            dn: d.dn,
                            attrs: d.attrs.into_iter().map(|(n, a, s)| (n, (a, s))).collect(),
                            created: d.created,
                            deleted: d.deleted,
                        },
                    );
                }
                Some(mine) => {
                    if d.created > mine.created {
                        mine.created = d.created;
                    }
                    match (&mine.deleted, &d.deleted) {
                        (None, Some(_)) => mine.deleted = d.deleted,
                        (Some(m), Some(t)) if t > m => mine.deleted = d.deleted,
                        _ => {}
                    }
                    for (attr_key, attr, stamp) in d.attrs {
                        match mine.attrs.get(&attr_key) {
                            Some((_, my_stamp)) if *my_stamp >= stamp => {}
                            _ => {
                                mine.attrs.insert(attr_key, (attr, stamp));
                            }
                        }
                    }
                }
            }
        }
    }
}

fn stamp_bytes(s: &Stamp) -> usize {
    8 + s.replica.len()
}

fn tally(stats: &mut SyncStats, delta: &[DeltaEntry]) {
    for d in delta {
        stats.entries_shipped += 1;
        stats.bytes_shipped += d.dn.to_string().len() + stamp_bytes(&d.created);
        if let Some(t) = &d.deleted {
            stats.bytes_shipped += stamp_bytes(t);
        }
        for (name, attr, stamp) in &d.attrs {
            stats.attrs_shipped += 1;
            stats.bytes_shipped += name.len() + stamp_bytes(stamp);
            stats.bytes_shipped += attr.values.iter().map(String::len).sum::<usize>();
        }
    }
}

impl Replica {
    pub fn new(id: impl Into<String>) -> Replica {
        Replica {
            id: id.into(),
            state: Mutex::new(State {
                clock: 0,
                entries: HashMap::new(),
                watermarks: HashMap::new(),
            }),
        }
    }

    pub fn id(&self) -> &str {
        &self.id
    }

    fn tick(&self, state: &mut State) -> Stamp {
        state.clock += 1;
        Stamp {
            time: state.clock,
            replica: self.id.clone(),
        }
    }

    /// Create (or resurrect) an entry with the given attribute image.
    pub fn put_entry(&self, entry: &Entry) -> Result<()> {
        let mut s = self.state.lock();
        let stamp = self.tick(&mut s);
        let key = entry.dn().norm_key();
        let mut attrs = HashMap::new();
        for a in entry.attributes() {
            attrs.insert(a.name.norm().to_string(), (a.clone(), stamp.clone()));
        }
        match s.entries.get_mut(&key) {
            Some(existing) => {
                existing.created = stamp;
                for (k, v) in attrs {
                    existing.attrs.insert(k, v);
                }
            }
            None => {
                s.entries.insert(
                    key,
                    ReplEntry {
                        dn: entry.dn().clone(),
                        attrs,
                        created: stamp,
                        deleted: None,
                    },
                );
            }
        }
        Ok(())
    }

    /// Overwrite one attribute of an entry.
    pub fn set_attr(&self, dn: &Dn, attr: Attribute) -> Result<()> {
        let mut s = self.state.lock();
        let stamp = self.tick(&mut s);
        let key = dn.norm_key();
        match s.entries.get_mut(&key) {
            Some(e) if e.is_visible() => {
                e.attrs.insert(attr.name.norm().to_string(), (attr, stamp));
                Ok(())
            }
            _ => Err(LdapError::no_such_object(dn)),
        }
    }

    /// Tombstone an entry.
    pub fn delete_entry(&self, dn: &Dn) -> Result<()> {
        let mut s = self.state.lock();
        let stamp = self.tick(&mut s);
        let key = dn.norm_key();
        match s.entries.get_mut(&key) {
            Some(e) if e.is_visible() => {
                e.deleted = Some(stamp);
                Ok(())
            }
            _ => Err(LdapError::no_such_object(dn)),
        }
    }

    /// Read back a visible entry.
    pub fn get(&self, dn: &Dn) -> Option<Entry> {
        let s = self.state.lock();
        let e = s.entries.get(&dn.norm_key())?;
        if !e.is_visible() {
            return None;
        }
        let mut out = Entry::new(e.dn.clone());
        for (attr, _) in e.attrs.values() {
            out.put(attr.name.clone(), attr.values.to_vec());
        }
        Some(out)
    }

    /// Number of visible entries.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .entries
            .values()
            .filter(|e| e.is_visible())
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One round of anti-entropy: exchange state with `other` in both
    /// directions. Afterwards both replicas agree. Kept as the simple
    /// entry point; [`Replica::anti_entropy`] returns traffic stats.
    pub fn sync_with(&self, other: &Replica) {
        let _ = self.anti_entropy(other);
    }

    /// Watermark-based delta anti-entropy (both directions).
    ///
    /// Each replica remembers, per peer, the version vector the peer is
    /// known to cover, and ships only stamps above it. First contact (no
    /// stored watermark) degenerates to a full exchange. LWW and tombstone
    /// semantics are exactly those of a full merge — the delta is just the
    /// subset of stamps the peer can't already have.
    ///
    /// Locking: one replica at a time, never both, so concurrent writers
    /// and other exchanges can interleave freely.
    pub fn anti_entropy(&self, other: &Replica) -> SyncStats {
        self.exchange(other, true)
    }

    /// The pre-watermark baseline: ship the whole store both ways. Same
    /// result as [`Replica::anti_entropy`]; exists so benchmarks can
    /// measure delta savings against it.
    pub fn full_sync_with(&self, other: &Replica) -> SyncStats {
        self.exchange(other, false)
    }

    fn exchange(&self, other: &Replica, use_watermarks: bool) -> SyncStats {
        // Phase 1 (lock self): outbound delta against the stored watermark.
        let (out_delta, my_vv, my_clock, full) = {
            let s = self.state.lock();
            let stored = if use_watermarks {
                s.watermarks.get(other.id())
            } else {
                None
            };
            let full = stored.is_none();
            let empty = VersionVector::new();
            let wm = stored.unwrap_or(&empty);
            (s.delta_since(wm), s.version_vector(), s.clock, full)
        };
        let mut stats = SyncStats {
            full_exchange: full,
            ..SyncStats::default()
        };
        tally(&mut stats, &out_delta);

        // Phase 2 (lock other): merge, then compute the return delta
        // against everything self is known to cover — the watermark other
        // stored for self, joined with the vector self just announced.
        let (back_delta, joint_vv, other_clock) = {
            let mut o = other.state.lock();
            o.clock = o.clock.max(my_clock);
            o.apply_delta(out_delta);
            let mut known = if use_watermarks {
                o.watermarks.get(self.id()).cloned().unwrap_or_default()
            } else {
                VersionVector::new()
            };
            vv_join(&mut known, &my_vv);
            let back = o.delta_since(&known);
            // Post-merge, other covers join(other, self); after self
            // applies `back` below, so does self.
            let joint = o.version_vector();
            o.watermarks.insert(self.id.clone(), joint.clone());
            (back, joint, o.clock)
        };
        tally(&mut stats, &back_delta);

        // Phase 3 (lock self): apply the return delta, store the watermark.
        {
            let mut s = self.state.lock();
            s.clock = s.clock.max(other_clock);
            s.apply_delta(back_delta);
            s.watermarks.insert(other.id.clone(), joint_vv);
        }
        stats
    }

    /// One-directional delta push: ship `self`'s news to `other` without
    /// pulling anything back.
    pub fn push_to(&self, other: &Replica) -> SyncStats {
        let (out_delta, my_vv, my_clock, full) = {
            let s = self.state.lock();
            let stored = s.watermarks.get(other.id());
            let full = stored.is_none();
            let empty = VersionVector::new();
            let wm = stored.unwrap_or(&empty);
            (s.delta_since(wm), s.version_vector(), s.clock, full)
        };
        let mut stats = SyncStats {
            full_exchange: full,
            ..SyncStats::default()
        };
        tally(&mut stats, &out_delta);
        let other_vv = {
            let mut o = other.state.lock();
            o.clock = o.clock.max(my_clock);
            o.apply_delta(out_delta);
            let mut known = o.watermarks.get(self.id()).cloned().unwrap_or_default();
            vv_join(&mut known, &my_vv);
            o.watermarks.insert(self.id.clone(), known);
            o.version_vector()
        };
        self.state
            .lock()
            .watermarks
            .insert(other.id.clone(), other_vv);
        stats
    }

    /// The version vector covering everything this replica has seen
    /// (exposed for tests and benchmarks).
    pub fn version_vector(&self) -> VersionVector {
        self.state.lock().version_vector()
    }

    /// The watermark stored for a peer, if any exchange has happened.
    pub fn watermark_for(&self, peer: &str) -> Option<VersionVector> {
        self.state.lock().watermarks.get(peer).cloned()
    }

    /// A canonical digest of the visible state — equal digests mean the
    /// replicas have converged.
    pub fn digest(&self) -> Digest {
        let s = self.state.lock();
        let mut out: Digest = s
            .entries
            .iter()
            .filter(|(_, e)| e.is_visible())
            .map(|(k, e)| {
                let mut attrs: Vec<(String, Vec<String>)> = e
                    .attrs
                    .iter()
                    .map(|(n, (a, _))| {
                        let mut vals = a.values.to_vec();
                        vals.sort();
                        (n.clone(), vals)
                    })
                    .collect();
                attrs.sort();
                (k.clone(), attrs)
            })
            .collect();
        out.sort();
        out
    }
}

// ---------------------------------------------------------------------------
// Durable replica state
// ---------------------------------------------------------------------------
//
// A crashed replica that loses its watermarks (or tombstones) must fall back
// to a full exchange on every peer — or worse, resurrect deleted entries. The
// whole state (Lamport clock, per-attribute stamps, create/delete stamps,
// per-peer watermarks) is therefore serialized to a single checksummed file.
// Snapshot-style save/load rather than a WAL: anti-entropy merges import
// peer-stamped state that cannot be re-derived by replaying local operations.

const STATE_MAGIC: &[u8; 4] = b"MCRP";
const STATE_VERSION: u8 = 1;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_stamp(buf: &mut Vec<u8>, s: &Stamp) {
    buf.extend_from_slice(&s.time.to_le_bytes());
    put_str(buf, &s.replica);
}

/// Byte-slice reader for the state codec; every read is bounds-checked so a
/// truncated file fails cleanly instead of panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|e| *e <= self.bytes.len());
        let end = end.ok_or_else(|| state_error("truncated replica state"))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| state_error("non-UTF8 string in replica state"))
    }

    fn stamp(&mut self) -> Result<Stamp> {
        Ok(Stamp {
            time: self.u64()?,
            replica: self.str()?,
        })
    }
}

fn state_error(what: &str) -> LdapError {
    LdapError::new(ResultCode::Other, format!("replica state: {what}"))
}

impl Replica {
    /// Serialize the complete replica state (clock, stamped entries and
    /// tombstones, per-peer watermarks) as a self-checksummed byte image.
    /// Map iteration is sorted, so equal states produce equal bytes.
    pub fn export_state(&self) -> Vec<u8> {
        let s = self.state.lock();
        let mut buf = Vec::new();
        buf.extend_from_slice(STATE_MAGIC);
        buf.push(STATE_VERSION);
        put_str(&mut buf, &self.id);
        buf.extend_from_slice(&s.clock.to_le_bytes());

        let mut keys: Vec<&String> = s.entries.keys().collect();
        keys.sort();
        buf.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for key in keys {
            let e = &s.entries[key];
            put_str(&mut buf, key);
            put_str(&mut buf, &e.dn.to_string());
            put_stamp(&mut buf, &e.created);
            match &e.deleted {
                None => buf.push(0),
                Some(d) => {
                    buf.push(1);
                    put_stamp(&mut buf, d);
                }
            }
            let mut attr_keys: Vec<&String> = e.attrs.keys().collect();
            attr_keys.sort();
            buf.extend_from_slice(&(attr_keys.len() as u32).to_le_bytes());
            for ak in attr_keys {
                let (attr, stamp) = &e.attrs[ak];
                put_str(&mut buf, ak);
                put_str(&mut buf, attr.name.as_str());
                buf.extend_from_slice(&(attr.values.len() as u32).to_le_bytes());
                for v in &attr.values {
                    put_str(&mut buf, v);
                }
                put_stamp(&mut buf, stamp);
            }
        }

        let mut peers: Vec<&String> = s.watermarks.keys().collect();
        peers.sort();
        buf.extend_from_slice(&(peers.len() as u32).to_le_bytes());
        for peer in peers {
            let vv = &s.watermarks[peer];
            put_str(&mut buf, peer);
            let mut origins: Vec<&String> = vv.keys().collect();
            origins.sort();
            buf.extend_from_slice(&(origins.len() as u32).to_le_bytes());
            for origin in origins {
                put_str(&mut buf, origin);
                buf.extend_from_slice(&vv[origin].to_le_bytes());
            }
        }

        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Replace this replica's state with a previously exported image.
    /// Verifies the checksum and the embedded replica id, so a corrupt file
    /// or one belonging to a different replica is rejected wholesale (the
    /// in-memory state is untouched on error).
    pub fn import_state(&self, bytes: &[u8]) -> Result<()> {
        if bytes.len() < 4 {
            return Err(state_error("too short for checksum"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(tail.try_into().expect("4"));
        let got = crc32(body);
        if got != want {
            return Err(state_error(&format!(
                "checksum mismatch (stored {want:08x}, computed {got:08x})"
            )));
        }
        let mut r = Reader { bytes: body, at: 0 };
        if r.take(4)? != STATE_MAGIC {
            return Err(state_error("bad magic"));
        }
        let version = r.u8()?;
        if version != STATE_VERSION {
            return Err(state_error(&format!("unknown version {version}")));
        }
        let id = r.str()?;
        if id != self.id {
            return Err(state_error(&format!(
                "belongs to replica `{id}`, this is `{}`",
                self.id
            )));
        }
        let clock = r.u64()?;

        let n_entries = r.u32()?;
        let mut entries = HashMap::with_capacity(n_entries as usize);
        for _ in 0..n_entries {
            let key = r.str()?;
            let dn = Dn::parse(&r.str()?)?;
            let created = r.stamp()?;
            let deleted = match r.u8()? {
                0 => None,
                _ => Some(r.stamp()?),
            };
            let n_attrs = r.u32()?;
            let mut attrs = HashMap::with_capacity(n_attrs as usize);
            for _ in 0..n_attrs {
                let ak = r.str()?;
                let name = r.str()?;
                let n_values = r.u32()?;
                let mut values = Vec::with_capacity(n_values as usize);
                for _ in 0..n_values {
                    values.push(r.str()?);
                }
                let stamp = r.stamp()?;
                attrs.insert(ak, (Attribute::new(name, values), stamp));
            }
            entries.insert(
                key,
                ReplEntry {
                    dn,
                    attrs,
                    created,
                    deleted,
                },
            );
        }

        let n_peers = r.u32()?;
        let mut watermarks = HashMap::with_capacity(n_peers as usize);
        for _ in 0..n_peers {
            let peer = r.str()?;
            let n_origins = r.u32()?;
            let mut vv = VersionVector::with_capacity(n_origins as usize);
            for _ in 0..n_origins {
                let origin = r.str()?;
                vv.insert(origin, r.u64()?);
            }
            watermarks.insert(peer, vv);
        }

        *self.state.lock() = State {
            clock,
            entries,
            watermarks,
        };
        Ok(())
    }

    /// Persist the state image crash-safely (tmp + fsync + atomic rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.export_state())
    }

    /// Restore state from `path` if it exists and verifies. Returns `false`
    /// when the file is absent (fresh replica); corrupt files are an error
    /// so the caller can decide between failing and starting fresh.
    pub fn restore(&self, path: &Path) -> Result<bool> {
        match std::fs::read(path) {
            Ok(bytes) => {
                self.import_state(&bytes)?;
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }
}

/// Error helper shared with the rest of the crate.
impl Replica {
    /// Like [`Replica::set_attr`] but fails with `NoSuchAttribute`-style
    /// context when the attribute was never written (used by tests).
    pub fn attr_stamp(&self, dn: &Dn, attr: &str) -> Result<Stamp> {
        let s = self.state.lock();
        s.entries
            .get(&dn.norm_key())
            .and_then(|e| e.attrs.get(&attr.to_ascii_lowercase()))
            .map(|(_, st)| st.clone())
            .ok_or_else(|| {
                LdapError::new(
                    ResultCode::NoSuchAttribute,
                    format!("no stamped attribute `{attr}` on `{dn}`"),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dn: &str, phone: &str) -> Entry {
        Entry::with_attrs(
            Dn::parse(dn).unwrap(),
            [
                ("objectClass", "person"),
                ("cn", "J"),
                ("sn", "D"),
                ("telephoneNumber", phone),
            ],
        )
    }

    #[test]
    fn basic_put_get_delete() {
        let r = Replica::new("r1");
        let dn = Dn::parse("cn=J,o=L").unwrap();
        r.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        assert_eq!(r.get(&dn).unwrap().first("telephoneNumber"), Some("1"));
        r.delete_entry(&dn).unwrap();
        assert!(r.get(&dn).is_none());
        assert!(r.set_attr(&dn, Attribute::single("sn", "X")).is_err());
    }

    #[test]
    fn concurrent_attr_writes_converge_lww() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.sync_with(&b);
        let dn = Dn::parse("cn=J,o=L").unwrap();
        // Concurrent independent writes to the SAME attribute.
        a.set_attr(&dn, Attribute::single("telephoneNumber", "from-a"))
            .unwrap();
        b.set_attr(&dn, Attribute::single("telephoneNumber", "from-b"))
            .unwrap();
        a.sync_with(&b);
        assert_eq!(a.digest(), b.digest(), "replicas must converge");
        // Winner is deterministic: equal times tie-break on replica id "b" > "a".
        assert_eq!(a.get(&dn).unwrap().first("telephoneNumber"), Some("from-b"));
    }

    #[test]
    fn disjoint_attr_writes_both_survive() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.sync_with(&b);
        let dn = Dn::parse("cn=J,o=L").unwrap();
        a.set_attr(&dn, Attribute::single("mail", "j@l.com"))
            .unwrap();
        b.set_attr(&dn, Attribute::single("roomNumber", "2B-401"))
            .unwrap();
        a.sync_with(&b);
        let merged = a.get(&dn).unwrap();
        assert_eq!(merged.first("mail"), Some("j@l.com"));
        assert_eq!(merged.first("roomNumber"), Some("2B-401"));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn delete_vs_update_resolved_by_stamp() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.sync_with(&b);
        let dn = Dn::parse("cn=J,o=L").unwrap();
        // b deletes, then a recreates with a later logical history after syncing.
        b.delete_entry(&dn).unwrap();
        b.sync_with(&a);
        assert!(a.get(&dn).is_none(), "delete propagates");
        a.put_entry(&entry("cn=J,o=L", "2")).unwrap();
        a.sync_with(&b);
        assert!(b.get(&dn).is_some(), "recreate wins over older tombstone");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn three_replicas_converge_via_chain() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        let c = Replica::new("c");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.put_entry(&entry("cn=K,o=L", "2")).unwrap();
        a.sync_with(&b);
        b.sync_with(&c);
        let dn_j = Dn::parse("cn=J,o=L").unwrap();
        let dn_k = Dn::parse("cn=K,o=L").unwrap();
        a.set_attr(&dn_j, Attribute::single("telephoneNumber", "11"))
            .unwrap();
        b.set_attr(&dn_k, Attribute::single("telephoneNumber", "22"))
            .unwrap();
        c.delete_entry(&dn_j).unwrap();
        // Chain topology: a<->b, b<->c, a<->b again.
        a.sync_with(&b);
        b.sync_with(&c);
        a.sync_with(&b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.digest(), c.digest());
    }

    #[test]
    fn sync_is_idempotent() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.sync_with(&b);
        let d1 = a.digest();
        a.sync_with(&b);
        a.sync_with(&b);
        assert_eq!(a.digest(), d1);
        assert_eq!(b.digest(), d1);
    }

    #[test]
    fn second_sync_ships_nothing() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        for i in 0..20 {
            a.put_entry(&entry(&format!("cn=e{i},o=L"), "1")).unwrap();
        }
        let first = a.anti_entropy(&b);
        assert!(first.full_exchange, "first contact is a full exchange");
        assert_eq!(first.entries_shipped, 20);
        let second = a.anti_entropy(&b);
        assert!(!second.full_exchange);
        assert_eq!(second.entries_shipped, 0, "nothing dirty, nothing shipped");
        assert_eq!(second.bytes_shipped, 0);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn delta_ships_only_dirty_entries() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        for i in 0..100 {
            a.put_entry(&entry(&format!("cn=e{i},o=L"), "1")).unwrap();
        }
        let full = a.anti_entropy(&b);
        // Touch one entry out of a hundred.
        a.set_attr(
            &Dn::parse("cn=e42,o=L").unwrap(),
            Attribute::single("telephoneNumber", "9"),
        )
        .unwrap();
        let delta = a.anti_entropy(&b);
        assert_eq!(delta.entries_shipped, 1);
        assert_eq!(delta.attrs_shipped, 1);
        assert!(
            delta.bytes_shipped * 10 <= full.bytes_shipped,
            "1% dirty must ship ≤10% of full bytes ({} vs {})",
            delta.bytes_shipped,
            full.bytes_shipped
        );
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn transitive_old_stamp_propagates() {
        // A and B exchange a lot, pumping their clocks high. C is a fresh
        // replica whose writes carry low Lamport times. A scalar watermark
        // would hide C's writes from B; per-origin vectors must not.
        let a = Replica::new("a");
        let b = Replica::new("b");
        let c = Replica::new("c");
        for i in 0..10 {
            a.put_entry(&entry(&format!("cn=ab{i},o=L"), "1")).unwrap();
            a.sync_with(&b);
            b.set_attr(
                &Dn::parse(&format!("cn=ab{i},o=L")).unwrap(),
                Attribute::single("telephoneNumber", "2"),
            )
            .unwrap();
            b.sync_with(&a);
        }
        // C's create carries time 1 — far below A/B's clocks.
        c.put_entry(&entry("cn=late,o=L", "c-phone")).unwrap();
        a.sync_with(&c);
        a.sync_with(&b); // non-first contact: delta path
        let dn = Dn::parse("cn=late,o=L").unwrap();
        assert_eq!(
            b.get(&dn)
                .map(|e| e.first("telephoneNumber").map(String::from)),
            Some(Some("c-phone".into())),
            "old-stamped write from a third replica must survive the delta path"
        );
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn delta_and_full_paths_agree() {
        // Same script on two replica pairs; one pair syncs via deltas, the
        // other via full exchanges. Digests must be bit-identical.
        let run = |use_delta: bool| {
            let a = Replica::new("a");
            let b = Replica::new("b");
            let sync = |x: &Replica, y: &Replica| {
                if use_delta {
                    x.anti_entropy(y);
                } else {
                    x.full_sync_with(y);
                }
            };
            a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
            sync(&a, &b);
            let dn = Dn::parse("cn=J,o=L").unwrap();
            a.set_attr(&dn, Attribute::single("mail", "j@l.com"))
                .unwrap();
            b.delete_entry(&dn).unwrap();
            sync(&b, &a);
            b.put_entry(&entry("cn=K,o=L", "2")).unwrap();
            sync(&a, &b);
            (a.digest(), b.digest())
        };
        let (da, db) = run(true);
        let (fa, fb) = run(false);
        assert_eq!(da, db);
        assert_eq!(da, fa);
        assert_eq!(fa, fb);
    }

    #[test]
    fn push_to_is_one_directional() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        b.put_entry(&entry("cn=K,o=L", "2")).unwrap();
        let stats = a.push_to(&b);
        assert_eq!(stats.entries_shipped, 1);
        let dn_j = Dn::parse("cn=J,o=L").unwrap();
        let dn_k = Dn::parse("cn=K,o=L").unwrap();
        assert!(b.get(&dn_j).is_some(), "push delivers");
        assert!(a.get(&dn_k).is_none(), "nothing flows back");
        // The follow-up push ships nothing.
        let again = a.push_to(&b);
        assert_eq!(again.entries_shipped, 0);
    }

    #[test]
    fn watermarks_are_recorded_per_peer() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        assert!(a.watermark_for("b").is_none());
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.anti_entropy(&b);
        let wm = a.watermark_for("b").expect("watermark stored after sync");
        assert_eq!(wm, a.version_vector());
        assert_eq!(b.watermark_for("a").unwrap(), b.version_vector());
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("metacomm-repl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn state_round_trip_preserves_digest_and_clock() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        a.put_entry(&entry("cn=K,o=L", "2")).unwrap();
        a.anti_entropy(&b);
        let dn = Dn::parse("cn=K,o=L").unwrap();
        b.delete_entry(&dn).unwrap(); // tombstone must survive
        b.anti_entropy(&a);

        let restored = Replica::new("a");
        restored.import_state(&a.export_state()).unwrap();
        assert_eq!(restored.digest(), a.digest());
        assert_eq!(restored.version_vector(), a.version_vector());
        assert_eq!(restored.watermark_for("b"), a.watermark_for("b"));
        assert!(restored.get(&dn).is_none(), "tombstone survived");
        // Clock survives: the next local write must stamp above everything.
        restored
            .set_attr(
                &Dn::parse("cn=J,o=L").unwrap(),
                Attribute::single("telephoneNumber", "99"),
            )
            .unwrap();
        restored.anti_entropy(&b);
        assert_eq!(
            b.get(&Dn::parse("cn=J,o=L").unwrap())
                .unwrap()
                .first("telephoneNumber"),
            Some("99"),
            "post-restore write wins LWW because the clock was persisted"
        );
    }

    #[test]
    fn restarted_replica_resumes_delta_not_full() {
        let a = Replica::new("a");
        let b = Replica::new("b");
        for i in 0..50 {
            a.put_entry(&entry(&format!("cn=e{i},o=L"), "1")).unwrap();
        }
        a.anti_entropy(&b);
        let path = tmpfile("repl-a.state");
        a.save(&path).unwrap();

        // "Restart": a fresh process-lifetime Replica restored from disk.
        let a2 = Replica::new("a");
        assert!(a2.restore(&path).unwrap());
        a2.set_attr(
            &Dn::parse("cn=e7,o=L").unwrap(),
            Attribute::single("telephoneNumber", "9"),
        )
        .unwrap();
        let stats = a2.anti_entropy(&b);
        assert!(
            !stats.full_exchange,
            "persisted watermarks must avoid the full resync"
        );
        assert_eq!(stats.entries_shipped, 1, "only the dirty entry ships");
        assert_eq!(a2.digest(), b.digest());
    }

    #[test]
    fn corrupt_or_foreign_state_rejected() {
        let a = Replica::new("a");
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        let mut bytes = a.export_state();
        // Flip one byte in the middle: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let fresh = Replica::new("a");
        assert!(fresh.import_state(&bytes).is_err());
        assert!(fresh.is_empty(), "failed import leaves state untouched");
        // A valid image for a different replica id is also rejected.
        let other = Replica::new("b");
        assert!(other.import_state(&a.export_state()).is_err());
        // Restoring a missing file is not an error — just a fresh start.
        assert!(!fresh.restore(&tmpfile("absent.state")).unwrap());
    }

    #[test]
    fn attr_stamps_advance() {
        let a = Replica::new("a");
        let dn = Dn::parse("cn=J,o=L").unwrap();
        a.put_entry(&entry("cn=J,o=L", "1")).unwrap();
        let s1 = a.attr_stamp(&dn, "telephoneNumber").unwrap();
        a.set_attr(&dn, Attribute::single("telephoneNumber", "2"))
            .unwrap();
        let s2 = a.attr_stamp(&dn, "telephoneNumber").unwrap();
        assert!(s2 > s1);
    }
}
