//! Event-driven wire core (Linux): an epoll(7) readiness loop serving
//! thousands of connections from one thread, with a shared decode-worker
//! CPU stage and writev-batched response flushing.
//!
//! This replaces thread-per-connection for connection *count* scaling: a
//! 10k-idle-connection fleet costs one `Conn` struct per client (a
//! nonblocking socket, an incremental [`FrameReader`], and two small
//! queues) instead of 10k parked OS threads and their stacks.
//!
//! ## Architecture
//!
//! ```text
//!              epoll_wait ──► readiness events
//!                 │
//!   accept ◄──────┼──────► per-connection read state machine
//!  (listener)     │        (nonblocking FrameReader → LdapMessage)
//!                 │                │ decoded requests (seq-stamped)
//!                 │                ▼
//!                 │        CPU stage: inline (1 worker) or a shared
//!                 │        worker pool running `prepare_op` — directory
//!                 │        work and response encoding off the loop thread
//!                 │                │ completions (conn, seq, bytes)
//!                 │                ▼
//!              eventfd ◄── workers wake the loop; the loop reorders
//!                 │        completions into request order per connection
//!                 ▼
//!          writev flush: queued response frames coalesce into one
//!          `write_vectored` per readiness cycle (slices capped at the
//!          32 KiB chunk size); partial sends keep EPOLLOUT armed
//! ```
//!
//! Everything the threaded path guarantees is preserved: RFC 2251
//! request-order responses per connection, Notice of Disconnection on
//! malformed frames (written *after* every earlier response), the
//! `connections_open`/`connections_total` gauges, and shutdown that joins
//! the loop and its workers with the gauge drained to zero.
//!
//! ## Syscall surface
//!
//! `epoll_create1`/`epoll_ctl`/`epoll_wait` and `eventfd` are declared
//! here as raw `extern "C"` bindings (the workspace vendors every
//! dependency — no mio/tokio/libc crates); sockets go nonblocking through
//! std, and the writev path is std's `write_vectored`, which issues a
//! single writev(2) per call on Unix.
//!
//! ## Fairness & backpressure
//!
//! The loop is level-triggered. Each readable connection is drained until
//! `WouldBlock` *or* until its in-flight/outbound caps are hit — a
//! connection that pipelines faster than it reads responses gets its read
//! interest parked (`EPOLLIN` dropped) until the flush catches up, so one
//! greedy client cannot queue unbounded memory or starve the loop. Frames
//! already buffered in its `FrameReader` are resumed from the completion
//! path, not from epoll (the kernel no longer knows about those bytes).

use crate::directory::Directory;
use crate::proto::{FrameReader, LdapMessage, ProtocolOp};
use crate::server::{
    disconnect_notice_bytes, prepare_op, render_response, ServerMetrics, FLUSH_CHUNK,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw syscall bindings. The symbols resolve against the C library std
/// already links; no external crate is involved.
mod sys {
    use std::os::fd::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: i32 = 0x80000;
    pub const EFD_NONBLOCK: i32 = 0x800;
    pub const RLIMIT_NOFILE: i32 = 7;

    /// Kernel epoll_event. Packed on x86_64 (the kernel ABI), naturally
    /// aligned elsewhere.
    #[derive(Clone, Copy)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(
            epfd: RawFd,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout_ms: i32,
        ) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn listen(fd: RawFd, backlog: i32) -> i32;
        pub fn read(fd: RawFd, buf: *mut core::ffi::c_void, count: usize) -> isize;
        pub fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
}

/// Thin safe wrapper over an epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    pub fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    pub fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness; retries EINTR. `timeout_ms < 0` blocks forever.
    pub fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            let rc = unsafe {
                sys::epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Cross-thread wakeup for the loop: an eventfd registered in the epoll
/// set. Workers (and `Server::shutdown`) write it; the loop drains it.
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    pub fn new() -> std::io::Result<Waker> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Waker {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    pub fn wake(&self) {
        let one: u64 = 1;
        let f = self.file();
        let _ = (&*f).write_all(&one.to_ne_bytes());
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        let f = self.file();
        while (&*f).read(&mut buf).is_ok() {}
    }

    /// Borrow the fd as a `File` without taking ownership (`ManuallyDrop`
    /// keeps the fd from being double-closed).
    fn file(&self) -> std::mem::ManuallyDrop<std::fs::File> {
        std::mem::ManuallyDrop::new(unsafe { std::fs::File::from_raw_fd(self.fd.as_raw_fd()) })
    }
}

/// Raise `RLIMIT_NOFILE` toward `want` (soft and, when permitted, hard).
/// Returns the soft limit actually in effect — 10k-connection runs call
/// this first so fd exhaustion doesn't masquerade as a server bug.
pub fn raise_nofile_limit(want: u64) -> u64 {
    unsafe {
        let mut lim = sys::Rlimit { cur: 0, max: 0 };
        if sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) != 0 {
            return 0;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        // Try for `want` outright (root may raise the hard limit too).
        if lim.max < want {
            let bigger = sys::Rlimit {
                cur: want,
                max: want,
            };
            if sys::setrlimit(sys::RLIMIT_NOFILE, &bigger) == 0 {
                return want;
            }
        }
        let capped = sys::Rlimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        if sys::setrlimit(sys::RLIMIT_NOFILE, &capped) == 0 {
            capped.cur
        } else {
            lim.cur
        }
    }
}

/// Knobs the event loop runs with (resolved by `ServerBuilder::start`).
pub(crate) struct EventConfig {
    pub workers: usize,
    pub streaming: bool,
    pub idle_timeout: Option<Duration>,
}

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const FIRST_CONN: u64 = 2;
/// Readiness events drained per `epoll_wait`.
const EVENT_BATCH: usize = 1024;
/// Response frames a connection may have queued or in flight before its
/// read interest is parked (decode-ahead depth, like the threaded path's
/// bounded job queue).
const MAX_INFLIGHT: usize = 32;
/// Outbound bytes queued per connection before reads park.
const MAX_OUTBOUND: usize = 1 << 20;
/// Max iovecs per writev call.
const MAX_IOV: usize = 64;
/// First accept-pause backoff after fd exhaustion (doubles per
/// consecutive pause, capped at [`ACCEPT_BACKOFF_MAX`]).
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Ceiling for the accept-pause backoff.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// One decoded request headed for the CPU stage.
struct Job {
    conn: u64,
    seq: u64,
    id: i64,
    op: ProtocolOp,
}

/// One computed response headed back to the loop.
struct Completion {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// Shared state between the loop and the decode-worker pool.
struct Cpu {
    jobs: Mutex<JobQueue>,
    available: Condvar,
    done: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
    dir: Arc<dyn Directory>,
    metrics: Arc<ServerMetrics>,
    streaming: bool,
}

struct JobQueue {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Cpu {
    fn push(&self, job: Job) {
        let mut q = self.jobs.lock();
        q.jobs.push_back(job);
        self.available.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let mut q = self.jobs.lock();
        loop {
            if let Some(j) = q.jobs.pop_front() {
                return Some(j);
            }
            if q.closed {
                return None;
            }
            self.available.wait(&mut q);
        }
    }

    fn close(&self) {
        self.jobs.lock().closed = true;
        self.available.notify_all();
    }

    fn complete(&self, c: Completion) {
        self.done.lock().push(c);
        self.waker.wake();
    }
}

fn worker_loop(cpu: &Cpu) {
    while let Some(job) = cpu.pop() {
        let mut buf = Vec::with_capacity(256);
        let prepared = prepare_op(
            job.id,
            job.op,
            &cpu.dir,
            &cpu.metrics,
            cpu.streaming,
            &mut buf,
        );
        render_response(&mut buf, job.id, prepared);
        cpu.complete(Completion {
            conn: job.conn,
            seq: job.seq,
            bytes: buf,
        });
    }
}

/// Nonblocking reads straight off a connection's raw fd. The fd is owned
/// by the `Conn`'s `stream` in the same struct, so it outlives the reader;
/// going through the raw fd instead of `try_clone` keeps each connection
/// at ONE file descriptor — at 10k connections a cloned read half would
/// double the fd bill and blow typical container RLIMIT_NOFILE caps.
struct FdReader(RawFd);

impl std::io::Read for FdReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = unsafe { sys::read(self.0, buf.as_mut_ptr().cast(), buf.len()) };
        if n < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    frames: FrameReader<FdReader>,
    /// Next request sequence number to assign.
    next_seq: u64,
    /// Next sequence number to append to `outbound` (request order).
    next_write: u64,
    /// Completed responses waiting for their turn.
    ready: BTreeMap<u64, Vec<u8>>,
    /// In-order encoded responses awaiting socket writability.
    outbound: VecDeque<Vec<u8>>,
    /// Bytes of `outbound.front()` already written.
    out_head: usize,
    /// Total bytes queued in `outbound` (minus `out_head`).
    out_bytes: usize,
    /// Events currently registered with epoll.
    interest: u32,
    /// No further reads; close once everything in flight has flushed.
    closing: bool,
    /// Fatal socket error: close now, drop anything pending.
    dead: bool,
    /// Read interest parked by the inflight/outbound caps.
    paused: bool,
    last_active: Instant,
}

impl Conn {
    fn pending(&self) -> usize {
        (self.next_seq - self.next_write) as usize
    }

    fn over_caps(&self) -> bool {
        self.pending() >= MAX_INFLIGHT || self.out_bytes >= MAX_OUTBOUND
    }

    fn finished(&self) -> bool {
        self.dead || (self.closing && self.pending() == 0 && self.outbound.is_empty())
    }
}

/// What one read pass over a connection concluded.
enum ReadPass {
    /// Drained to `WouldBlock` (or parked by caps); keep serving.
    Continue,
    /// Fatal socket error — close immediately, drop pending output.
    Dead,
}

/// Create the epoll set and register the listener and waker, surfacing
/// setup errors to `ServerBuilder::start` before the loop thread spawns.
pub(crate) fn setup(listener: &TcpListener, waker: &Waker) -> std::io::Result<Epoll> {
    let epoll = Epoll::new()?;
    listener.set_nonblocking(true)?;
    // Widen the accept backlog past std's default 128 (Linux lets a second
    // listen() update it in place; the kernel clamps to somaxconn). At 10k+
    // connection rates an overflowing queue silently drops handshakes,
    // leaving clients that believe they connected but are never accepted.
    if unsafe { sys::listen(listener.as_raw_fd(), 4096) } < 0 {
        return Err(std::io::Error::last_os_error());
    }
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOK_LISTENER)?;
    epoll.add(waker.fd.as_raw_fd(), sys::EPOLLIN, TOK_WAKER)?;
    Ok(epoll)
}

pub(crate) fn serve_event_loop(
    epoll: Epoll,
    listener: TcpListener,
    dir: Arc<dyn Directory>,
    metrics: Arc<ServerMetrics>,
    cfg: EventConfig,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
) {
    let cpu = Arc::new(Cpu {
        jobs: Mutex::new(JobQueue {
            jobs: VecDeque::new(),
            closed: false,
        }),
        available: Condvar::new(),
        done: Mutex::new(Vec::new()),
        waker: waker.clone(),
        dir,
        metrics: metrics.clone(),
        streaming: cfg.streaming,
    });
    let inline = cfg.workers <= 1;
    let workers: Vec<_> = if inline {
        Vec::new()
    } else {
        (0..cfg.workers)
            .map(|i| {
                let cpu = cpu.clone();
                std::thread::Builder::new()
                    .name(format!("ldap-wire-{i}"))
                    .spawn(move || worker_loop(&cpu))
                    .expect("spawn wire worker")
            })
            .collect()
    };

    let mut lp = Loop {
        epoll,
        listener,
        conns: HashMap::new(),
        next_token: FIRST_CONN,
        cpu,
        metrics,
        inline,
        idle_timeout: cfg.idle_timeout,
        last_sweep: Instant::now(),
        accept_paused_until: None,
        accept_backoff: ACCEPT_BACKOFF_MIN,
    };

    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
    let idle_tick_ms = lp
        .idle_timeout
        .map(|t| (t.as_millis() as i64 / 4).clamp(10, 1000) as i32)
        .unwrap_or(-1);
    while !stop.load(Ordering::SeqCst) {
        let n = match lp.epoll.wait(&mut events, lp.wait_timeout_ms(idle_tick_ms)) {
            Ok(n) => n,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        for ev in &events[..n] {
            let token = ev.data;
            match token {
                TOK_LISTENER => lp.accept_ready(),
                TOK_WAKER => waker.drain(),
                t => lp.handle_conn_event(t, ev.events),
            }
        }
        lp.pump_completions();
        lp.maybe_resume_accept();
        lp.sweep_idle();
    }

    // Shutdown: stop the CPU stage, join the workers, force-close every
    // connection, drain the open-connections gauge to zero.
    lp.cpu.close();
    for w in workers {
        let _ = w.join();
    }
    let conns = std::mem::take(&mut lp.conns);
    for (_, conn) in conns {
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        lp.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
    }
}

struct Loop {
    epoll: Epoll,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    cpu: Arc<Cpu>,
    metrics: Arc<ServerMetrics>,
    inline: bool,
    idle_timeout: Option<Duration>,
    last_sweep: Instant,
    /// Accepting is paused (listener deregistered from epoll) until this
    /// deadline — set when `accept(2)` fails with fd exhaustion. With a
    /// level-triggered listener, leaving the fd registered while the
    /// backlog is non-empty would wake `epoll_wait` instantly forever: a
    /// hot spin that starves every live connection. Parking the fd and
    /// re-arming on a timer bounds the retry rate instead.
    accept_paused_until: Option<Instant>,
    /// Next pause duration; doubles per consecutive failed resume, resets
    /// on any successful accept.
    accept_backoff: Duration,
}

impl Loop {
    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    return;
                }
                // A handshake that died in the backlog; try the next one.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // EMFILE/ENFILE and friends: the process is out of fds, and
                // the condition clears only when something else closes one.
                // Park the listener and retry on a bounded backoff.
                Err(_) => {
                    self.pause_accept();
                    return;
                }
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let token = self.next_token;
            self.next_token += 1;
            let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
            if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
                continue;
            }
            self.metrics
                .connections_total
                .fetch_add(1, Ordering::Relaxed);
            self.metrics
                .connections_open
                .fetch_add(1, Ordering::Relaxed);
            self.conns.insert(
                token,
                Conn {
                    frames: FrameReader::new(FdReader(stream.as_raw_fd())),
                    stream,
                    next_seq: 0,
                    next_write: 0,
                    ready: BTreeMap::new(),
                    outbound: VecDeque::new(),
                    out_head: 0,
                    out_bytes: 0,
                    interest,
                    closing: false,
                    dead: false,
                    paused: false,
                    last_active: Instant::now(),
                },
            );
        }
    }

    /// Deregister the listener and schedule a re-arm. Pending handshakes
    /// sit in the (4096-deep) accept backlog meanwhile; the kernel keeps
    /// the listener readable, so re-adding the fd is all a resume takes.
    fn pause_accept(&mut self) {
        if self.accept_paused_until.is_some() {
            return;
        }
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        self.accept_paused_until = Some(Instant::now() + self.accept_backoff);
        self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
        self.metrics.accept_pauses.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-register the listener once the pause deadline passes and try to
    /// accept immediately. If fds are still exhausted, `accept_ready`
    /// pauses again with the next (doubled) backoff.
    fn maybe_resume_accept(&mut self) {
        let Some(deadline) = self.accept_paused_until else {
            return;
        };
        if Instant::now() < deadline {
            return;
        }
        self.accept_paused_until = None;
        if self
            .epoll
            .add(self.listener.as_raw_fd(), sys::EPOLLIN, TOK_LISTENER)
            .is_err()
        {
            // Adding the listener itself needs a free slot in some kernels'
            // accounting; treat it as still-exhausted and back off again.
            self.accept_paused_until = Some(Instant::now() + self.accept_backoff);
            self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            return;
        }
        self.accept_ready();
    }

    /// The `epoll_wait` timeout this iteration needs: the idle-sweep tick
    /// and/or the accept re-arm deadline, whichever is sooner (−1 blocks
    /// forever when neither applies).
    fn wait_timeout_ms(&self, idle_tick_ms: i32) -> i32 {
        let mut timeout = idle_tick_ms;
        if let Some(deadline) = self.accept_paused_until {
            let rearm = deadline
                .saturating_duration_since(Instant::now())
                .as_millis() as i32
                + 1;
            timeout = if timeout < 0 {
                rearm
            } else {
                timeout.min(rearm)
            };
        }
        timeout
    }

    fn handle_conn_event(&mut self, token: u64, events: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.last_active = Instant::now();
        let readable =
            events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0;
        self.tend(token, readable);
    }

    /// Run one full service pass over a connection: read what's readable,
    /// move completed responses into the outbound queue, flush, adjust
    /// epoll interest, and close if finished.
    fn tend(&mut self, token: u64, read_now: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if read_now && !conn.closing && !conn.dead {
            if let ReadPass::Dead = drain_reads(conn, token, &self.cpu, self.inline) {
                conn.dead = true;
            }
        }
        self.settle(token);
    }

    /// Post-read/post-completion bookkeeping for one connection.
    fn settle(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        loop {
            // Promote ready responses into the outbound queue in request
            // order.
            while let Some(bytes) = conn.ready.remove(&conn.next_write) {
                conn.out_bytes += bytes.len();
                conn.outbound.push_back(bytes);
                conn.next_write += 1;
            }
            if !conn.dead && flush_out(conn).is_err() {
                conn.dead = true;
            }
            // Un-park reads once back under the caps; frames may already
            // be buffered in the FrameReader, so read immediately — epoll
            // will never signal for bytes the kernel no longer holds.
            if conn.paused && !conn.over_caps() && !conn.closing && !conn.dead {
                conn.paused = false;
                if let ReadPass::Dead = drain_reads(conn, token, &self.cpu, self.inline) {
                    conn.dead = true;
                }
                // The drain may have re-parked or produced inline output;
                // go around again.
                continue;
            }
            break;
        }
        conn.paused = conn.over_caps() && !conn.closing && !conn.dead;
        if conn.finished() {
            self.close_conn(token);
            return;
        }
        // Keep epoll interest in sync with what the state machine needs.
        let mut want = 0u32;
        if !conn.closing && !conn.paused {
            want |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if !conn.outbound.is_empty() {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.epoll.modify(fd, want, token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.metrics
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Route completed responses from the CPU stage into their
    /// connections, then service every touched connection. Loops until no
    /// new completions appear (inline resumes can produce more).
    fn pump_completions(&mut self) {
        loop {
            let batch: Vec<Completion> = std::mem::take(&mut *self.cpu.done.lock());
            if batch.is_empty() {
                return;
            }
            let mut touched: Vec<u64> = Vec::with_capacity(batch.len());
            for c in batch {
                if let Some(conn) = self.conns.get_mut(&c.conn) {
                    conn.ready.insert(c.seq, c.bytes);
                    if touched.last() != Some(&c.conn) {
                        touched.push(c.conn);
                    }
                }
                // else: the connection died before its response computed —
                // the threaded path drops these writes too.
            }
            touched.sort_unstable();
            touched.dedup();
            for t in touched {
                self.settle(t);
            }
        }
    }

    /// Shed connections that have been idle past the configured timeout.
    ///
    /// "Idle" means *nothing is happening on either side*: a connection
    /// with requests still in the CPU stage (`pending() > 0` — decode jobs
    /// in flight or responses awaiting their request-order turn) or with
    /// unflushed outbound bytes is mid-conversation, however long ago its
    /// socket last signalled. `last_active` is only stamped by readiness
    /// events and successful flush progress, so a slow reader draining a
    /// multi-megabyte response — or a deep pipeline parked behind the
    /// outbound cap — must not be evicted on the wall clock alone.
    fn sweep_idle(&mut self) {
        let Some(limit) = self.idle_timeout else {
            return;
        };
        let interval = (limit / 4).min(Duration::from_secs(1));
        if self.last_sweep.elapsed() < interval {
            return;
        }
        self.last_sweep = Instant::now();
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.last_active.elapsed() >= limit && c.pending() == 0 && c.outbound.is_empty()
            })
            .map(|(t, _)| *t)
            .collect();
        for t in idle {
            self.metrics.disconnect_idle.fetch_add(1, Ordering::Relaxed);
            self.close_conn(t);
        }
    }
}

/// Read and decode frames until `WouldBlock`, EOF, a malformed frame, or
/// the connection's caps park it. Decoded requests go to the CPU stage
/// (inline or pool) stamped with their per-connection sequence number.
fn drain_reads(conn: &mut Conn, token: u64, cpu: &Cpu, inline: bool) -> ReadPass {
    loop {
        if conn.over_caps() {
            conn.paused = true;
            return ReadPass::Continue;
        }
        let msg = match conn.frames.next_frame() {
            Ok(Some(frame)) => match LdapMessage::decode(frame) {
                Ok(m) => m,
                Err(e) => {
                    cpu.metrics.decode_failures.fetch_add(1, Ordering::Relaxed);
                    queue_disconnect(conn, cpu, &e.message);
                    return ReadPass::Continue;
                }
            },
            Ok(None) => {
                // Clean EOF: flush whatever is still in flight, then close.
                conn.closing = true;
                return ReadPass::Continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return ReadPass::Continue,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                cpu.metrics.decode_failures.fetch_add(1, Ordering::Relaxed);
                queue_disconnect(conn, cpu, &e.to_string());
                return ReadPass::Continue;
            }
            // Mid-frame EOF, ECONNRESET, and anything else fatal.
            Err(_) => return ReadPass::Dead,
        };
        match msg.op {
            ProtocolOp::UnbindRequest => {
                cpu.metrics.unbinds.fetch_add(1, Ordering::Relaxed);
                conn.closing = true;
                return ReadPass::Continue;
            }
            op => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                if inline {
                    let mut buf = Vec::with_capacity(256);
                    let prepared =
                        prepare_op(msg.id, op, &cpu.dir, &cpu.metrics, cpu.streaming, &mut buf);
                    render_response(&mut buf, msg.id, prepared);
                    conn.ready.insert(seq, buf);
                } else {
                    cpu.push(Job {
                        conn: token,
                        seq,
                        id: msg.id,
                        op,
                    });
                }
            }
        }
    }
}

/// Queue the RFC 2251 Notice of Disconnection *after* every earlier
/// response (it takes the next sequence slot) and stop reading.
fn queue_disconnect(conn: &mut Conn, cpu: &Cpu, detail: &str) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    conn.ready
        .insert(seq, disconnect_notice_bytes(&cpu.metrics, detail));
    conn.closing = true;
}

/// Coalesce the outbound queue into writev batches until the socket would
/// block or the queue empties. Slices are capped at [`FLUSH_CHUNK`] so a
/// multi-megabyte streamed search never forms one giant iovec.
fn flush_out(conn: &mut Conn) -> std::io::Result<()> {
    loop {
        if conn.outbound.is_empty() {
            return Ok(());
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV);
        let mut skip = conn.out_head;
        'gather: for buf in conn.outbound.iter() {
            let mut rest = &buf[skip..];
            skip = 0;
            while !rest.is_empty() {
                if slices.len() == MAX_IOV {
                    break 'gather;
                }
                let take = rest.len().min(FLUSH_CHUNK);
                slices.push(IoSlice::new(&rest[..take]));
                rest = &rest[take..];
            }
        }
        let wrote = match (&conn.stream).write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket wrote zero bytes",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        conn.last_active = Instant::now();
        conn.out_bytes -= wrote;
        let mut left = wrote;
        while left > 0 {
            let front_remaining = conn.outbound[0].len() - conn.out_head;
            if left >= front_remaining {
                left -= front_remaining;
                conn.out_head = 0;
                conn.outbound.pop_front();
            } else {
                conn.out_head += left;
                left = 0;
            }
        }
    }
}
