//! Horizontal DN-subtree sharding: a [`ShardMap`] that assigns DIT
//! subtrees to N backend servers, and a [`ShardRouter`] that exposes the
//! whole fleet as one [`Directory`].
//!
//! The paper's meta-directory is a single DIT behind one lock domain;
//! millions of users need the tree *partitioned* across server processes.
//! The router is deliberately dumb and stateless — all placement policy
//! lives in the `ShardMap`, all data lives in the shards:
//!
//! - **Single-DN operations** (add/delete/modify/compare/bind lookups)
//!   forward to the shard owning the DN — the deepest assigned subtree
//!   containing it, else the *default shard*, which owns everything not
//!   explicitly assigned (the naming spine above the partition roots,
//!   in particular).
//! - **Searches** that land inside one owned region forward whole; a
//!   search whose scope spans regions is *scattered*: the owner of the
//!   base serves the original query, and every assigned subtree under
//!   the base that lives on a different shard gets a **clipped**
//!   sub-query rooted at its partition root. Because writes route the
//!   same way, each entry physically exists on exactly one shard and the
//!   gathered streams are disjoint by construction — no dedup pass, no
//!   result-set materialization beyond what the caller asked for.
//! - **sizeLimit** keeps RFC 2251 semantics across the fan-out: targets
//!   are drained sequentially with the remaining budget; once the budget
//!   is spent, the rest of the plan is probed with a 1-entry query so
//!   `sizeLimitExceeded` (code 4, partial entries delivered) is raised
//!   exactly when more than `size_limit` entries match fleet-wide.
//!
//! ## Deployment invariants (see DESIGN.md §15)
//!
//! 1. Every write goes through the router (or routes identically).
//!    Writing straight to a shard for a DN it does not own creates an
//!    entry no search plan will ever surface.
//! 2. Each shard is seeded with the naming spine above its partition
//!    roots (parents must exist for adds). Spine *copies* on non-owning
//!    shards are never surfaced: clipped sub-queries start at partition
//!    roots, below the copies.
//! 3. ModifyDN that would move an entry between shards is refused with
//!    `unwillingToPerform` (the closest cousin of X.511's
//!    `affectsMultipleDSAs` our code set has) — same-shard renames pass
//!    through untouched.
//! 4. A down shard fails its own region loudly (`unavailable` from the
//!    TCP client) instead of silently returning partial data: a scatter
//!    hitting a dead shard surfaces the error, it does not skip it.
//!
//! Each shard keeps its own durability dir and its own per-peer delta
//! anti-entropy (PR 5/6) — sharding composes with, and changes nothing
//! about, the replication and WAL layers.

use crate::client::TcpDirectory;
use crate::directory::Directory;
use crate::dit::Scope;
use crate::dn::{Dn, Rdn};
use crate::entry::{Entry, Modification};
use crate::error::{LdapError, Result, ResultCode};
use crate::filter::Filter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Assignment of DN subtrees to shard indices.
///
/// Routing rule: the deepest assigned subtree containing a DN owns it;
/// DNs inside no assigned subtree belong to the *default shard*
/// (index 0 unless overridden). Assignments may nest — a subtree
/// assigned inside another subtree carves its region out of the
/// enclosing shard.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    default_shard: usize,
    /// `(subtree root, shard)`, sorted deepest-first so the first
    /// containing assignment is the deepest.
    assignments: Vec<(Dn, usize)>,
}

/// One sub-query of a scattered search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchTarget {
    pub shard: usize,
    pub base: Dn,
    pub scope: Scope,
    /// `true` for clipped partition-root sub-queries, whose base may not
    /// exist yet (`noSuchObject` from a clip means "empty region", not an
    /// error); the primary target's `noSuchObject` is the real thing.
    pub clipped: bool,
}

impl ShardMap {
    /// A map over `shards` backends with no assignments yet: everything
    /// routes to the default shard.
    pub fn new(shards: usize) -> ShardMap {
        assert!(shards >= 1, "a shard map needs at least one shard");
        ShardMap {
            shards,
            default_shard: 0,
            assignments: Vec::new(),
        }
    }

    /// Assign the subtree rooted at `root` (inclusive) to `shard`.
    pub fn assign(mut self, root: Dn, shard: usize) -> Result<ShardMap> {
        if shard >= self.shards {
            return Err(LdapError::new(
                ResultCode::UnwillingToPerform,
                format!("shard {shard} out of range (map has {})", self.shards),
            ));
        }
        if root.is_root() {
            return Err(LdapError::new(
                ResultCode::UnwillingToPerform,
                "cannot assign the DIT root; use the default shard for unassigned space",
            ));
        }
        if self.assignments.iter().any(|(r, _)| *r == root) {
            return Err(LdapError::new(
                ResultCode::UnwillingToPerform,
                format!("subtree `{root}` assigned twice"),
            ));
        }
        self.assignments.push((root, shard));
        // Deepest-first, then lexicographic for determinism.
        self.assignments.sort_by(|(a, _), (b, _)| {
            b.depth()
                .cmp(&a.depth())
                .then(a.norm_key().cmp(&b.norm_key()))
        });
        Ok(self)
    }

    /// Route DNs inside no assigned subtree to `shard` instead of 0.
    pub fn with_default_shard(mut self, shard: usize) -> ShardMap {
        assert!(shard < self.shards, "default shard out of range");
        self.default_shard = shard;
        self
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    pub fn default_shard(&self) -> usize {
        self.default_shard
    }

    /// The assigned subtrees, deepest-first.
    pub fn assignments(&self) -> &[(Dn, usize)] {
        &self.assignments
    }

    /// The shard owning `dn`.
    pub fn shard_for(&self, dn: &Dn) -> usize {
        self.assignments
            .iter()
            .find(|(root, _)| dn.is_within(root))
            .map(|(_, shard)| *shard)
            .unwrap_or(self.default_shard)
    }

    /// The scatter/gather plan for a search: the owner of `base` serves
    /// the original query first, then every assigned subtree under `base`
    /// living on a *different* shard gets a clipped sub-query at its
    /// partition root. A clip is dropped when an enclosing clip on the
    /// same shard already covers it (the entries live in one DIT).
    pub fn plan(&self, base: &Dn, scope: Scope) -> Vec<SearchTarget> {
        let owner = self.shard_for(base);
        let mut plan = vec![SearchTarget {
            shard: owner,
            base: base.clone(),
            scope,
            clipped: false,
        }];
        if scope == Scope::Base {
            return plan;
        }
        // Shallowest-first so enclosing clips are emitted before the
        // nested assignments they cover.
        let mut nested: Vec<&(Dn, usize)> = self
            .assignments
            .iter()
            .filter(|(root, _)| root.is_within(base) && root != base)
            .collect();
        nested.sort_by(|(a, _), (b, _)| {
            a.depth()
                .cmp(&b.depth())
                .then(a.norm_key().cmp(&b.norm_key()))
        });
        for (root, shard) in nested {
            if *shard == owner {
                continue; // physically in the owner's DIT: the primary query covers it
            }
            let clip_scope = match scope {
                Scope::Sub => Scope::Sub,
                Scope::One => {
                    // Only partition roots that are direct children of the
                    // base are in a one-level result set.
                    if root.parent().as_ref() == Some(base) {
                        Scope::Base
                    } else {
                        continue;
                    }
                }
                Scope::Base => unreachable!("base scope returned above"),
            };
            let covered = plan.iter().any(|t| {
                t.clipped && t.shard == *shard && t.scope == Scope::Sub && root.is_within(&t.base)
            });
            if covered {
                continue;
            }
            plan.push(SearchTarget {
                shard: *shard,
                base: root.clone(),
                scope: clip_scope,
                clipped: true,
            });
        }
        plan
    }

    /// The naming spine a shard must be seeded with: every proper
    /// ancestor (below the DIT root) of each subtree assigned to `shard`,
    /// outermost first — parents must exist before partitioned adds land.
    pub fn spine_for(&self, shard: usize) -> Vec<Dn> {
        let mut spine: Vec<Dn> = Vec::new();
        for (root, s) in &self.assignments {
            if *s != shard {
                continue;
            }
            let mut cur = root.parent();
            while let Some(dn) = cur {
                if dn.is_root() {
                    break;
                }
                if !spine.contains(&dn) {
                    spine.push(dn.clone());
                }
                cur = dn.parent();
            }
        }
        spine.sort_by_key(|d| d.depth());
        spine
    }
}

/// Fan-out counters the router keeps; exported into `cn=monitor` as the
/// `shard` component (see `metacomm::obs`).
#[derive(Debug)]
pub struct ShardMetrics {
    /// Single-DN operations forwarded, per shard.
    pub ops_routed: Vec<AtomicU64>,
    /// Searches answered by one shard (base inside one owned region).
    pub searches_single: AtomicU64,
    /// Searches scattered across shards.
    pub searches_fanout: AtomicU64,
    /// Clipped sub-queries issued by scattered searches.
    pub fanout_subqueries: AtomicU64,
    /// 1-entry probes issued after a size limit was exhausted mid-plan.
    pub limit_probes: AtomicU64,
    /// ModifyDN requests refused because they crossed shards.
    pub renames_refused: AtomicU64,
}

impl ShardMetrics {
    fn new(shards: usize) -> ShardMetrics {
        ShardMetrics {
            ops_routed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            searches_single: AtomicU64::new(0),
            searches_fanout: AtomicU64::new(0),
            fanout_subqueries: AtomicU64::new(0),
            limit_probes: AtomicU64::new(0),
            renames_refused: AtomicU64::new(0),
        }
    }

    /// Total single-DN operations forwarded.
    pub fn ops_total(&self) -> u64 {
        self.ops_routed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// A [`Directory`] over a fleet of shard backends. Serve it with
/// [`crate::server::Server`] and any LDAP client talks to the fleet as if
/// it were one server — binds included: the wire server's bind handler
/// resolves credentials through [`Directory::get`], which routes to the
/// shard owning the bind DN.
pub struct ShardRouter {
    map: ShardMap,
    backends: Vec<Arc<dyn Directory>>,
    metrics: Arc<ShardMetrics>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.backends.len())
            .finish_non_exhaustive()
    }
}

impl ShardRouter {
    /// Route over already-connected backends (in-process DITs, TCP
    /// clients, or a mix — anything implementing [`Directory`]).
    pub fn new(map: ShardMap, backends: Vec<Arc<dyn Directory>>) -> Result<Arc<ShardRouter>> {
        if backends.len() != map.shards() {
            return Err(LdapError::new(
                ResultCode::UnwillingToPerform,
                format!(
                    "shard map expects {} backends, got {}",
                    map.shards(),
                    backends.len()
                ),
            ));
        }
        let metrics = Arc::new(ShardMetrics::new(backends.len()));
        Ok(Arc::new(ShardRouter {
            map,
            backends,
            metrics,
        }))
    }

    /// Connect one [`TcpDirectory`] per shard address.
    pub fn connect(map: ShardMap, addrs: &[String]) -> Result<Arc<ShardRouter>> {
        let backends = addrs
            .iter()
            .map(|a| TcpDirectory::connect(a).map(|d| Arc::new(d) as Arc<dyn Directory>))
            .collect::<Result<Vec<_>>>()?;
        ShardRouter::new(map, backends)
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    pub fn metrics(&self) -> Arc<ShardMetrics> {
        self.metrics.clone()
    }

    fn owner(&self, dn: &Dn) -> &Arc<dyn Directory> {
        let shard = self.map.shard_for(dn);
        self.metrics.ops_routed[shard].fetch_add(1, Ordering::Relaxed);
        &self.backends[shard]
    }

    /// Swallow `noSuchObject` from a clipped sub-query: the partition
    /// root not existing yet means "empty region" there, exactly as it
    /// would on a single server.
    fn clip_empty<T: Default>(r: Result<T>) -> Result<T> {
        match r {
            Err(e) if e.code == ResultCode::NoSuchObject => Ok(T::default()),
            other => other,
        }
    }

    /// Does any target in `rest` still hold a matching entry? Drives the
    /// code-4 decision once the size budget is spent.
    fn more_matches(&self, rest: &[SearchTarget], filter: &Filter) -> Result<bool> {
        for t in rest {
            self.metrics.limit_probes.fetch_add(1, Ordering::Relaxed);
            let (hits, truncated) = Self::clip_empty(self.backends[t.shard].search_capped(
                &t.base,
                t.scope,
                filter,
                &[],
                1,
            ))?;
            if truncated || !hits.is_empty() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn note_plan(&self, plan: &[SearchTarget]) {
        if plan.len() == 1 {
            self.metrics.searches_single.fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics.searches_fanout.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .fanout_subqueries
                .fetch_add(plan.len() as u64 - 1, Ordering::Relaxed);
        }
    }
}

impl Directory for ShardRouter {
    fn add(&self, entry: Entry) -> Result<()> {
        let backend = self.owner(entry.dn()).clone();
        backend.add(entry)
    }

    fn delete(&self, dn: &Dn) -> Result<()> {
        self.owner(dn).delete(dn)
    }

    fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        self.owner(dn).modify(dn, mods)
    }

    fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        let new_dn = match new_superior {
            Some(sup) => sup.child(new_rdn.clone()),
            None => dn.with_rdn(new_rdn.clone())?,
        };
        let from = self.map.shard_for(dn);
        let to = self.map.shard_for(&new_dn);
        if from != to {
            self.metrics.renames_refused.fetch_add(1, Ordering::Relaxed);
            return Err(LdapError::new(
                ResultCode::UnwillingToPerform,
                format!(
                    "modifyDN would move `{dn}` from shard {from} to shard {to}; \
                     cross-shard moves are not supported"
                ),
            ));
        }
        self.metrics.ops_routed[from].fetch_add(1, Ordering::Relaxed);
        self.backends[from].modify_rdn(dn, new_rdn, delete_old, new_superior)
    }

    fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        let (out, truncated) = self.search_capped(base, scope, filter, attrs, size_limit)?;
        if truncated {
            return Err(LdapError::new(
                ResultCode::SizeLimitExceeded,
                format!("more than {size_limit} entries match"),
            ));
        }
        Ok(out)
    }

    fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        let plan = self.map.plan(base, scope);
        self.note_plan(&plan);
        if let [only] = plan.as_slice() {
            return self.backends[only.shard].search_capped(base, scope, filter, attrs, size_limit);
        }
        if size_limit == 0 {
            // Unlimited: scatter concurrently, gather in plan order. The
            // regions are disjoint by construction, so concatenation is
            // the whole merge.
            let results: Vec<Result<(Vec<Entry>, bool)>> = std::thread::scope(|s| {
                // The intermediate collect is load-bearing: it forces every
                // spawn before the first join, so the shards run in
                // parallel rather than one at a time.
                #[allow(clippy::needless_collect)]
                let handles: Vec<_> = plan
                    .iter()
                    .map(|t| {
                        let backend = &self.backends[t.shard];
                        s.spawn(move || {
                            let r = backend.search_capped(&t.base, t.scope, filter, attrs, 0);
                            if t.clipped {
                                Self::clip_empty(r)
                            } else {
                                r
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter worker panicked"))
                    .collect()
            });
            let mut out = Vec::new();
            for r in results {
                out.extend(r?.0);
            }
            return Ok((out, false));
        }
        // Limited: drain sequentially against the remaining budget, then
        // probe the rest of the plan to decide code 4.
        let mut out = Vec::new();
        for (i, t) in plan.iter().enumerate() {
            let remaining = size_limit - out.len();
            let r =
                self.backends[t.shard].search_capped(&t.base, t.scope, filter, attrs, remaining);
            let (entries, truncated) = if t.clipped { Self::clip_empty(r) } else { r }?;
            out.extend(entries);
            if truncated {
                return Ok((out, true));
            }
            if out.len() >= size_limit {
                let truncated = self.more_matches(&plan[i + 1..], filter)?;
                return Ok((out, truncated));
            }
        }
        Ok((out, false))
    }

    fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        let plan = self.map.plan(base, scope);
        self.note_plan(&plan);
        if let [only] = plan.as_slice() {
            return self.backends[only.shard]
                .search_visit(base, scope, filter, attrs, size_limit, visit);
        }
        // Stream target after target in plan order: entries flow to the
        // caller as each shard produces them, nothing is collected here.
        let mut total = 0usize;
        for (i, t) in plan.iter().enumerate() {
            let remaining = if size_limit == 0 {
                0
            } else {
                size_limit - total
            };
            let r = self.backends[t.shard]
                .search_visit(&t.base, t.scope, filter, attrs, remaining, visit);
            let (count, truncated) = match r {
                Err(e) if t.clipped && e.code == ResultCode::NoSuchObject => (0, false),
                other => other?,
            };
            total += count;
            if truncated {
                return Ok((total, true));
            }
            if size_limit != 0 && total >= size_limit {
                let truncated = self.more_matches(&plan[i + 1..], filter)?;
                return Ok((total, truncated));
            }
        }
        Ok((total, false))
    }

    fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        self.owner(dn).compare(dn, attr, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::Dit;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn map3() -> ShardMap {
        // Shard 0 (default) owns the spine + unassigned space; the two
        // departments are carved out.
        ShardMap::new(3)
            .assign(dn("ou=Wireless,o=Lucent"), 1)
            .unwrap()
            .assign(dn("ou=Optical,o=Lucent"), 2)
            .unwrap()
    }

    #[test]
    fn deepest_assignment_wins() {
        let map = ShardMap::new(3)
            .assign(dn("ou=a,o=X"), 1)
            .unwrap()
            .assign(dn("ou=b,ou=a,o=X"), 2)
            .unwrap();
        assert_eq!(map.shard_for(&dn("o=X")), 0);
        assert_eq!(map.shard_for(&dn("cn=p,ou=a,o=X")), 1);
        assert_eq!(map.shard_for(&dn("ou=b,ou=a,o=X")), 2);
        assert_eq!(map.shard_for(&dn("cn=p,ou=b,ou=a,o=X")), 2);
    }

    #[test]
    fn plan_single_when_base_owned() {
        let map = map3();
        let plan = map.plan(&dn("cn=p,ou=Wireless,o=Lucent"), Scope::Sub);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].shard, 1);
        assert!(!plan[0].clipped);
        // Base scope never fans out.
        assert_eq!(map.plan(&dn("o=Lucent"), Scope::Base).len(), 1);
    }

    #[test]
    fn plan_fans_out_from_the_spine() {
        let map = map3();
        let plan = map.plan(&dn("o=Lucent"), Scope::Sub);
        assert_eq!(plan.len(), 3);
        assert_eq!((plan[0].shard, plan[0].clipped), (0, false));
        let clips: Vec<(usize, String)> = plan[1..]
            .iter()
            .map(|t| (t.shard, t.base.to_string()))
            .collect();
        assert!(clips.contains(&(1, "ou=Wireless,o=Lucent".into())));
        assert!(clips.contains(&(2, "ou=Optical,o=Lucent".into())));
    }

    #[test]
    fn one_level_clips_only_direct_children() {
        let map = ShardMap::new(2)
            .assign(dn("ou=deep,ou=mid,o=X"), 1)
            .unwrap();
        // `ou=deep` is two levels below the base: a one-level search at
        // o=X cannot return it.
        let plan = map.plan(&dn("o=X"), Scope::One);
        assert_eq!(plan.len(), 1);
        // …but a one-level search at ou=mid sees it as a Base-scope clip.
        let plan = map.plan(&dn("ou=mid,o=X"), Scope::One);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[1].scope, Scope::Base);
    }

    #[test]
    fn nested_same_shard_clip_is_covered() {
        let map = ShardMap::new(2)
            .assign(dn("ou=a,o=X"), 1)
            .unwrap()
            .assign(dn("ou=b,ou=a,o=X"), 1)
            .unwrap();
        let plan = map.plan(&dn("o=X"), Scope::Sub);
        // One clip at ou=a covers the nested assignment on the same shard.
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[1].base, dn("ou=a,o=X"));
    }

    #[test]
    fn nested_other_shard_clip_survives() {
        let map = ShardMap::new(3)
            .assign(dn("ou=a,o=X"), 1)
            .unwrap()
            .assign(dn("ou=b,ou=a,o=X"), 2)
            .unwrap();
        let plan = map.plan(&dn("o=X"), Scope::Sub);
        assert_eq!(plan.len(), 3);
        // And a search inside ou=a still fans out to the carve-out.
        let plan = map.plan(&dn("ou=a,o=X"), Scope::Sub);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].shard, 1);
        assert_eq!(plan[1].shard, 2);
    }

    #[test]
    fn spine_for_lists_proper_ancestors() {
        let map = ShardMap::new(2).assign(dn("ou=b,ou=a,o=X"), 1).unwrap();
        assert_eq!(map.spine_for(1), vec![dn("o=X"), dn("ou=a,o=X")]);
        assert!(map.spine_for(0).is_empty());
    }

    #[test]
    fn map_validation() {
        assert!(ShardMap::new(2).assign(dn("o=X"), 5).is_err());
        assert!(ShardMap::new(2).assign(Dn::root(), 1).is_err());
        let m = ShardMap::new(2).assign(dn("o=X"), 1).unwrap();
        assert!(m.assign(dn("o=X"), 0).is_err());
    }

    /// An in-process 3-shard fleet over raw DITs, spine-seeded.
    fn fleet() -> (Arc<ShardRouter>, Vec<Arc<Dit>>) {
        let map = map3();
        let dits: Vec<Arc<Dit>> = (0..3).map(|_| Dit::new()).collect();
        for (i, d) in dits.iter().enumerate() {
            let mut seed = vec![dn("o=Lucent")];
            seed.extend(map.spine_for(i));
            seed.sort_by_key(|d| d.depth());
            seed.dedup();
            for s in seed {
                let name = s.rdn().unwrap().first().value().to_string();
                let e = if s.depth() == 1 {
                    Entry::with_attrs(s, [("objectClass", "organization"), ("o", name.as_str())])
                } else {
                    Entry::with_attrs(
                        s,
                        [("objectClass", "organizationalUnit"), ("ou", name.as_str())],
                    )
                };
                let _ = d.add(e);
            }
        }
        let backends: Vec<Arc<dyn Directory>> = dits
            .iter()
            .map(|d| d.clone() as Arc<dyn Directory>)
            .collect();
        let router = ShardRouter::new(map, backends).unwrap();
        // The partition roots themselves route to their owners.
        for (ou, _) in [("Wireless", 1), ("Optical", 2)] {
            router
                .add(Entry::with_attrs(
                    dn(&format!("ou={ou},o=Lucent")),
                    [("objectClass", "organizationalUnit"), ("ou", ou)],
                ))
                .unwrap();
        }
        (router, dits)
    }

    fn person(cn: &str, parent: &str) -> Entry {
        Entry::with_attrs(
            dn(&format!("cn={cn},{parent}")),
            [
                ("objectClass", "person"),
                ("cn", cn),
                ("sn", cn.split(' ').next_back().unwrap()),
            ],
        )
    }

    #[test]
    fn writes_route_to_owning_shard() {
        let (router, dits) = fleet();
        router
            .add(person("Ana Chen", "ou=Wireless,o=Lucent"))
            .unwrap();
        router.add(person("Wei Lu", "ou=Optical,o=Lucent")).unwrap();
        router.add(person("Pat Smith", "o=Lucent")).unwrap();
        assert!(dits[1].exists(&dn("cn=Ana Chen,ou=Wireless,o=Lucent")));
        assert!(!dits[0].exists(&dn("cn=Ana Chen,ou=Wireless,o=Lucent")));
        assert!(dits[2].exists(&dn("cn=Wei Lu,ou=Optical,o=Lucent")));
        assert!(dits[0].exists(&dn("cn=Pat Smith,o=Lucent")));

        router
            .modify(
                &dn("cn=Ana Chen,ou=Wireless,o=Lucent"),
                &[Modification::set("telephoneNumber", "1001")],
            )
            .unwrap();
        assert_eq!(
            dits[1]
                .get(&dn("cn=Ana Chen,ou=Wireless,o=Lucent"))
                .unwrap()
                .unwrap()
                .first("telephoneNumber"),
            Some("1001")
        );
        assert!(router
            .compare(&dn("cn=Wei Lu,ou=Optical,o=Lucent"), "sn", "Lu")
            .unwrap());
    }

    #[test]
    fn scattered_search_merges_disjoint_regions() {
        let (router, _dits) = fleet();
        router
            .add(person("Ana Chen", "ou=Wireless,o=Lucent"))
            .unwrap();
        router.add(person("Wei Lu", "ou=Optical,o=Lucent")).unwrap();
        router.add(person("Pat Smith", "o=Lucent")).unwrap();

        let all = router
            .search(
                &dn("o=Lucent"),
                Scope::Sub,
                &Filter::parse("(objectClass=person)").unwrap(),
                &[],
                0,
            )
            .unwrap();
        let mut names: Vec<String> = all.iter().map(|e| e.first("cn").unwrap().into()).collect();
        names.sort();
        assert_eq!(names, ["Ana Chen", "Pat Smith", "Wei Lu"]);

        // Partition roots surface exactly once each from their owners.
        let ous = router
            .search(
                &dn("o=Lucent"),
                Scope::Sub,
                &Filter::parse("(objectClass=organizationalUnit)").unwrap(),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(ous.len(), 2);

        // One-level at the spine sees the partition roots and spine kids.
        let one = router
            .search(&dn("o=Lucent"), Scope::One, &Filter::match_all(), &[], 0)
            .unwrap();
        assert_eq!(one.len(), 3, "{one:?}");
        assert_eq!(router.metrics().searches_fanout.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn size_limit_is_fleet_wide() {
        let (router, _dits) = fleet();
        for i in 0..4 {
            router
                .add(person(&format!("W {i}"), "ou=Wireless,o=Lucent"))
                .unwrap();
            router
                .add(person(&format!("O {i}"), "ou=Optical,o=Lucent"))
                .unwrap();
        }
        let f = Filter::parse("(objectClass=person)").unwrap();
        // 8 people match; a limit of 5 delivers 5 + truncated.
        let (hits, truncated) = router
            .search_capped(&dn("o=Lucent"), Scope::Sub, &f, &[], 5)
            .unwrap();
        assert!(truncated);
        assert_eq!(hits.len(), 5);
        // A limit of exactly 8 is not truncated.
        let (hits, truncated) = router
            .search_capped(&dn("o=Lucent"), Scope::Sub, &f, &[], 8)
            .unwrap();
        assert!(!truncated);
        assert_eq!(hits.len(), 8);
        // The strict search raises code 4.
        let err = router
            .search(&dn("o=Lucent"), Scope::Sub, &f, &[], 3)
            .unwrap_err();
        assert_eq!(err.code, ResultCode::SizeLimitExceeded);
        // search_visit agrees with search_capped.
        let mut seen = 0usize;
        let (count, truncated) = router
            .search_visit(&dn("o=Lucent"), Scope::Sub, &f, &[], 5, &mut |_| seen += 1)
            .unwrap();
        assert!(truncated);
        assert_eq!((count, seen), (5, 5));
    }

    #[test]
    fn cross_shard_rename_is_refused() {
        let (router, dits) = fleet();
        router
            .add(person("Ana Chen", "ou=Wireless,o=Lucent"))
            .unwrap();
        let ana = dn("cn=Ana Chen,ou=Wireless,o=Lucent");
        let err = router
            .modify_rdn(
                &ana,
                &Rdn::new("cn", "Ana Chen"),
                true,
                Some(&dn("ou=Optical,o=Lucent")),
            )
            .unwrap_err();
        assert_eq!(err.code, ResultCode::UnwillingToPerform);
        assert_eq!(router.metrics().renames_refused.load(Ordering::Relaxed), 1);
        // Same-shard renames pass through.
        router
            .modify_rdn(&ana, &Rdn::new("cn", "Ana Doe"), true, None)
            .unwrap();
        assert!(dits[1].exists(&dn("cn=Ana Doe,ou=Wireless,o=Lucent")));
    }

    #[test]
    fn missing_base_semantics() {
        let (router, _dits) = fleet();
        // A genuinely missing base is noSuchObject, as on one server.
        let err = router
            .search(
                &dn("ou=Ghost,o=Lucent"),
                Scope::Sub,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);
        // A clipped partition root that does not exist yet is an empty
        // region, not an error: rebuild a fleet without the ou entries.
        let map = map3();
        let dits: Vec<Arc<Dit>> = (0..3).map(|_| Dit::new()).collect();
        for d in &dits {
            d.add(Entry::with_attrs(
                dn("o=Lucent"),
                [("objectClass", "organization"), ("o", "Lucent")],
            ))
            .unwrap();
        }
        let router = ShardRouter::new(
            map,
            dits.iter()
                .map(|d| d.clone() as Arc<dyn Directory>)
                .collect(),
        )
        .unwrap();
        let hits = router
            .search(&dn("o=Lucent"), Scope::Sub, &Filter::match_all(), &[], 0)
            .unwrap();
        assert_eq!(hits.len(), 1, "just the spine root");
    }
}
