//! Attribute names and multi-valued attribute bags.
//!
//! LDAP attribute names are case-insensitive; values here are directory
//! strings (the only syntax MetaComm's schema uses) compared with
//! `caseIgnoreMatch` unless the schema says otherwise.
//!
//! At million-entry scale the same few dozen attribute names appear in
//! every entry, and the overwhelming majority of attributes hold exactly
//! one value. Two representation choices keep per-entry overhead flat:
//! names are reference-counted `Arc<str>` pairs that the compact store
//! deduplicates through a global interner ([`AttrName::intern`]), and
//! value bags are a [`Values`] one-or-many enum so the single-value case
//! costs one `String`, not a `Vec` around it.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Case-insensitive attribute name. Keeps the display form as written and a
/// lowercased form for hashing/equality. Both forms are `Arc<str>`: a name
/// that is already lowercase shares one allocation, and interned names
/// (compact store) share allocations across every entry in the process.
#[derive(Debug, Clone)]
pub struct AttrName {
    display: Arc<str>,
    norm: Arc<str>,
}

impl AttrName {
    pub fn new(name: impl Into<String>) -> AttrName {
        let display: Arc<str> = Arc::from(name.into());
        let norm = if display.bytes().any(|b| b.is_ascii_uppercase()) {
            Arc::from(display.to_ascii_lowercase())
        } else {
            display.clone()
        };
        AttrName { display, norm }
    }

    /// The name as originally written.
    pub fn as_str(&self) -> &str {
        &self.display
    }

    /// Lowercased form used for matching.
    pub fn norm(&self) -> &str {
        &self.norm
    }

    /// Replace this name with the process-wide canonical copy for its
    /// display form, so a million entries holding `telephoneNumber` all
    /// point at the same two allocations. The pool is keyed by display
    /// form and only ever grows; the universe of attribute names is the
    /// schema's, not the data's, so it stays tiny.
    pub fn intern(&mut self) {
        static POOL: parking_lot::Mutex<Option<HashMap<Arc<str>, AttrName>>> =
            parking_lot::Mutex::new(None);
        let mut pool = POOL.lock();
        let pool = pool.get_or_insert_with(HashMap::new);
        match pool.get(&*self.display) {
            Some(canon) => *self = canon.clone(),
            None => {
                pool.insert(self.display.clone(), self.clone());
            }
        }
    }
}

impl PartialEq for AttrName {
    fn eq(&self, other: &Self) -> bool {
        self.norm == other.norm
    }
}
impl Eq for AttrName {}

impl PartialOrd for AttrName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for AttrName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.norm.cmp(&other.norm)
    }
}

impl std::hash::Hash for AttrName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.norm.hash(state);
    }
}

/// Lets `BTreeMap<AttrName, _>` be looked up by `&str` (must be lowercase).
impl Borrow<str> for AttrName {
    fn borrow(&self) -> &str {
        &self.norm
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> AttrName {
        AttrName::new(s)
    }
}
impl From<String> for AttrName {
    fn from(s: String) -> AttrName {
        AttrName::new(s)
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display)
    }
}

/// Case-insensitive value equality (`caseIgnoreMatch`): ignores case and
/// squeezes whitespace runs.
pub fn value_eq_ci(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    norm_value(a) == norm_value(b)
}

/// Normalized form of a directory-string value.
pub fn norm_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut last_space = true;
    for ch in v.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.extend(ch.to_lowercase());
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// The values of one attribute: almost always exactly one, so the single
/// case is stored inline without a `Vec` (24 bytes saved per attribute,
/// one allocation fewer — at a million entries times five-plus attributes
/// each, that is the difference between fitting in RAM twice over or not).
///
/// `One` always holds exactly one value; the empty bag is `Many(vec![])`.
/// Equality is by value sequence, so `One("a") == Many(["a"])`. Derefs to
/// `&[String]`, so slice methods (`len`, `iter`, indexing) work unchanged.
#[derive(Clone)]
pub enum Values {
    One(String),
    Many(Vec<String>),
}

impl Values {
    pub fn as_slice(&self) -> &[String] {
        match self {
            Values::One(v) => std::slice::from_ref(v),
            Values::Many(vs) => vs,
        }
    }

    pub fn to_vec(&self) -> Vec<String> {
        self.as_slice().to_vec()
    }

    /// Append a value (no dedup — callers check `caseIgnoreMatch` first).
    pub fn push(&mut self, value: String) {
        match self {
            Values::One(_) => {
                let Values::One(first) = std::mem::replace(self, Values::Many(Vec::new())) else {
                    unreachable!()
                };
                *self = Values::Many(vec![first, value]);
            }
            Values::Many(vs) if vs.is_empty() => *self = Values::One(value),
            Values::Many(vs) => vs.push(value),
        }
    }

    /// Keep only values for which `keep` returns `true`.
    pub fn retain(&mut self, mut keep: impl FnMut(&String) -> bool) {
        match self {
            Values::One(v) => {
                if !keep(v) {
                    *self = Values::Many(Vec::new());
                }
            }
            Values::Many(vs) => vs.retain(|v| keep(v)),
        }
    }
}

impl std::ops::Deref for Values {
    type Target = [String];
    fn deref(&self) -> &[String] {
        self.as_slice()
    }
}

impl From<Vec<String>> for Values {
    fn from(mut vs: Vec<String>) -> Values {
        if vs.len() == 1 {
            Values::One(vs.pop().expect("len checked"))
        } else {
            Values::Many(vs)
        }
    }
}

impl From<String> for Values {
    fn from(v: String) -> Values {
        Values::One(v)
    }
}

impl<'a> IntoIterator for &'a Values {
    type Item = &'a String;
    type IntoIter = std::slice::Iter<'a, String>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl IntoIterator for Values {
    type Item = String;
    type IntoIter = std::vec::IntoIter<String>;
    fn into_iter(self) -> Self::IntoIter {
        match self {
            Values::One(v) => vec![v].into_iter(),
            Values::Many(vs) => vs.into_iter(),
        }
    }
}

impl PartialEq for Values {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Values {}

impl PartialEq<Vec<String>> for Values {
    fn eq(&self, other: &Vec<String>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[&str]> for Values {
    fn eq(&self, other: &[&str]) -> bool {
        self.len() == other.len() && self.iter().zip(other).all(|(a, b)| a == b)
    }
}

impl fmt::Debug for Values {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// An attribute with its (possibly multiple) values. Values keep insertion
/// order; duplicates under `caseIgnoreMatch` are rejected on insert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: AttrName,
    pub values: Values,
}

impl Attribute {
    pub fn new(name: impl Into<AttrName>, values: Vec<String>) -> Attribute {
        Attribute {
            name: name.into(),
            values: values.into(),
        }
    }

    pub fn single(name: impl Into<AttrName>, value: impl Into<String>) -> Attribute {
        Attribute {
            name: name.into(),
            values: Values::One(value.into()),
        }
    }

    /// `true` if `value` is present under case-insensitive matching.
    pub fn contains_ci(&self, value: &str) -> bool {
        self.values.iter().any(|v| value_eq_ci(v, value))
    }

    /// Add a value; returns `false` (and leaves the bag unchanged) when an
    /// equal value is already present.
    pub fn add_value(&mut self, value: impl Into<String>) -> bool {
        let value = value.into();
        if self.contains_ci(&value) {
            return false;
        }
        self.values.push(value);
        true
    }

    /// Remove a value under case-insensitive matching; returns `true` when a
    /// value was removed.
    pub fn remove_value(&mut self, value: &str) -> bool {
        let before = self.values.len();
        self.values.retain(|v| !value_eq_ci(v, value));
        self.values.len() != before
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{}: {}", self.name, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_case_insensitive() {
        assert_eq!(
            AttrName::new("telephoneNumber"),
            AttrName::new("TELEPHONENUMBER")
        );
        assert_eq!(AttrName::new("cn").norm(), "cn");
        assert_eq!(AttrName::new("CN").as_str(), "CN");
    }

    #[test]
    fn name_ordering_is_normalized() {
        let mut names = [
            AttrName::new("SN"),
            AttrName::new("cn"),
            AttrName::new("OU"),
        ];
        names.sort();
        let order: Vec<&str> = names.iter().map(|n| n.norm()).collect();
        assert_eq!(order, vec!["cn", "ou", "sn"]);
    }

    #[test]
    fn interning_dedups_allocations() {
        let mut a = AttrName::new("telephoneNumber");
        let mut b = AttrName::new("telephoneNumber");
        a.intern();
        b.intern();
        assert!(Arc::ptr_eq(&a.display, &b.display));
        assert!(Arc::ptr_eq(&a.norm, &b.norm));
        // Display forms are preserved exactly; a different casing is a
        // different pool entry (both still equal under CI matching).
        let mut c = AttrName::new("TELEPHONENUMBER");
        c.intern();
        assert_eq!(a, c);
        assert_eq!(c.as_str(), "TELEPHONENUMBER");
    }

    #[test]
    fn value_ci_matching() {
        assert!(value_eq_ci("John  Doe", "john doe"));
        assert!(value_eq_ci(" John Doe ", "JOHN DOE"));
        assert!(!value_eq_ci("John", "Johnny"));
    }

    #[test]
    fn values_one_many_equivalence() {
        assert_eq!(Values::One("a".into()), Values::Many(vec!["a".into()]));
        let mut v = Values::One("a".into());
        v.push("b".into());
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], "a");
        v.retain(|s| s == "b");
        assert_eq!(v.to_vec(), vec!["b".to_string()]);
        v.retain(|_| false);
        assert!(v.is_empty());
        v.push("c".into());
        assert!(matches!(v, Values::One(_)));
    }

    #[test]
    fn attribute_add_remove() {
        let mut a = Attribute::single("cn", "John Doe");
        assert!(!a.add_value("JOHN DOE")); // duplicate under CI match
        assert!(a.add_value("Johnny"));
        assert_eq!(a.values.len(), 2);
        assert!(a.remove_value("john doe"));
        assert_eq!(a.values, vec!["Johnny".to_string()]);
        assert!(!a.remove_value("nobody"));
    }

    #[test]
    fn borrow_str_lookup() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<AttrName, u32> = BTreeMap::new();
        m.insert(AttrName::new("TelephoneNumber"), 7);
        assert_eq!(m.get("telephonenumber"), Some(&7));
    }
}
