//! Attribute names and multi-valued attribute bags.
//!
//! LDAP attribute names are case-insensitive; values here are directory
//! strings (the only syntax MetaComm's schema uses) compared with
//! `caseIgnoreMatch` unless the schema says otherwise.

use std::borrow::Borrow;
use std::fmt;

/// Case-insensitive attribute name. Keeps the display form as written and a
/// lowercased form for hashing/equality.
#[derive(Debug, Clone)]
pub struct AttrName {
    display: String,
    norm: String,
}

impl AttrName {
    pub fn new(name: impl Into<String>) -> AttrName {
        let display = name.into();
        let norm = display.to_ascii_lowercase();
        AttrName { display, norm }
    }

    /// The name as originally written.
    pub fn as_str(&self) -> &str {
        &self.display
    }

    /// Lowercased form used for matching.
    pub fn norm(&self) -> &str {
        &self.norm
    }
}

impl PartialEq for AttrName {
    fn eq(&self, other: &Self) -> bool {
        self.norm == other.norm
    }
}
impl Eq for AttrName {}

impl PartialOrd for AttrName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for AttrName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.norm.cmp(&other.norm)
    }
}

impl std::hash::Hash for AttrName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.norm.hash(state);
    }
}

/// Lets `BTreeMap<AttrName, _>` be looked up by `&str` (must be lowercase).
impl Borrow<str> for AttrName {
    fn borrow(&self) -> &str {
        &self.norm
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> AttrName {
        AttrName::new(s)
    }
}
impl From<String> for AttrName {
    fn from(s: String) -> AttrName {
        AttrName::new(s)
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display)
    }
}

/// Case-insensitive value equality (`caseIgnoreMatch`): ignores case and
/// squeezes whitespace runs.
pub fn value_eq_ci(a: &str, b: &str) -> bool {
    norm_value(a) == norm_value(b)
}

/// Normalized form of a directory-string value.
pub fn norm_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut last_space = true;
    for ch in v.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.extend(ch.to_lowercase());
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// An attribute with its (possibly multiple) values. Values keep insertion
/// order; duplicates under `caseIgnoreMatch` are rejected on insert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: AttrName,
    pub values: Vec<String>,
}

impl Attribute {
    pub fn new(name: impl Into<AttrName>, values: Vec<String>) -> Attribute {
        Attribute {
            name: name.into(),
            values,
        }
    }

    pub fn single(name: impl Into<AttrName>, value: impl Into<String>) -> Attribute {
        Attribute {
            name: name.into(),
            values: vec![value.into()],
        }
    }

    /// `true` if `value` is present under case-insensitive matching.
    pub fn contains_ci(&self, value: &str) -> bool {
        self.values.iter().any(|v| value_eq_ci(v, value))
    }

    /// Add a value; returns `false` (and leaves the bag unchanged) when an
    /// equal value is already present.
    pub fn add_value(&mut self, value: impl Into<String>) -> bool {
        let value = value.into();
        if self.contains_ci(&value) {
            return false;
        }
        self.values.push(value);
        true
    }

    /// Remove a value under case-insensitive matching; returns `true` when a
    /// value was removed.
    pub fn remove_value(&mut self, value: &str) -> bool {
        let before = self.values.len();
        self.values.retain(|v| !value_eq_ci(v, value));
        self.values.len() != before
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{}: {}", self.name, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_case_insensitive() {
        assert_eq!(
            AttrName::new("telephoneNumber"),
            AttrName::new("TELEPHONENUMBER")
        );
        assert_eq!(AttrName::new("cn").norm(), "cn");
        assert_eq!(AttrName::new("CN").as_str(), "CN");
    }

    #[test]
    fn name_ordering_is_normalized() {
        let mut names = [
            AttrName::new("SN"),
            AttrName::new("cn"),
            AttrName::new("OU"),
        ];
        names.sort();
        let order: Vec<&str> = names.iter().map(|n| n.norm()).collect();
        assert_eq!(order, vec!["cn", "ou", "sn"]);
    }

    #[test]
    fn value_ci_matching() {
        assert!(value_eq_ci("John  Doe", "john doe"));
        assert!(value_eq_ci(" John Doe ", "JOHN DOE"));
        assert!(!value_eq_ci("John", "Johnny"));
    }

    #[test]
    fn attribute_add_remove() {
        let mut a = Attribute::single("cn", "John Doe");
        assert!(!a.add_value("JOHN DOE")); // duplicate under CI match
        assert!(a.add_value("Johnny"));
        assert_eq!(a.values.len(), 2);
        assert!(a.remove_value("john doe"));
        assert_eq!(a.values, vec!["Johnny".to_string()]);
        assert!(!a.remove_value("nobody"));
    }

    #[test]
    fn borrow_str_lookup() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<AttrName, u32> = BTreeMap::new();
        m.insert(AttrName::new("TelephoneNumber"), 7);
        assert_eq!(m.get("telephonenumber"), Some(&7));
    }
}
