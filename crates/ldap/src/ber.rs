//! BER (Basic Encoding Rules) — the ASN.1 encoding LDAP uses on the wire.
//!
//! Only what LDAPv3 needs: definite lengths, single-byte tags, the universal
//! types BOOLEAN / INTEGER / ENUMERATED / OCTET STRING / SEQUENCE / SET, and
//! application- or context-tagged variants of those.

use crate::error::{LdapError, Result};
use std::fmt;

/// Universal tags.
pub const TAG_BOOLEAN: u8 = 0x01;
pub const TAG_INTEGER: u8 = 0x02;
pub const TAG_OCTET_STRING: u8 = 0x04;
pub const TAG_ENUMERATED: u8 = 0x0A;
pub const TAG_SEQUENCE: u8 = 0x30;
pub const TAG_SET: u8 = 0x31;

/// Application-class tag (constructed), e.g. LDAP protocol ops.
pub const fn app(tag: u8) -> u8 {
    0x60 | tag
}

/// Application-class tag (primitive), e.g. DelRequest.
pub const fn app_prim(tag: u8) -> u8 {
    0x40 | tag
}

/// Context-specific tag (constructed).
pub const fn ctx(tag: u8) -> u8 {
    0xA0 | tag
}

/// Context-specific tag (primitive).
pub const fn ctx_prim(tag: u8) -> u8 {
    0x80 | tag
}

/// Incremental BER writer over a plain `Vec<u8>`.
///
/// Constructed values are encoded *in place*: the body is written directly
/// after a one-byte length placeholder which is back-patched once the body
/// size is known (spliced to long form when it exceeds 127 bytes). This
/// keeps nested SEQUENCEs allocation-free and lets callers reuse one buffer
/// across messages via [`Writer::wrap`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Continue writing into an existing buffer (appends after its current
    /// contents); get it back with [`Writer::into_bytes`].
    pub fn wrap(buf: Vec<u8>) -> Writer {
        Writer { buf }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Raw TLV.
    pub fn tlv(&mut self, tag: u8, body: &[u8]) {
        self.buf.push(tag);
        self.write_len(body.len());
        self.buf.extend_from_slice(body);
    }

    fn write_len(&mut self, len: usize) {
        if len < 0x80 {
            self.buf.push(len as u8);
        } else {
            let bytes = len.to_be_bytes();
            let skip = bytes.iter().take_while(|&&b| b == 0).count();
            let n = bytes.len() - skip;
            self.buf.push(0x80 | n as u8);
            self.buf.extend_from_slice(&bytes[skip..]);
        }
    }

    /// Patch the one-byte length placeholder at `len_pos` to cover every
    /// byte written after it, preserving minimal (definite-form) encoding.
    fn patch_len(&mut self, len_pos: usize) {
        let body_len = self.buf.len() - len_pos - 1;
        if body_len < 0x80 {
            self.buf[len_pos] = body_len as u8;
        } else {
            let bytes = body_len.to_be_bytes();
            let skip = bytes.iter().take_while(|&&b| b == 0).count();
            let n = bytes.len() - skip;
            self.buf.splice(
                len_pos..len_pos + 1,
                std::iter::once(0x80 | n as u8).chain(bytes[skip..].iter().copied()),
            );
        }
    }

    /// OCTET STRING with a custom tag (defaults to universal).
    pub fn octet_string_tagged(&mut self, tag: u8, s: &[u8]) {
        self.tlv(tag, s);
    }

    pub fn octet_string(&mut self, s: &[u8]) {
        self.octet_string_tagged(TAG_OCTET_STRING, s);
    }

    pub fn str(&mut self, s: &str) {
        self.octet_string(s.as_bytes());
    }

    /// OCTET STRING formatted straight from a [`fmt::Display`] value —
    /// skips the intermediate `to_string` allocation (used for DNs on the
    /// search hot path).
    pub fn str_display(&mut self, v: &dyn fmt::Display) {
        struct VecWrite<'a>(&'a mut Vec<u8>);
        impl fmt::Write for VecWrite<'_> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0.extend_from_slice(s.as_bytes());
                Ok(())
            }
        }
        self.buf.push(TAG_OCTET_STRING);
        let len_pos = self.buf.len();
        self.buf.push(0);
        let _ = fmt::Write::write_fmt(&mut VecWrite(&mut self.buf), format_args!("{v}"));
        self.patch_len(len_pos);
    }

    pub fn integer_tagged(&mut self, tag: u8, v: i64) {
        let mut bytes = v.to_be_bytes().to_vec();
        // Trim redundant leading bytes while preserving the sign bit.
        while bytes.len() > 1 {
            let first = bytes[0];
            let second = bytes[1];
            let redundant =
                (first == 0x00 && second & 0x80 == 0) || (first == 0xFF && second & 0x80 != 0);
            if redundant {
                bytes.remove(0);
            } else {
                break;
            }
        }
        self.tlv(tag, &bytes);
    }

    pub fn integer(&mut self, v: i64) {
        self.integer_tagged(TAG_INTEGER, v);
    }

    pub fn enumerated(&mut self, v: i64) {
        self.integer_tagged(TAG_ENUMERATED, v);
    }

    pub fn boolean(&mut self, v: bool) {
        self.tlv(TAG_BOOLEAN, &[if v { 0xFF } else { 0x00 }]);
    }

    /// Constructed value: everything written by `f` becomes the body.
    /// Encoded in place with a back-patched length — no nested allocation.
    pub fn constructed(&mut self, tag: u8, f: impl FnOnce(&mut Writer)) {
        self.buf.push(tag);
        let len_pos = self.buf.len();
        self.buf.push(0);
        f(self);
        self.patch_len(len_pos);
    }

    pub fn sequence(&mut self, f: impl FnOnce(&mut Writer)) {
        self.constructed(TAG_SEQUENCE, f);
    }

    pub fn set(&mut self, f: impl FnOnce(&mut Writer)) {
        self.constructed(TAG_SET, f);
    }
}

/// BER reader over a byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Tag of the next TLV without consuming it.
    pub fn peek_tag(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    /// Read the next TLV, returning `(tag, body)`.
    pub fn tlv(&mut self) -> Result<(u8, &'a [u8])> {
        let tag = *self
            .data
            .get(self.pos)
            .ok_or_else(|| LdapError::protocol("truncated BER: no tag"))?;
        self.pos += 1;
        let first = *self
            .data
            .get(self.pos)
            .ok_or_else(|| LdapError::protocol("truncated BER: no length"))?;
        self.pos += 1;
        let len = if first < 0x80 {
            first as usize
        } else {
            let n = (first & 0x7F) as usize;
            if n == 0 || n > 8 {
                return Err(LdapError::protocol("unsupported BER length form"));
            }
            let mut len = 0usize;
            for _ in 0..n {
                let b = *self
                    .data
                    .get(self.pos)
                    .ok_or_else(|| LdapError::protocol("truncated BER length"))?;
                self.pos += 1;
                len = (len << 8) | b as usize;
            }
            len
        };
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| LdapError::protocol("BER length overflow"))?;
        if end > self.data.len() {
            return Err(LdapError::protocol("truncated BER body"));
        }
        let body = &self.data[self.pos..end];
        self.pos = end;
        Ok((tag, body))
    }

    /// Read a TLV asserting its tag.
    pub fn expect(&mut self, expected: u8) -> Result<&'a [u8]> {
        let (tag, body) = self.tlv()?;
        if tag != expected {
            return Err(LdapError::protocol(format!(
                "expected BER tag 0x{expected:02x}, got 0x{tag:02x}"
            )));
        }
        Ok(body)
    }

    pub fn integer(&mut self) -> Result<i64> {
        let body = self.expect(TAG_INTEGER)?;
        decode_integer(body)
    }

    pub fn enumerated(&mut self) -> Result<i64> {
        let body = self.expect(TAG_ENUMERATED)?;
        decode_integer(body)
    }

    pub fn boolean(&mut self) -> Result<bool> {
        let body = self.expect(TAG_BOOLEAN)?;
        if body.len() != 1 {
            return Err(LdapError::protocol("bad BOOLEAN length"));
        }
        Ok(body[0] != 0)
    }

    pub fn octet_string(&mut self) -> Result<&'a [u8]> {
        self.expect(TAG_OCTET_STRING)
    }

    pub fn string(&mut self) -> Result<String> {
        let body = self.octet_string()?;
        String::from_utf8(body.to_vec()).map_err(|_| LdapError::protocol("non-UTF-8 LDAPString"))
    }

    /// Read a constructed value and return a reader over its body.
    pub fn sub(&mut self, expected: u8) -> Result<Reader<'a>> {
        Ok(Reader::new(self.expect(expected)?))
    }

    pub fn sequence(&mut self) -> Result<Reader<'a>> {
        self.sub(TAG_SEQUENCE)
    }
}

pub fn decode_integer(body: &[u8]) -> Result<i64> {
    if body.is_empty() || body.len() > 8 {
        return Err(LdapError::protocol("bad INTEGER length"));
    }
    let mut v: i64 = if body[0] & 0x80 != 0 { -1 } else { 0 };
    for &b in body {
        v = (v << 8) | i64::from(b);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_int(v: i64) {
        let mut w = Writer::new();
        w.integer(v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.integer().unwrap(), v, "round trip {v}");
        assert!(r.is_empty());
    }

    #[test]
    fn integer_round_trips() {
        for v in [
            0,
            1,
            -1,
            127,
            128,
            255,
            256,
            -128,
            -129,
            65535,
            i64::MAX,
            i64::MIN,
        ] {
            round_trip_int(v);
        }
    }

    #[test]
    fn integer_minimal_encoding() {
        let mut w = Writer::new();
        w.integer(127);
        assert_eq!(w.into_bytes(), vec![0x02, 0x01, 0x7F]);
        let mut w = Writer::new();
        w.integer(128);
        assert_eq!(w.into_bytes(), vec![0x02, 0x02, 0x00, 0x80]);
        let mut w = Writer::new();
        w.integer(-1);
        assert_eq!(w.into_bytes(), vec![0x02, 0x01, 0xFF]);
    }

    #[test]
    fn long_form_length() {
        let body = vec![0x55u8; 300];
        let mut w = Writer::new();
        w.octet_string(&body);
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], TAG_OCTET_STRING);
        assert_eq!(bytes[1], 0x82); // two length bytes
        assert_eq!(bytes[2], 0x01);
        assert_eq!(bytes[3], 0x2C);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.octet_string().unwrap(), body.as_slice());
    }

    #[test]
    fn nested_sequences() {
        let mut w = Writer::new();
        w.sequence(|w| {
            w.integer(7);
            w.sequence(|w| {
                w.str("inner");
                w.boolean(true);
            });
        });
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut seq = r.sequence().unwrap();
        assert_eq!(seq.integer().unwrap(), 7);
        let mut inner = seq.sequence().unwrap();
        assert_eq!(inner.string().unwrap(), "inner");
        assert!(inner.boolean().unwrap());
        assert!(inner.is_empty());
        assert!(seq.is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn tagged_values() {
        let mut w = Writer::new();
        w.octet_string_tagged(ctx_prim(3), b"hello");
        w.constructed(app(4), |w| w.integer(1));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.peek_tag(), Some(0x83));
        assert_eq!(r.expect(0x83).unwrap(), b"hello");
        let mut sub = r.sub(0x64).unwrap();
        assert_eq!(sub.integer().unwrap(), 1);
    }

    #[test]
    fn long_form_constructed_is_backpatched() {
        // A SEQUENCE whose body exceeds 127 bytes forces the placeholder
        // length byte to be spliced to long form.
        let big = "y".repeat(200);
        let mut w = Writer::new();
        w.sequence(|w| {
            w.integer(1);
            w.str(&big);
        });
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], TAG_SEQUENCE);
        assert_eq!(bytes[1], 0x81); // one length byte, long form
        let mut r = Reader::new(&bytes);
        let mut seq = r.sequence().unwrap();
        assert_eq!(seq.integer().unwrap(), 1);
        assert_eq!(seq.string().unwrap(), big);
        assert!(seq.is_empty());
    }

    #[test]
    fn wrap_appends_to_existing_buffer() {
        let mut w = Writer::new();
        w.integer(1);
        let buf = w.into_bytes();
        let mut w = Writer::wrap(buf);
        w.integer(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.integer().unwrap(), 1);
        assert_eq!(r.integer().unwrap(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn str_display_matches_str() {
        let mut a = Writer::new();
        a.str_display(&12345);
        let mut b = Writer::new();
        b.str("12345");
        assert_eq!(a.into_bytes(), b.into_bytes());
        // Long-form case too.
        let long = "z".repeat(300);
        let mut a = Writer::new();
        a.str_display(&long);
        let mut b = Writer::new();
        b.str(&long);
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn truncated_input_rejected() {
        assert!(Reader::new(&[0x02]).tlv().is_err());
        assert!(Reader::new(&[0x02, 0x05, 0x00]).tlv().is_err());
        assert!(Reader::new(&[0x02, 0x89]).tlv().is_err());
        assert!(Reader::new(&[]).tlv().is_err());
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut w = Writer::new();
        w.integer(5);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).boolean().is_err());
    }
}
