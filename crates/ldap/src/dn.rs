//! Distinguished names (RFC 2253).
//!
//! A [`Dn`] is a sequence of [`Rdn`]s ordered leaf-first (LDAP order: the
//! string `cn=John Doe, o=Marketing, o=Lucent` names an entry whose parent is
//! `o=Marketing, o=Lucent`). Each RDN is one or more attribute/value pairs
//! ([`Ava`]); multi-AVA RDNs are joined with `+`.
//!
//! Matching is case-insensitive on both attribute names and values and
//! insensitive to insignificant whitespace, which matches the
//! `caseIgnoreMatch` behaviour of the directory-string syntax that all
//! MetaComm naming attributes use.

use crate::error::{LdapError, Result};
use std::fmt;

/// One attribute/value pair inside an RDN, e.g. `cn=John Doe`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ava {
    /// Attribute name exactly as written (display form).
    attr: String,
    /// Attribute value exactly as written (unescaped).
    value: String,
    /// Normalized (lowercased, space-squeezed) forms used for matching.
    norm_attr: String,
    norm_value: String,
}

impl Ava {
    pub fn new(attr: impl Into<String>, value: impl Into<String>) -> Ava {
        let attr = attr.into();
        let value = value.into();
        let norm_attr = attr.trim().to_ascii_lowercase();
        let norm_value = normalize_value(&value);
        Ava {
            attr,
            value,
            norm_attr,
            norm_value,
        }
    }

    /// Attribute name as originally written.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Unescaped value as originally written.
    pub fn value(&self) -> &str {
        &self.value
    }

    /// Lowercased attribute name used for matching.
    pub fn norm_attr(&self) -> &str {
        &self.norm_attr
    }

    /// Case/whitespace-normalized value used for matching.
    pub fn norm_value(&self) -> &str {
        &self.norm_value
    }

    fn matches(&self, other: &Ava) -> bool {
        self.norm_attr == other.norm_attr && self.norm_value == other.norm_value
    }
}

/// Collapse internal whitespace runs, trim, and lowercase — the
/// `caseIgnoreMatch` normalization for directory strings.
fn normalize_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut last_space = true; // leading spaces dropped
    for ch in v.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A relative distinguished name: one or more AVAs (`cn=J+ou=Sales`).
///
/// Invariant: at least one AVA; AVAs are kept sorted by normalized attribute
/// name so equality is order-insensitive, per X.501.
#[derive(Debug, Clone, Eq)]
pub struct Rdn {
    avas: Vec<Ava>,
}

impl Rdn {
    /// Single-AVA RDN, the common case (`cn=John Doe`).
    pub fn new(attr: impl Into<String>, value: impl Into<String>) -> Rdn {
        Rdn {
            avas: vec![Ava::new(attr, value)],
        }
    }

    /// Multi-AVA RDN. Returns an error when `avas` is empty or two AVAs use
    /// the same attribute type.
    pub fn multi(avas: Vec<Ava>) -> Result<Rdn> {
        if avas.is_empty() {
            return Err(LdapError::invalid_dn("empty RDN"));
        }
        let mut avas = avas;
        avas.sort_by(|a, b| a.norm_attr.cmp(&b.norm_attr));
        for w in avas.windows(2) {
            if w[0].norm_attr == w[1].norm_attr {
                return Err(LdapError::invalid_dn(format!(
                    "duplicate attribute `{}` in RDN",
                    w[0].attr
                )));
            }
        }
        Ok(Rdn { avas })
    }

    pub fn avas(&self) -> &[Ava] {
        &self.avas
    }

    /// The first (or only) AVA.
    pub fn first(&self) -> &Ava {
        &self.avas[0]
    }

    /// Parse one RDN from its RFC 2253 string form.
    pub fn parse(s: &str) -> Result<Rdn> {
        let dn = Dn::parse(s)?;
        if dn.depth() != 1 {
            return Err(LdapError::invalid_dn(format!(
                "expected a single RDN, got `{s}`"
            )));
        }
        Ok(dn.rdns[0].clone())
    }

    /// Normalized key for hashing/indexing.
    pub fn norm_key(&self) -> String {
        let mut out = String::new();
        for (i, ava) in self.avas.iter().enumerate() {
            if i > 0 {
                out.push('+');
            }
            out.push_str(&ava.norm_attr);
            out.push('=');
            out.push_str(&ava.norm_value);
        }
        out
    }
}

impl PartialEq for Rdn {
    fn eq(&self, other: &Self) -> bool {
        self.avas.len() == other.avas.len()
            && self.avas.iter().zip(&other.avas).all(|(a, b)| a.matches(b))
    }
}

impl std::hash::Hash for Rdn {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for ava in &self.avas {
            ava.norm_attr.hash(state);
            ava.norm_value.hash(state);
        }
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ava) in self.avas.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{}={}", ava.attr, escape_value(&ava.value))?;
        }
        Ok(())
    }
}

/// A distinguished name: RDNs ordered leaf-first. The empty DN (zero RDNs)
/// names the root of the DIT.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dn {
    rdns: Vec<Rdn>,
}

impl Dn {
    /// The empty DN (the DIT root).
    pub fn root() -> Dn {
        Dn { rdns: Vec::new() }
    }

    /// Build from leaf-first RDNs.
    pub fn from_rdns(rdns: Vec<Rdn>) -> Dn {
        Dn { rdns }
    }

    /// Parse an RFC 2253 string like `cn=John Doe, o=Marketing, o=Lucent`.
    ///
    /// Supported escapes: `\` followed by a special character
    /// (`,` `+` `"` `\` `<` `>` `;` `=` `#` or space) or two hex digits.
    pub fn parse(s: &str) -> Result<Dn> {
        if s.trim().is_empty() {
            return Ok(Dn::root());
        }
        let s = s.trim_start();
        let mut rdns = Vec::new();
        let mut avas: Vec<Ava> = Vec::new();
        let mut chars = s.chars().peekable();
        loop {
            // Parse one AVA: attr '=' value
            let mut attr = String::new();
            while let Some(&c) = chars.peek() {
                if c == '=' {
                    break;
                }
                if c == ',' || c == '+' || c == ';' {
                    return Err(LdapError::invalid_dn(format!(
                        "expected `=` in AVA while parsing `{s}`"
                    )));
                }
                attr.push(c);
                chars.next();
            }
            if chars.next() != Some('=') {
                return Err(LdapError::invalid_dn(format!("missing `=` in `{s}`")));
            }
            let attr = attr.trim().to_string();
            if attr.is_empty() {
                return Err(LdapError::invalid_dn(format!("empty attribute in `{s}`")));
            }
            // Value: read until unescaped ',' ';' or '+'.
            let mut value = String::new();
            // skip leading unescaped spaces
            while chars.peek() == Some(&' ') {
                chars.next();
            }
            let mut terminator: Option<char> = None;
            // Length of `value` up to and including the last escaped char —
            // trailing spaces beyond this point are insignificant.
            let mut escaped_end = 0usize;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some(e) if is_special(e) => {
                            value.push(e);
                            escaped_end = value.len();
                        }
                        Some(h1) if h1.is_ascii_hexdigit() => {
                            let h2 = chars
                                .next()
                                .ok_or_else(|| LdapError::invalid_dn("truncated hex escape"))?;
                            if !h2.is_ascii_hexdigit() {
                                return Err(LdapError::invalid_dn("bad hex escape"));
                            }
                            let byte = u8::from_str_radix(&format!("{h1}{h2}"), 16)
                                .expect("checked hex digits");
                            value.push(byte as char);
                            escaped_end = value.len();
                        }
                        Some(other) => {
                            return Err(LdapError::invalid_dn(format!(
                                "invalid escape `\\{other}`"
                            )))
                        }
                        None => return Err(LdapError::invalid_dn("trailing backslash")),
                    },
                    ',' | ';' | '+' => {
                        terminator = Some(if c == ';' { ',' } else { c });
                        break;
                    }
                    other => value.push(other),
                }
            }
            // Trim only unescaped trailing spaces.
            while value.len() > escaped_end && value.ends_with(' ') {
                value.pop();
            }
            avas.push(Ava::new(attr, value));
            match terminator {
                Some('+') => continue, // next AVA of same RDN
                Some(',') => {
                    rdns.push(Rdn::multi(std::mem::take(&mut avas))?);
                    // skip spaces before next RDN
                    while chars.peek() == Some(&' ') {
                        chars.next();
                    }
                    if chars.peek().is_none() {
                        return Err(LdapError::invalid_dn(format!(
                            "trailing separator in `{s}`"
                        )));
                    }
                    continue;
                }
                _ => {
                    rdns.push(Rdn::multi(std::mem::take(&mut avas))?);
                    break;
                }
            }
        }
        Ok(Dn { rdns })
    }

    /// RDNs leaf-first.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// Number of RDNs. The root has depth 0.
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// Leaf RDN, or `None` for the root.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// Parent DN, or `None` for the root.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn {
                rdns: self.rdns[1..].to_vec(),
            })
        }
    }

    /// A child of `self` named by `rdn`.
    pub fn child(&self, rdn: Rdn) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(rdn);
        rdns.extend(self.rdns.iter().cloned());
        Dn { rdns }
    }

    /// `true` when `self` equals `ancestor` or lies underneath it.
    pub fn is_within(&self, ancestor: &Dn) -> bool {
        if ancestor.rdns.len() > self.rdns.len() {
            return false;
        }
        let offset = self.rdns.len() - ancestor.rdns.len();
        self.rdns[offset..] == ancestor.rdns[..]
    }

    /// Replace the leaf RDN (the LDAP ModifyRDN operation on names).
    pub fn with_rdn(&self, rdn: Rdn) -> Result<Dn> {
        if self.rdns.is_empty() {
            return Err(LdapError::invalid_dn("root has no RDN to replace"));
        }
        let mut rdns = self.rdns.clone();
        rdns[0] = rdn;
        Ok(Dn { rdns })
    }

    /// Re-root: replace everything above the leaf with `new_parent`
    /// (the ModifyDN `newSuperior` operation).
    pub fn moved_under(&self, new_parent: &Dn) -> Result<Dn> {
        let rdn = self
            .rdn()
            .ok_or_else(|| LdapError::invalid_dn("cannot move the root"))?;
        Ok(new_parent.child(rdn.clone()))
    }

    /// Canonical normalized string used as an index key.
    pub fn norm_key(&self) -> String {
        let mut out = String::new();
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&rdn.norm_key());
        }
        out
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{rdn}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Dn {
    type Err = LdapError;
    fn from_str(s: &str) -> Result<Dn> {
        Dn::parse(s)
    }
}

fn is_special(c: char) -> bool {
    matches!(
        c,
        ',' | '+' | '"' | '\\' | '<' | '>' | ';' | '=' | '#' | ' '
    )
}

/// Escape a value for RFC 2253 output.
pub fn escape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let len = v.chars().count();
    for (i, c) in v.chars().enumerate() {
        let needs = match c {
            ',' | '+' | '"' | '\\' | '<' | '>' | ';' => true,
            '#' if i == 0 => true,
            ' ' if i == 0 || i == len - 1 => true,
            _ => false,
        };
        if needs {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_dn() {
        let dn = Dn::parse("cn=John Doe, o=Marketing, o=Lucent").unwrap();
        assert_eq!(dn.depth(), 3);
        assert_eq!(dn.rdn().unwrap().first().attr(), "cn");
        assert_eq!(dn.rdn().unwrap().first().value(), "John Doe");
        assert_eq!(dn.parent().unwrap().to_string(), "o=Marketing,o=Lucent");
    }

    #[test]
    fn empty_dn_is_root() {
        let dn = Dn::parse("").unwrap();
        assert!(dn.is_root());
        assert_eq!(dn.depth(), 0);
        assert!(dn.parent().is_none());
    }

    #[test]
    fn case_insensitive_equality() {
        let a = Dn::parse("CN=John Doe,O=Lucent").unwrap();
        let b = Dn::parse("cn=john doe, o=lucent").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.norm_key(), b.norm_key());
    }

    #[test]
    fn whitespace_normalization_in_values() {
        let a = Dn::parse("cn=John   Doe,o=Lucent").unwrap();
        let b = Dn::parse("cn=John Doe,o=Lucent").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn escaped_comma_in_value() {
        let dn = Dn::parse(r"cn=Doe\, John,o=Lucent").unwrap();
        assert_eq!(dn.depth(), 2);
        assert_eq!(dn.rdn().unwrap().first().value(), "Doe, John");
        // round-trips through Display
        let again = Dn::parse(&dn.to_string()).unwrap();
        assert_eq!(dn, again);
    }

    #[test]
    fn hex_escape() {
        let dn = Dn::parse(r"cn=a\2Cb,o=x").unwrap();
        assert_eq!(dn.rdn().unwrap().first().value(), "a,b");
    }

    #[test]
    fn multi_ava_rdn() {
        let dn = Dn::parse("cn=John+ou=Sales,o=Lucent").unwrap();
        assert_eq!(dn.depth(), 2);
        assert_eq!(dn.rdn().unwrap().avas().len(), 2);
        // order-insensitive equality
        let dn2 = Dn::parse("ou=Sales+cn=John,o=Lucent").unwrap();
        assert_eq!(dn, dn2);
    }

    #[test]
    fn duplicate_attr_in_rdn_rejected() {
        assert!(Dn::parse("cn=a+cn=b,o=x").is_err());
    }

    #[test]
    fn hierarchy_relations() {
        let root = Dn::parse("o=Lucent").unwrap();
        let child = Dn::parse("o=Marketing,o=Lucent").unwrap();
        let grandchild = Dn::parse("cn=Pat Smith,o=Marketing,o=Lucent").unwrap();
        assert!(child.is_within(&root));
        assert!(grandchild.is_within(&root));
        assert!(grandchild.is_within(&child));
        assert!(!root.is_within(&child));
        assert!(grandchild.is_within(&grandchild));
        assert_eq!(grandchild.parent().unwrap(), child);
        assert_eq!(root.child(Rdn::new("o", "Marketing")), child);
    }

    #[test]
    fn with_rdn_replaces_leaf() {
        let dn = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let renamed = dn.with_rdn(Rdn::new("cn", "Jack Doe")).unwrap();
        assert_eq!(renamed.to_string(), "cn=Jack Doe,o=Marketing,o=Lucent");
    }

    #[test]
    fn moved_under_changes_parent() {
        let dn = Dn::parse("cn=John Doe,o=Marketing,o=Lucent").unwrap();
        let target = Dn::parse("o=R&D,o=Lucent").unwrap();
        let moved = dn.moved_under(&target).unwrap();
        assert_eq!(moved.to_string(), "cn=John Doe,o=R&D,o=Lucent");
    }

    #[test]
    fn semicolon_separator_accepted() {
        let dn = Dn::parse("cn=a;o=b").unwrap();
        assert_eq!(dn.depth(), 2);
    }

    #[test]
    fn trailing_separator_rejected() {
        assert!(Dn::parse("cn=a,").is_err());
        assert!(Dn::parse("cn=a,o=b,").is_err());
    }

    #[test]
    fn missing_equals_rejected() {
        assert!(Dn::parse("john doe").is_err());
        assert!(Dn::parse("cn").is_err());
    }

    #[test]
    fn escape_value_round_trip() {
        for v in [
            "plain",
            "a,b",
            "a+b",
            " leading",
            "trailing ",
            "#hash",
            r"back\slash",
        ] {
            let dn = Dn::root().child(Rdn::new("cn", v));
            let parsed = Dn::parse(&dn.to_string()).unwrap();
            assert_eq!(parsed.rdn().unwrap().first().value(), v, "value {v:?}");
        }
    }

    #[test]
    fn rdn_parse_single() {
        let rdn = Rdn::parse("cn=John Doe").unwrap();
        assert_eq!(rdn.first().value(), "John Doe");
        assert!(Rdn::parse("cn=a,o=b").is_err());
    }
}
