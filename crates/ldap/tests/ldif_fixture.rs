//! LDIF fixture parity: the paper's Figure 2 tree expressed as LDIF loads
//! into a DIT identical to the one the programmatic builder produces, and
//! export/import is a faithful round trip.

use ldap::dit::{figure2_tree, Dit};
use ldap::ldif::{parse, to_ldif, Record};

const FIGURE2_LDIF: &str = r#"
# The sample tree from Figure 2 of the paper.
dn: o=Lucent
objectClass: top
objectClass: organization
o: Lucent

dn: o=Marketing,o=Lucent
objectClass: top
objectClass: organization
o: Marketing

dn: cn=John Doe,o=Marketing,o=Lucent
objectClass: top
objectClass: person
cn: John Doe
sn: Doe

dn: cn=Pat Smith,o=Marketing,o=Lucent
objectClass: top
objectClass: person
cn: Pat Smith
sn: Smith

dn: o=Accounting,o=Lucent
objectClass: top
objectClass: organization
o: Accounting

dn: cn=Tim Dickens,o=Accounting,o=Lucent
objectClass: top
objectClass: person
cn: Tim Dickens
sn: Dickens

dn: o=R&D,o=Lucent
objectClass: top
objectClass: organization
o: R&D

dn: cn=Jill Lu,o=R&D,o=Lucent
objectClass: top
objectClass: person
cn: Jill Lu
sn: Lu

dn: o=DEN Group,o=Lucent
objectClass: top
objectClass: organization
o: DEN Group
"#;

fn load(text: &str) -> std::sync::Arc<Dit> {
    let dit = Dit::new();
    for record in parse(text).expect("fixture parses") {
        match record {
            Record::Content(e) => ldap::Dit::add(&dit, e).expect("fixture adds"),
            other => panic!("unexpected record {other:?}"),
        }
    }
    dit
}

#[test]
fn fixture_matches_programmatic_builder() {
    let from_ldif = load(FIGURE2_LDIF);
    let built = Dit::new();
    figure2_tree(&built).unwrap();
    assert_eq!(from_ldif.len(), built.len());
    for e in built.export() {
        let other = from_ldif
            .get(e.dn())
            .unwrap_or_else(|| panic!("fixture missing {}", e.dn()));
        assert_eq!(other, e, "entry {} differs", e.dn());
    }
}

#[test]
fn export_import_round_trip_preserves_everything() {
    let original = load(FIGURE2_LDIF);
    let text = to_ldif(&original.export());
    let reloaded = load(&text);
    assert_eq!(reloaded.len(), original.len());
    for e in original.export() {
        assert_eq!(reloaded.get(e.dn()).as_ref(), Some(&e));
    }
    // And a second round trip is byte-stable (canonical ordering).
    let text2 = to_ldif(&reloaded.export());
    assert_eq!(text, text2, "export must be canonical");
}
