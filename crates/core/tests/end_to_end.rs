//! End-to-end tests of the MetaComm system: every flow of the paper's
//! Figure 1 — directory-originated updates, direct device updates,
//! cross-device propagation, partition migration, failure handling, and
//! synchronization.

use ldap::dn::Dn;
use ldap::entry::Modification;
use ldap::{Directory, Filter, Scope};
use metacomm::{MetaComm, MetaCommBuilder};
use msgplat::Store as MpStore;
use pbx::{DialPlan, Store as PbxStore};
use std::sync::Arc;

struct Rig {
    system: MetaComm,
    west: Arc<PbxStore>,
    east: Arc<PbxStore>,
    mp: Arc<MpStore>,
}

fn rig() -> Rig {
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    let east = Arc::new(PbxStore::new("pbx-east", DialPlan::with_prefix("3", 4)));
    let mp = Arc::new(MpStore::new("mp"));
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(west.clone(), "9???")
        .add_pbx(east.clone(), "3???")
        .add_msgplat(mp.clone(), "*")
        .build()
        .expect("build system");
    Rig {
        system,
        west,
        east,
        mp,
    }
}

#[test]
fn wba_add_person_reaches_all_relevant_devices() {
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    wba.assign_mailbox("John Doe", "9123", "executive").unwrap();
    r.system.settle();

    // Station on the west switch (extension 9xxx), not the east one.
    let station = r.west.get("9123").expect("station exists");
    assert_eq!(station.get("Name"), Some("Doe, John"));
    assert_eq!(station.get("Room"), Some("2B-401"));
    assert!(r.east.get("9123").is_none());

    // Mailbox on the messaging platform, with a generated id…
    let mbx = r.mp.get("9123").expect("mailbox exists");
    let mbid = mbx.get("MbId").expect("generated id").clone();
    assert!(mbid.starts_with("MB-"));

    // …which flowed back into the directory (§5.5 generated info).
    let entry = wba.person("John Doe").unwrap().expect("entry");
    assert_eq!(entry.first("mpMailboxId"), Some(mbid.as_str()));
    assert_eq!(entry.first("telephoneNumber"), Some("+1 908 582 9123"));
}

#[test]
fn ddu_station_add_materializes_in_directory() {
    let r = rig();
    // A craft terminal adds a station directly at the switch (a DDU).
    r.west
        .plan()
        .check("9200", "pbx-west")
        .expect("valid extension");
    pbx::ossi::execute(
        &r.west,
        r#"add station 9200 name "Smith, Pat" room 2C-115 cov 2"#,
    )
    .unwrap();
    r.system.settle();

    let wba = r.system.wba();
    let entry = wba.person("Pat Smith").unwrap().expect("materialized");
    assert_eq!(entry.first("definityExtension"), Some("9200"));
    assert_eq!(entry.first("telephoneNumber"), Some("+1 908 582 9200"));
    assert_eq!(entry.first("roomNumber"), Some("2C-115"));
    assert_eq!(entry.first("definityCoveragePath"), Some("2"));
    assert_eq!(entry.first("sn"), Some("Smith"));
    // Origin recorded.
    assert_eq!(entry.first("lastUpdater"), Some("pbx-west"));
    // The DDU was reapplied to the originating switch without error and the
    // record still exists exactly once.
    assert_eq!(r.west.get("9200").unwrap().get("Name"), Some("Smith, Pat"));
}

#[test]
fn ddu_console_mailbox_add_flows_to_directory_with_id() {
    let r = rig();
    msgplat::admin::execute(&r.mp, r#"add subscriber 9333 name "Lu, Jill" cos standard"#).unwrap();
    r.system.settle();
    let wba = r.system.wba();
    let entry = wba.person("Jill Lu").unwrap().expect("materialized");
    assert_eq!(entry.first("mpMailbox"), Some("9333"));
    assert!(entry.first("mpMailboxId").unwrap().starts_with("MB-"));
    assert_eq!(entry.first("mpClassOfService"), Some("standard"));
}

#[test]
fn phone_change_migrates_station_between_switches() {
    // Paper §4.2: "when a person's telephone number changes, the Definity
    // PBX that manages the person's extension may also change. In this case
    // lexpress translates a modification of a telephone number into two
    // updates: a deletion in one PBX and an add in another PBX."
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    r.system.settle();
    assert!(r.west.get("9123").is_some());

    wba.set_phone("John Doe", "+1 908 582 3456").unwrap();
    r.system.settle();

    // Deleted at west, added at east.
    assert!(r.west.get("9123").is_none(), "west station removed");
    let station = r.east.get("3456").expect("east station added");
    assert_eq!(station.get("Name"), Some("Doe, John"));
    // Directory closure updated the extension too.
    let entry = wba.person("John Doe").unwrap().unwrap();
    assert_eq!(entry.first("definityExtension"), Some("3456"));
}

#[test]
fn ddu_change_propagates_to_directory_fields() {
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    r.system.settle();
    // Craft changes the room.
    pbx::ossi::execute(&r.west, "change station 9123 room 2C-115").unwrap();
    r.system.settle();
    let entry = wba.person("John Doe").unwrap().unwrap();
    assert_eq!(entry.first("roomNumber"), Some("2C-115"));
}

#[test]
fn complex_ddu_name_change_uses_modifyrdn_modify_pair() {
    // Paper §5.1: a direct PBX update changing name (RDN) and another field
    // becomes a ModifyRDN/Modify pair.
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    r.system.settle();
    pbx::ossi::execute(
        &r.west,
        r#"change station 9123 name "Doe, Jack" room 2D-001"#,
    )
    .unwrap();
    r.system.settle();

    let wba = r.system.wba();
    assert!(wba.person("John Doe").unwrap().is_none(), "renamed away");
    let entry = wba.person("Jack Doe").unwrap().expect("renamed entry");
    assert_eq!(entry.first("roomNumber"), Some("2D-001"));
    assert_eq!(
        r.system
            .relay_stats()
            .rename_pairs
            .load(std::sync::atomic::Ordering::SeqCst),
        1
    );
}

#[test]
fn crash_between_pair_leaves_inconsistency_resync_repairs() {
    // Experiment E8's mechanism, as a test: crash between ModifyRDN and
    // Modify leaves the entry renamed but stale; resynchronization with the
    // device eliminates the inconsistency (paper §5.1).
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    r.system.settle();

    r.system.inject_crash_between_pair();
    pbx::ossi::execute(
        &r.west,
        r#"change station 9123 name "Doe, Jack" room 2D-001"#,
    )
    .unwrap();
    r.system.settle();

    // Inconsistency visible to readers: entry renamed, room NOT updated.
    let entry = wba.person("Jack Doe").unwrap().expect("rename applied");
    assert_eq!(
        entry.first("roomNumber"),
        Some("2B-401"),
        "the Modify half must be missing after the crash"
    );
    assert_eq!(
        r.system
            .relay_stats()
            .injected_crashes
            .load(std::sync::atomic::Ordering::SeqCst),
        1
    );

    // Recovery: resynchronize with the device.
    let report = r.system.synchronize_device("pbx-west").unwrap();
    assert_eq!(report.repaired, 1);
    let entry = wba.person("Jack Doe").unwrap().unwrap();
    assert_eq!(entry.first("roomNumber"), Some("2D-001"));
}

#[test]
fn station_remove_clears_device_attributes_only() {
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    wba.assign_mailbox("John Doe", "9123", "standard").unwrap();
    r.system.settle();

    pbx::ossi::execute(&r.west, "remove station 9123").unwrap();
    r.system.settle();

    let entry = wba.person("John Doe").unwrap().expect("person survives");
    assert!(
        !entry.has_attr("definityExtension"),
        "PBX attributes cleared"
    );
    assert_eq!(
        entry.first("mpMailbox"),
        Some("9123"),
        "mailbox data untouched"
    );
    // The paper's §5.2 anomaly: the auxiliary class may remain; only the
    // attribute signals device use.
    assert!(r.mp.get("9123").is_some(), "mailbox survives at device");
}

#[test]
fn directory_delete_removes_person_everywhere() {
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    wba.assign_mailbox("John Doe", "9123", "standard").unwrap();
    r.system.settle();
    assert!(r.west.get("9123").is_some());
    assert!(r.mp.get("9123").is_some());

    wba.remove_person("John Doe").unwrap();
    r.system.settle();
    assert!(wba.person("John Doe").unwrap().is_none());
    assert!(r.west.get("9123").is_none(), "station removed");
    assert!(r.mp.get("9123").is_none(), "mailbox removed");
}

#[test]
fn invalid_update_aborts_and_logs_error() {
    let r = rig();
    let wba = r.system.wba();
    // Extension outside every dial plan: partition skips both switches but
    // passes schema — craft a truly invalid one instead: the west switch
    // rejects a malformed extension that still matches the 9??? glob.
    let err = wba
        .add_person_with_extension("Bad Person", "Person", "9x2z", "2B")
        .unwrap_err();
    assert_eq!(err.code, ldap::ResultCode::UnwillingToPerform);
    // Error entry logged into the directory + admin alert.
    let errors = r.system.browse_errors().unwrap();
    assert_eq!(errors.len(), 1);
    assert!(errors[0]
        .first("metacommErrorText")
        .unwrap()
        .contains("pbx-west"));
    // The aborted update never reached the directory.
    assert!(wba.person("Bad Person").unwrap().is_none());
}

#[test]
fn saga_undo_compensates_partial_failure() {
    // Two devices; the second rejects the update; saga mode undoes the
    // first device's already-applied operation.
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    let mp = Arc::new(MpStore::new("mp"));
    // Pre-poison the platform: mailbox 9123 exists so the UM's (non
    // conditional) add will fail.
    mp.add(
        msgplat::record([("Mailbox", "9123"), ("Subscriber", "Squatter, Sam")]),
        msgplat::Channel::Metacomm,
    )
    .unwrap();
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(west.clone(), "9???")
        .add_msgplat(mp, "*")
        .with_saga_undo()
        .build()
        .unwrap();
    let wba = system.wba();
    let mut entry = ldap::Entry::new(Dn::parse("cn=John Doe,o=Lucent").unwrap());
    for (k, v) in [
        ("objectClass", "top"),
        ("objectClass", "person"),
        ("objectClass", "organizationalPerson"),
        ("objectClass", "definityUser"),
        ("objectClass", "messagingUser"),
        ("cn", "John Doe"),
        ("sn", "Doe"),
        ("definityExtension", "9123"),
        ("mpMailbox", "9123"),
        ("lastUpdater", "wba"),
    ] {
        entry.add_value(k, v);
    }
    let err = system.directory().add(entry).unwrap_err();
    assert_eq!(err.code, ldap::ResultCode::UnwillingToPerform);
    system.settle();
    // Saga compensated: the station added to the west switch was removed.
    assert!(west.get("9123").is_none(), "station rolled back");
    assert_eq!(
        system
            .um_stats()
            .undone
            .load(std::sync::atomic::Ordering::SeqCst),
        1
    );
    assert!(wba.person("John Doe").unwrap().is_none());
    system.shutdown();
}

#[test]
fn initial_load_synchronizes_preexisting_devices() {
    // Paper §4.4: synchronization populates the directory initially.
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    let mp = Arc::new(MpStore::new("mp"));
    for (ext, name) in [
        ("9100", "Doe, John"),
        ("9200", "Smith, Pat"),
        ("9300", "Lu, Jill"),
    ] {
        west.add(
            pbx::Record::from_pairs([("Extension", ext), ("Name", name), ("CoveragePath", "1")]),
            pbx::Channel::Metacomm, // pre-existing data, not DDUs
        )
        .unwrap();
    }
    mp.add(
        msgplat::record([("Mailbox", "9100"), ("Subscriber", "Doe, John")]),
        msgplat::Channel::Metacomm,
    )
    .unwrap();
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(west, "9???")
        .add_msgplat(mp, "*")
        .build()
        .unwrap();
    let report = system.synchronize_all().unwrap();
    assert_eq!(report.added, 3, "three people created");
    assert_eq!(report.repaired, 1, "John Doe enriched with mailbox data");
    let wba = system.wba();
    let john = wba.person("John Doe").unwrap().expect("loaded");
    assert_eq!(john.first("definityExtension"), Some("9100"));
    assert_eq!(john.first("mpMailbox"), Some("9100"));
    assert!(wba.person("Pat Smith").unwrap().is_some());
    // Sync is idempotent.
    let again = system.synchronize_all().unwrap();
    assert_eq!(again.added, 0);
    assert_eq!(again.repaired, 0);
    assert_eq!(again.unchanged, 4);
    system.shutdown();
}

#[test]
fn resync_clears_stale_directory_data() {
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    r.system.settle();
    // Simulate a lost notification: the station disappears while the link
    // is down (remove via the Metacomm channel so no DDU event fires).
    r.west.remove("9123", pbx::Channel::Metacomm).unwrap();
    let entry = wba.person("John Doe").unwrap().unwrap();
    assert!(entry.has_attr("definityExtension"), "directory is stale");

    let report = r.system.synchronize_device("pbx-west").unwrap();
    assert_eq!(report.cleared, 1);
    let entry = wba.person("John Doe").unwrap().unwrap();
    assert!(!entry.has_attr("definityExtension"));
}

#[test]
fn concurrent_wba_and_ddu_converge() {
    // The write-write consistency story (§4.4): concurrent direct device
    // updates and directory updates to the same entry converge.
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    r.system.settle();

    // Fire a DDU and a WBA update concurrently against the same person.
    let west = r.west.clone();
    let ddu = std::thread::spawn(move || {
        pbx::ossi::execute(&west, "change station 9123 room 2Z-999").unwrap();
    });
    wba.assign_mailbox("John Doe", "9123", "executive").unwrap();
    ddu.join().unwrap();
    r.system.settle();

    // Converged: directory and device agree on the room; mailbox created.
    let entry = wba.person("John Doe").unwrap().unwrap();
    assert_eq!(entry.first("roomNumber"), Some("2Z-999"));
    assert_eq!(entry.first("mpMailbox"), Some("9123"));
    assert_eq!(r.west.get("9123").unwrap().get("Room"), Some("2Z-999"));
    assert!(r.mp.get("9123").is_some());
}

#[test]
fn network_gateway_deployment_end_to_end() {
    // §5.5 gateway mode: an ordinary LDAP client over TCP administers the
    // telecom devices.
    let r = rig();
    let server = r.system.serve("127.0.0.1:0").unwrap();
    let client = ldap::client::TcpDirectory::connect(&server.addr().to_string()).unwrap();
    let mut entry = ldap::Entry::new(Dn::parse("cn=Net Person,o=Lucent").unwrap());
    for (k, v) in [
        ("objectClass", "top"),
        ("objectClass", "person"),
        ("objectClass", "organizationalPerson"),
        ("objectClass", "definityUser"),
        ("cn", "Net Person"),
        ("sn", "Person"),
        ("definityExtension", "9777"),
    ] {
        entry.add_value(k, v);
    }
    client.add(entry).unwrap();
    r.system.settle();
    assert!(r.west.get("9777").is_some(), "station via TCP client");

    // And the closure works over the wire too.
    client
        .modify(
            &Dn::parse("cn=Net Person,o=Lucent").unwrap(),
            &[Modification::set("telephoneNumber", "+1 908 582 3777")],
        )
        .unwrap();
    r.system.settle();
    assert!(r.west.get("9777").is_none());
    assert!(
        r.east.get("3777").is_some(),
        "migrated via closure + partition"
    );
}

#[test]
fn reads_scale_without_um_involvement() {
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    r.system.settle();
    let updates_before = r
        .system
        .um_stats()
        .updates
        .load(std::sync::atomic::Ordering::SeqCst);
    for _ in 0..100 {
        r.system
            .directory()
            .search(
                r.system.suffix(),
                Scope::Sub,
                &Filter::parse("(objectClass=person)").unwrap(),
                &[],
                0,
            )
            .unwrap();
    }
    let updates_after = r
        .system
        .um_stats()
        .updates
        .load(std::sync::atomic::Ordering::SeqCst);
    assert_eq!(updates_before, updates_after, "reads never hit the UM");
}

#[test]
fn security_policy_blocks_clients_but_not_relays() {
    // Paper §7: "the current system uses a very simple security mechanism
    // (based on the security model of LTAP)". The platform-generated
    // mailbox id is read-only for clients, yet it still flows in from the
    // device through the relay.
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    let mp = Arc::new(MpStore::new("mp"));
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(west, "9???")
        .add_msgplat(mp.clone(), "*")
        .with_security(
            ltap::SecurityPolicy::new()
                .readonly_attr("mpMailboxId")
                .protect_subtree(Dn::parse("ou=errors,o=Lucent").unwrap()),
        )
        .build()
        .unwrap();
    let wba = system.wba();

    // Clients cannot forge the platform id…
    let dn = Dn::parse("cn=Forger,o=Lucent").unwrap();
    let mut e = ldap::Entry::new(dn);
    for (k, v) in [
        ("objectClass", "top"),
        ("objectClass", "person"),
        ("objectClass", "messagingUser"),
        ("cn", "Forger"),
        ("sn", "Forger"),
        ("mpMailboxId", "MB-999999"),
    ] {
        e.add_value(k, v);
    }
    let err = system.directory().add(e).unwrap_err();
    assert_eq!(err.code, ldap::ResultCode::InsufficientAccessRights);

    // …but a console-created mailbox still materializes WITH its id.
    msgplat::admin::execute(&mp, r#"add subscriber 9123 name "Doe, John""#).unwrap();
    system.settle();
    let john = wba.person("John Doe").unwrap().expect("materialized");
    assert!(john.first("mpMailboxId").unwrap().starts_with("MB-"));

    // The error-log subtree is protected from clients.
    let err = system
        .directory()
        .delete(&Dn::parse("ou=errors,o=Lucent").unwrap())
        .unwrap_err();
    assert_eq!(err.code, ldap::ResultCode::InsufficientAccessRights);
    system.shutdown();
}

#[test]
fn update_traces_explain_the_pipeline() {
    let r = rig();
    let wba = r.system.wba();
    wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
        .unwrap();
    wba.set_phone("John Doe", "+1 908 582 3456").unwrap(); // west → east
    r.system.settle();

    let traces = r.system.recent_traces();
    assert!(traces.len() >= 2);
    // The add: routed to pbx-west, skipped at pbx-east and the platform.
    let add = &traces[0];
    assert!(add.op.starts_with("Add"), "{}", add.op);
    assert_eq!(add.origin, "wba");
    assert_eq!(add.outcome, "ok");
    let west_op = add
        .device_ops
        .iter()
        .find(|(name, ..)| name == "pbx-west")
        .expect("west op traced");
    assert_eq!(west_op.1, "Add");
    assert!(west_op.3, "applied");
    assert!(add
        .device_ops
        .iter()
        .any(|(name, kind, ..)| name == "pbx-east" && kind == "Skip"));

    // The renumber: closure derived the extension; delete@west + add@east.
    let renumber = traces
        .iter()
        .find(|t| t.op.starts_with("Modify"))
        .expect("modify trace");
    assert!(
        renumber
            .derived_attrs
            .iter()
            .any(|a| a == "definityextension"),
        "closure derivation must be traced: {:?}",
        renumber.derived_attrs
    );
    assert!(renumber
        .device_ops
        .iter()
        .any(|(name, kind, ..)| name == "pbx-west" && kind == "Delete"));
    assert!(renumber
        .device_ops
        .iter()
        .any(|(name, kind, ..)| name == "pbx-east" && kind == "Add"));

    // A failed update's trace carries the error.
    let _ = wba.add_person_with_extension("Bad", "Bad", "9x1z", "2B");
    let traces = r.system.recent_traces();
    let failed = traces.last().unwrap();
    assert!(failed.outcome.contains("pbx-west"), "{}", failed.outcome);
}

#[test]
fn duplicate_device_names_surface_as_sync_conflicts() {
    // Station names are NOT unique at the device, but the integrated schema
    // keys people by name — a real deployment hits this when an operator
    // gives two stations the same display name. Sync materializes one and
    // logs the other for the administrator (§4.4's manual-fix path).
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    for ext in ["9100", "9200"] {
        west.add(
            pbx::Record::from_pairs([
                ("Extension", ext),
                ("Name", "Doe, John"), // same name, twice
                ("CoveragePath", "1"),
            ]),
            pbx::Channel::Metacomm,
        )
        .unwrap();
    }
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(west, "9???")
        .build()
        .unwrap();
    let report = system.synchronize_all().unwrap();
    assert_eq!(report.added, 1, "first record materializes");
    assert_eq!(report.failed, 1, "second is a conflict");
    let errors = system.browse_errors().unwrap();
    assert_eq!(errors.len(), 1);
    let text = errors[0].first("metacommErrorText").unwrap();
    assert!(text.contains("sync conflict"), "{text}");
    assert!(text.contains("9100") && text.contains("9200"), "{text}");
    // The conflict is stable: re-syncing neither duplicates nor flaps.
    let again = system.synchronize_all().unwrap();
    assert_eq!(again.added, 0);
    assert_eq!(again.failed, 1);
    system.shutdown();
}

#[test]
fn mapping_files_load_from_disk() {
    let dir = std::env::temp_dir().join(format!("metacomm-maps-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("extra.lex");
    // An extra intra-directory rule loaded from a deployment file.
    std::fs::write(
        &path,
        "mapping extra { source ldap; target ldap; key source dn; key target dn; \
         map roomNumber -> description : concat(\"room \", roomNumber); }",
    )
    .unwrap();
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    let system = MetaCommBuilder::new("o=Lucent")
        .add_pbx(west, "9???")
        .with_mapping_file(&path)
        .build()
        .unwrap();
    assert!(system.engine().mapping("extra").is_some());
    system.shutdown();

    // Unreadable files fail the build with a clear error.
    let err = match MetaCommBuilder::new("o=Lucent")
        .with_mapping_file(dir.join("missing.lex"))
        .build()
    {
        Err(e) => e,
        Ok(_) => panic!("missing mapping file must fail the build"),
    };
    assert!(err.to_string().contains("missing.lex"), "{err}");
}
