//! Durable-deployment tests: the directory survives a full restart of the
//! meta-directory process (snapshot + journal recovery), and device changes
//! that happened during the outage are reconciled by synchronization —
//! the complete §2/§4.4 availability story.

use metacomm::MetaCommBuilder;
use pbx::{Channel, DialPlan, Record, Store as PbxStore};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metacomm-persist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn build(dir: &Path, west: &Arc<PbxStore>) -> metacomm::MetaComm {
    MetaCommBuilder::new("o=Lucent")
        .add_pbx(west.clone(), "9???")
        .with_persistence(dir.to_path_buf())
        .build()
        .expect("build durable system")
}

#[test]
fn directory_survives_restart() {
    let dir = tmpdir("restart");
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    {
        let system = build(&dir, &west);
        let wba = system.wba();
        wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
            .unwrap();
        wba.add_person_with_extension("Pat Smith", "Smith", "9200", "2C-115")
            .unwrap();
        system.settle();
        system.shutdown();
    }
    // "Restart" the meta-directory over the same persistence directory.
    let system = build(&dir, &west);
    let wba = system.wba();
    let john = wba.person("John Doe").unwrap().expect("recovered");
    assert_eq!(john.first("definityExtension"), Some("9123"));
    assert_eq!(john.first("roomNumber"), Some("2B-401"));
    assert!(wba.person("Pat Smith").unwrap().is_some());
    // Recovery is consistent with the devices: resync finds nothing.
    let report = system.synchronize_all().unwrap();
    assert_eq!(report.added, 0);
    assert_eq!(report.cleared, 0);
    system.shutdown();
}

#[test]
fn outage_changes_reconciled_after_recovery() {
    let dir = tmpdir("outage");
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    {
        let system = build(&dir, &west);
        system
            .wba()
            .add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
            .unwrap();
        system.settle();
        system.shutdown();
    }
    // While the meta-directory is down, the craft terminal keeps working
    // (the paper's availability argument) — these updates are "lost".
    west.change(
        "9123",
        Record::from_pairs([("Room", "4F-007")]),
        Channel::Metacomm, // no relay is running anyway; be explicit
    )
    .unwrap();
    west.add(
        Record::from_pairs([
            ("Extension", "9400"),
            ("Name", "Dickens, Tim"),
            ("CoveragePath", "1"),
        ]),
        Channel::Metacomm,
    )
    .unwrap();

    // Restart + the paper's recovery procedure: resynchronize.
    let system = build(&dir, &west);
    let report = system.synchronize_device("pbx-west").unwrap();
    assert_eq!(report.added, 1, "Tim materialized");
    assert_eq!(report.repaired, 1, "John's room repaired");
    let wba = system.wba();
    assert_eq!(
        wba.person("John Doe").unwrap().unwrap().first("roomNumber"),
        Some("4F-007")
    );
    assert!(wba.person("Tim Dickens").unwrap().is_some());
    system.shutdown();
}

fn files_matching(dir: &Path, prefix: &str) -> Vec<String> {
    let mut out: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| n.starts_with(prefix))
        .collect();
    out.sort();
    out
}

#[test]
fn checkpoint_rotates_and_prunes() {
    let dir = tmpdir("checkpoint");
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    let system = build(&dir, &west);
    let wba = system.wba();
    for i in 0..20 {
        wba.add_person_with_extension(&format!("Person {i:02}"), "P", &format!("9{i:03}"), "2B")
            .unwrap();
    }
    system.settle();
    let wal_before = files_matching(&dir, "wal-");
    assert!(!wal_before.is_empty(), "commits framed into a wal segment");
    system.checkpoint().unwrap();
    system.checkpoint().unwrap();
    // Rotation bounds the on-disk state: at most the newest two snapshots
    // (the older is the torn-write fallback) plus their segments.
    let snaps = files_matching(&dir, "snap-");
    assert!(
        (1..=2).contains(&snaps.len()),
        "snapshots pruned to the newest two, got {snaps:?}"
    );
    assert!(
        files_matching(&dir, "wal-").len() <= 3,
        "old segments pruned"
    );
    system.shutdown();

    // Recovery from the checkpointed state is complete.
    let system = build(&dir, &west);
    assert_eq!(system.wba().find("(cn=Person*)").unwrap().len(), 20);
    let report = system.recovery_report().expect("durable deployment");
    assert!(report.snapshot_entries > 0, "snapshot restored");
    assert!(!report.legacy_migration);
    system.shutdown();
}

#[test]
fn legacy_ldif_layout_migrates_on_first_boot() {
    let dir = tmpdir("legacy");
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    {
        let system = build(&dir, &west);
        system
            .wba()
            .add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
            .unwrap();
        system.settle();
        system.checkpoint().unwrap(); // snapshot now includes John
        system.shutdown();
    }
    // Rewrite the state directory into the pre-WAL layout: the newest
    // snapshot becomes `directory.ldif`, generations disappear.
    let snaps = files_matching(&dir, "snap-");
    std::fs::copy(dir.join(snaps.last().unwrap()), dir.join("directory.ldif")).unwrap();
    for f in files_matching(&dir, "snap-")
        .into_iter()
        .chain(files_matching(&dir, "wal-"))
    {
        std::fs::remove_file(dir.join(f)).unwrap();
    }

    let system = build(&dir, &west);
    let report = system.recovery_report().expect("durable deployment");
    assert!(report.legacy_migration, "legacy files recognized");
    assert!(
        system.wba().person("John Doe").unwrap().is_some(),
        "state carried over"
    );
    // The boot checkpoint re-established the generation layout.
    assert!(!files_matching(&dir, "snap-").is_empty());
    system.shutdown();
}

#[test]
fn crash_without_shutdown_loses_nothing_committed() {
    let dir = tmpdir("crash");
    let west = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    {
        let system = build(&dir, &west);
        system
            .wba()
            .add_person_with_extension("John Doe", "Doe", "9123", "2B")
            .unwrap();
        system.settle();
        // Simulated hard crash: drop without shutdown. The journal was
        // flushed at each commit, so nothing committed is lost.
        std::mem::forget(system);
    }
    let west2 = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
    let system = build(&dir, &west2);
    assert!(system.wba().person("John Doe").unwrap().is_some());
    // The fresh (empty) switch gets repopulated from... nothing: the
    // directory still *claims* the extension; pushing it back to the device
    // is the sync direction not modelled (device-authoritative), so the
    // stale claim is cleared instead.
    let report = system.synchronize_device("pbx-west").unwrap();
    assert_eq!(report.cleared, 1);
    system.shutdown();
}
