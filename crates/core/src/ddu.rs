//! Direct-device-update relay (paper §4.4): "the device filter creates a
//! lexpress update descriptor for the update that it forwards to the LDAP
//! filter; the LDAP filter translates the descriptor into an update against
//! the LDAP schema and forwards it to LTAP; the update is eventually sent
//! back to the UM after proper LTAP locks are obtained."
//!
//! One relay thread runs per device filter. Each DDU becomes one or two
//! LTAP operations — a name change that also touches other fields becomes
//! the non-atomic ModifyRDN + Modify pair of §5.1 (the window the paper's
//! resynchronization story covers; crash injection for experiment E8 sits
//! exactly between the two).

use crate::errorlog::ErrorLog;
use crate::filter::DeviceFilter;
use crate::image::{diff_mods, image_to_entry};
use crate::resilience::RetryPolicy;
use crate::um::aux_class_mods;
use crossbeam::channel::{Receiver, Select};
use ldap::dn::Dn;
use ldap::entry::Modification;
use ldap::{Directory, ResultCode};
use lexpress::{Engine, OpKind, TargetOp, UpdateDescriptor};
use ltap::{Gateway, LtapOp};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Relay statistics.
#[derive(Debug, Default)]
pub struct RelayStats {
    /// DDUs received from device filters.
    pub ddus: AtomicUsize,
    /// LTAP operations emitted.
    pub ops_sent: AtomicUsize,
    /// ModifyRDN+Modify pairs (the §5.1 complex-DDU case).
    pub rename_pairs: AtomicUsize,
    /// Relay errors logged.
    pub errors: AtomicUsize,
    /// Simulated crashes injected between the pair (experiment E8).
    pub injected_crashes: AtomicUsize,
    /// Transient gateway failures masked by retry.
    pub retried: AtomicUsize,
}

pub(crate) struct RelayHandles {
    pub threads: Vec<JoinHandle<()>>,
    pub shutdown: crossbeam::channel::Sender<()>,
}

/// Spawn one relay thread per filter.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_relays(
    gateway: Arc<Gateway>,
    engine: Arc<Engine>,
    filters: &[Arc<dyn DeviceFilter>],
    errorlog: Arc<ErrorLog>,
    stats: Arc<RelayStats>,
    crash_between_pair: Arc<AtomicBool>,
    seq: Arc<AtomicU64>,
    retry: RetryPolicy,
    registry: Arc<crate::obs::Registry>,
) -> RelayHandles {
    let (shutdown_tx, shutdown_rx) = crossbeam::channel::unbounded::<()>();
    // End-to-end latency of one relayed DDU (translate + gateway trips),
    // shared by every relay thread.
    let ddu_hist = registry.component("relay").histogram("ddu");
    let clock = registry.clock();
    let mut threads = Vec::new();
    for f in filters {
        let rx = f.subscribe();
        let gw = gateway.clone();
        let eng = engine.clone();
        let log = errorlog.clone();
        let st = stats.clone();
        let crash = crash_between_pair.clone();
        let name = f.name().to_string();
        let mapping = f.mapping_to_ldap();
        let sd = shutdown_rx.clone();
        let owned_attrs = f.ldap_owned_attrs();
        let sq = seq.clone();
        let rt = retry.clone();
        let hist = ddu_hist.clone();
        let clk = clock.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("ddu-relay-{name}"))
                .spawn(move || {
                    relay_loop(
                        rx,
                        sd,
                        gw,
                        eng,
                        log,
                        st,
                        crash,
                        sq,
                        rt,
                        hist,
                        clk,
                        &name,
                        &mapping,
                        &owned_attrs,
                    )
                })
                .expect("spawn relay"),
        );
    }
    RelayHandles {
        threads,
        shutdown: shutdown_tx,
    }
}

#[allow(clippy::too_many_arguments)]
fn relay_loop(
    rx: Receiver<UpdateDescriptor>,
    shutdown: Receiver<()>,
    gateway: Arc<Gateway>,
    engine: Arc<Engine>,
    errorlog: Arc<ErrorLog>,
    stats: Arc<RelayStats>,
    crash: Arc<AtomicBool>,
    seq: Arc<AtomicU64>,
    retry: RetryPolicy,
    ddu_hist: Arc<crate::obs::Histogram>,
    clock: Arc<dyn crate::obs::Clock>,
    origin: &str,
    mapping: &str,
    owned_attrs: &[String],
) {
    loop {
        let mut sel = Select::new();
        let op_idx = sel.recv(&rx);
        let sd_idx = sel.recv(&shutdown);
        let oper = sel.select();
        match oper.index() {
            i if i == op_idx => match oper.recv(&rx) {
                Ok(d) => {
                    stats.ddus.fetch_add(1, Ordering::Relaxed);
                    let t0 = clock.now_ns();
                    let relayed = relay_one(
                        &gateway,
                        &engine,
                        &stats,
                        &crash,
                        &retry,
                        origin,
                        mapping,
                        owned_attrs,
                        &d,
                    );
                    ddu_hist.record(clock.now_ns().saturating_sub(t0));
                    if let Err(e) = relayed {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        errorlog.log(
                            gateway.inner().as_ref(),
                            seq.fetch_add(1, Ordering::SeqCst),
                            &format!("DDU relay from {origin} failed: {e}"),
                            &format!("{d:?}"),
                        );
                    }
                }
                Err(_) => return,
            },
            i if i == sd_idx => {
                let _ = oper.recv(&shutdown);
                return;
            }
            _ => unreachable!(),
        }
    }
}

/// Send one LTAP operation through the gateway, retrying transient
/// (`Unavailable`) failures per the retry policy. Retry sits at this
/// granularity — never around a whole DDU — because the §5.1
/// ModifyRDN+Modify pair is not idempotent as a unit.
fn apply_tagged_retry(
    gateway: &Arc<Gateway>,
    stats: &RelayStats,
    retry: &RetryPolicy,
    op: LtapOp,
    origin: &str,
) -> ldap::Result<()> {
    let started = Instant::now();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match gateway.apply_tagged(op.clone(), origin) {
            Ok(()) => return Ok(()),
            Err(e)
                if e.code == ResultCode::Unavailable
                    && attempt < retry.max_attempts
                    && started.elapsed() < retry.deadline =>
            {
                stats.retried.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(retry.backoff(attempt));
            }
            Err(e) => return Err(e),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn relay_one(
    gateway: &Arc<Gateway>,
    engine: &Arc<Engine>,
    stats: &RelayStats,
    crash: &AtomicBool,
    retry: &RetryPolicy,
    origin: &str,
    mapping: &str,
    owned_attrs: &[String],
    d: &UpdateDescriptor,
) -> crate::error::Result<()> {
    let top: TargetOp = engine.translate(mapping, d)?;
    match top.kind {
        OpKind::Skip => Ok(()),
        OpKind::Add => {
            let dn = Dn::parse(top.new_key.as_deref().expect("validated"))?;
            match gateway.get(&dn)? {
                Some(existing) => {
                    // The person already exists (e.g. created via another
                    // device): merge the device data in.
                    let mut mods = aux_class_mods(&existing, &top.attrs);
                    mods.extend(diff_mods(&existing, &top.attrs));
                    if !mods.is_empty() {
                        stats.ops_sent.fetch_add(1, Ordering::Relaxed);
                        apply_tagged_retry(
                            gateway,
                            stats,
                            retry,
                            LtapOp::Modify(dn, mods),
                            origin,
                        )?;
                    }
                    Ok(())
                }
                None => {
                    let entry = image_to_entry(dn, &top.attrs);
                    stats.ops_sent.fetch_add(1, Ordering::Relaxed);
                    apply_tagged_retry(gateway, stats, retry, LtapOp::Add(entry), origin)?;
                    Ok(())
                }
            }
        }
        OpKind::Modify => {
            let old_dn = Dn::parse(top.old_key.as_deref().expect("validated"))?;
            let new_dn = Dn::parse(top.new_key.as_deref().expect("validated"))?;
            if old_dn != new_dn {
                // §5.1: "a direct PBX update might change a person's name
                // (which is used in their RDN) and extension (which is
                // not)" — a non-atomic ModifyRDN + Modify pair.
                stats.rename_pairs.fetch_add(1, Ordering::Relaxed);
                let new_rdn = new_dn
                    .rdn()
                    .ok_or_else(|| ldap::LdapError::invalid_dn("empty new DN"))?
                    .clone();
                stats.ops_sent.fetch_add(1, Ordering::Relaxed);
                apply_tagged_retry(
                    gateway,
                    stats,
                    retry,
                    LtapOp::ModifyRdn {
                        dn: old_dn,
                        new_rdn,
                        delete_old: true,
                        new_superior: None,
                    },
                    origin,
                )?;
                if crash.swap(false, Ordering::SeqCst) {
                    // Experiment E8: the UM "crashes" between the pair,
                    // leaving the directory inconsistent for readers until
                    // resynchronization.
                    stats.injected_crashes.fetch_add(1, Ordering::SeqCst);
                    return Err(crate::error::MetaError::Unavailable(
                        "injected crash between ModifyRDN and Modify".into(),
                    ));
                }
                if let Some(existing) = gateway.get(&new_dn)? {
                    let mut mods = aux_class_mods(&existing, &top.attrs);
                    mods.extend(diff_mods(&existing, &top.attrs));
                    if !mods.is_empty() {
                        stats.ops_sent.fetch_add(1, Ordering::Relaxed);
                        apply_tagged_retry(
                            gateway,
                            stats,
                            retry,
                            LtapOp::Modify(new_dn, mods),
                            origin,
                        )?;
                    }
                }
                Ok(())
            } else {
                match gateway.get(&new_dn)? {
                    Some(existing) => {
                        let mut mods = aux_class_mods(&existing, &top.attrs);
                        mods.extend(diff_mods(&existing, &top.attrs));
                        if !mods.is_empty() {
                            stats.ops_sent.fetch_add(1, Ordering::Relaxed);
                            apply_tagged_retry(
                                gateway,
                                stats,
                                retry,
                                LtapOp::Modify(new_dn, mods),
                                origin,
                            )?;
                        }
                        Ok(())
                    }
                    None => {
                        // Entry vanished (e.g. deleted through the
                        // directory while the DDU was in flight): recreate.
                        let entry = image_to_entry(new_dn, &top.attrs);
                        stats.ops_sent.fetch_add(1, Ordering::Relaxed);
                        apply_tagged_retry(gateway, stats, retry, LtapOp::Add(entry), origin)?;
                        Ok(())
                    }
                }
            }
        }
        OpKind::Delete => {
            // A device-side remove clears that device's attributes from the
            // person; the person entry itself survives (they may still have
            // mailboxes, etc.).
            let dn = Dn::parse(top.old_key.as_deref().expect("validated"))?;
            if let Some(existing) = gateway.get(&dn)? {
                let mods: Vec<Modification> = owned_attrs
                    .iter()
                    .filter(|a| existing.has_attr(a))
                    .map(|a| Modification::delete_attr(a.clone()))
                    .collect();
                if !mods.is_empty() {
                    stats.ops_sent.fetch_add(1, Ordering::Relaxed);
                    apply_tagged_retry(gateway, stats, retry, LtapOp::Modify(dn, mods), origin)?;
                }
            }
            Ok(())
        }
    }
}
