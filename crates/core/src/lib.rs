//! # metacomm — a meta-directory for telecommunications
//!
//! The primary contribution of Freire et al., "MetaComm: A Meta-Directory
//! for Telecommunications" (ICDE 2000), reconstructed in Rust: a data
//! integration system that materializes user data from legacy telecom
//! devices into an LDAP directory and keeps every repository convergent
//! under updates arriving at *any* of them — with no triggers, weak typing,
//! and single-object atomicity in the underlying systems.
//!
//! ```
//! use metacomm::MetaCommBuilder;
//! use pbx::{DialPlan, Store as PbxStore, Channel};
//! use std::sync::Arc;
//!
//! // One switch owning extensions 9xxx, integrated under o=Lucent.
//! let switch = Arc::new(PbxStore::new("pbx-west", DialPlan::with_prefix("9", 4)));
//! let system = MetaCommBuilder::new("o=Lucent")
//!     .add_pbx(switch.clone(), "9???")
//!     .build()
//!     .unwrap();
//!
//! // Administer through the directory (any LDAP tool would do):
//! let wba = system.wba();
//! wba.add_person_with_extension("John Doe", "Doe", "9123", "2B-401").unwrap();
//!
//! // The station appeared on the switch:
//! assert!(switch.get("9123").is_some());
//! system.shutdown();
//! ```
//!
//! The architecture mirrors the paper's Figure 1: LDAP clients reach the
//! directory through the LTAP trigger gateway; the Update Manager traps
//! every update, runs the lexpress transitive closure, fans translated
//! operations out to the device [`filter`]s (conditionally, when the
//! target originated the update), folds device-generated information back
//! in, and finally applies the augmented update to the LDAP server.
//! Direct device updates flow the other way through the [`ddu`] relay.

pub mod ddu;
pub mod durability;
pub mod error;
pub mod errorlog;
pub mod filter;
pub mod image;
pub mod obs;
pub mod resilience;
pub mod schema;
pub mod sync;
pub mod um;
pub mod wba;

pub use durability::RecoveryReport;
pub use error::{MetaError, Result};
pub use errorlog::{AdminAlert, ErrorLog};
pub use filter::fault::{FaultHandle, FaultInjector, FaultPlan};
pub use filter::{ApplyOutcome, DeviceFilter};
pub use ldap::FsyncPolicy;
pub use obs::{
    Clock, HistogramSnapshot, ManualClock, MonitorDirectory, Registry, RegistrySnapshot,
    SystemClock, MONITOR_BASE,
};
pub use resilience::{BreakerPolicy, DeviceHealth, HealthState, RecoveryOutcome, RetryPolicy};
pub use sync::SyncReport;
pub use um::{UmStats, UpdateTrace};
pub use wba::Wba;

use crate::ddu::{RelayHandles, RelayStats};
use crate::durability::Durability;
use crate::filter::{mp::MpFilter, pbx::PbxFilter};
use crate::resilience::{DeviceRuntime, JournalSink, MonitorHandle, RecoveryCtx};
use crate::um::{Shared, UpdateManager};
use ldap::dn::Dn;
use ldap::entry::Entry;
use ldap::{Directory, Filter as LdapFilter};
use lexpress::{library, Closure, Engine};
use ltap::{Gateway, SecurityPolicy, TriggerSpec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Configures and assembles a MetaComm deployment.
pub struct MetaCommBuilder {
    suffix: String,
    pbxes: Vec<(Arc<pbx::Store>, String)>,
    msgplats: Vec<(Arc<msgplat::Store>, String)>,
    extra_mappings: Vec<String>,
    hub_rules: bool,
    saga: bool,
    persist_dir: Option<std::path::PathBuf>,
    fsync_policy: FsyncPolicy,
    security: Option<SecurityPolicy>,
    file_errors: Vec<String>,
    retry: RetryPolicy,
    breaker: BreakerPolicy,
    fault_plans: HashMap<String, FaultPlan>,
    clock: Option<Arc<dyn Clock>>,
    indexed_attrs: Option<Vec<String>>,
    compact_store: bool,
    um_workers: Option<usize>,
    wire_workers: Option<usize>,
    event_loop: bool,
    idle_timeout: Option<std::time::Duration>,
    shard_metrics: Option<Arc<ldap::ShardMetrics>>,
}

impl MetaCommBuilder {
    /// A deployment rooted at `suffix` (e.g. `o=Lucent`).
    pub fn new(suffix: &str) -> MetaCommBuilder {
        MetaCommBuilder {
            suffix: suffix.to_string(),
            pbxes: Vec::new(),
            msgplats: Vec::new(),
            extra_mappings: Vec::new(),
            hub_rules: true,
            saga: false,
            persist_dir: None,
            fsync_policy: FsyncPolicy::default(),
            security: None,
            file_errors: Vec::new(),
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            fault_plans: HashMap::new(),
            clock: None,
            indexed_attrs: None,
            compact_store: true,
            um_workers: None,
            wire_workers: None,
            event_loop: true,
            idle_timeout: None,
            shard_metrics: None,
        }
    }

    /// Maintain equality indexes on the given attributes in the directory
    /// server, serving equality (and AND-with-equality) searches without a
    /// subtree scan. Defaults to [`ldap::dit::DEFAULT_INDEXED_ATTRS`]
    /// (`objectClass`, `cn`, `telephoneNumber`, `lastUpdater`); pass an
    /// empty list to disable indexing entirely (the scan-only ablation).
    pub fn with_indexed_attrs<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.indexed_attrs = Some(attrs.into_iter().map(Into::into).collect());
        self
    }

    /// Store directory entries in the compact interned representation: a
    /// DN arena keyed by `u32` ids (entry map, sibling lists, and index
    /// postings all hold ids instead of duplicated DN strings), interned
    /// attribute names, and flattened attribute vectors. On by default —
    /// this is what holds a million-entry DIT in a commodity footprint;
    /// `false` restores the legacy string-keyed maps (the E18 ablation
    /// arm). External behavior is bit-identical either way.
    pub fn with_compact_store(mut self, on: bool) -> Self {
        self.compact_store = on;
        self
    }

    /// Number of Update Manager workers in the key-ordered executor.
    /// Updates to the same post-update DN stay strictly FIFO on one worker;
    /// distinct DNs may proceed concurrently, and with more than one worker
    /// the per-update device fan-out also runs its legs in parallel.
    /// Defaults to the available parallelism, capped at 4; `1` reproduces
    /// the paper's single-coordinator schedule exactly.
    pub fn with_um_workers(mut self, workers: usize) -> Self {
        self.um_workers = Some(workers.max(1));
        self
    }

    /// Number of wire-protocol workers per LDAP connection when this
    /// deployment is [served over TCP](MetaComm::serve). Workers decode
    /// ahead and prepare responses concurrently while responses still go
    /// out in request order; `1` reproduces the strictly serial
    /// read-execute-write loop. Defaults to the available parallelism,
    /// capped at 4.
    pub fn with_wire_workers(mut self, workers: usize) -> Self {
        self.wire_workers = Some(workers.max(1));
        self
    }

    /// Serve wire connections from the epoll readiness loop (one event
    /// thread plus the shared decode pool) instead of a thread per
    /// connection. On by default on Linux; `false` restores the
    /// thread-per-connection engine as the E14 ablation arm. Ignored (always
    /// threaded) on non-Linux hosts.
    pub fn with_event_loop(mut self, on: bool) -> Self {
        self.event_loop = on;
        self
    }

    /// Drop wire connections that stay idle (no readable bytes) for
    /// `timeout`, counting each eviction in `cn=monitor`'s `disconnectIdle`.
    /// Off by default — idle clients are kept forever.
    pub fn with_idle_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Export a shard router's fan-out counters
    /// ([`ldap::ShardMetrics`]) under this deployment's `cn=monitor` as
    /// the `shard` component — for a node that fronts a sharded fleet
    /// with an [`ldap::ShardRouter`] while also serving its own region.
    /// Standalone routers without a MetaComm engine register the same
    /// gauges via [`obs::mirror_shard_metrics`].
    pub fn with_shard_metrics(mut self, metrics: Arc<ldap::ShardMetrics>) -> Self {
        self.shard_metrics = Some(metrics);
        self
    }

    /// Use `clock` for every latency measurement (span stages, histograms)
    /// and for injected fault latency. Defaults to the real monotonic
    /// [`SystemClock`]; tests pass a [`ManualClock`] for deterministic
    /// timings.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Integrate a PBX owning the extensions matched by `ext_glob`
    /// (e.g. `"9???"`).
    pub fn add_pbx(mut self, store: Arc<pbx::Store>, ext_glob: &str) -> Self {
        self.pbxes.push((store, ext_glob.to_string()));
        self
    }

    /// Integrate a messaging platform owning mailboxes matched by `mbx_glob`.
    pub fn add_msgplat(mut self, store: Arc<msgplat::Store>, mbx_glob: &str) -> Self {
        self.msgplats.push((store, mbx_glob.to_string()));
        self
    }

    /// Load additional lexpress description text into the engine.
    pub fn with_mappings(mut self, src: &str) -> Self {
        self.extra_mappings.push(src.to_string());
        self
    }

    /// Load an additional lexpress description *file* into the engine
    /// (read/compile errors surface at [`MetaCommBuilder::build`]).
    pub fn with_mapping_file(mut self, path: impl AsRef<std::path::Path>) -> Self {
        match std::fs::read_to_string(path.as_ref()) {
            Ok(src) => self.extra_mappings.push(src),
            Err(e) => self.file_errors.push(format!(
                "cannot read mapping file {}: {e}",
                path.as_ref().display()
            )),
        }
        self
    }

    /// Disable the intra-directory dependency (transitive-closure hub)
    /// rules — used by ablation benchmarks.
    pub fn without_hub_rules(mut self) -> Self {
        self.hub_rules = false;
        self
    }

    /// Attempt saga-style compensation of already-applied device operations
    /// when a later one fails (the paper's planned "later version").
    pub fn with_saga_undo(mut self) -> Self {
        self.saga = true;
        self
    }

    /// Install the simple LTAP-based security model (paper §7): a
    /// declarative policy compiled into a vetoing before-trigger that runs
    /// ahead of the Update Manager. MetaComm's own device relays (tagged
    /// persistent connections) are exempt.
    pub fn with_security(mut self, policy: SecurityPolicy) -> Self {
        self.security = Some(policy);
        self
    }

    /// Bounded retry with exponential backoff for transient device faults
    /// (both device-apply paths: the UM coordinator and the DDU relays).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Per-device circuit-breaker thresholds, outage-journal bound, and
    /// recovery-probe interval.
    pub fn with_breaker_policy(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = breaker;
        self
    }

    /// Wrap the named device's filter in a [`FaultInjector`] following
    /// `plan` — deterministic outages/errors/latency for resilience tests
    /// and the outage experiment. Control the injected outage at runtime
    /// through [`MetaComm::fault_handle`].
    pub fn with_fault_plan(mut self, device: &str, plan: FaultPlan) -> Self {
        self.fault_plans.insert(device.to_string(), plan);
        self
    }

    /// Make the whole deployment crash-safe: recover state from `dir` at
    /// build time (newest valid snapshot + write-ahead log + outage
    /// journals), checkpoint, and log every commit from then on — the
    /// "backups" half of the paper's §2 availability story, extended to
    /// survive `kill -9`. See [`MetaCommBuilder::with_fsync_policy`] for
    /// the durability/throughput trade-off.
    pub fn with_durability(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Older name for [`MetaCommBuilder::with_durability`]; deployments
    /// persisted under the legacy LDIF snapshot + change-journal layout are
    /// migrated on first boot.
    pub fn with_persistence(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.with_durability(dir)
    }

    /// When (and how) write-ahead-log appends reach stable storage:
    /// [`FsyncPolicy::Group`] (default) batches concurrent commits into
    /// shared fsyncs, [`FsyncPolicy::Always`] fsyncs every append, and
    /// [`FsyncPolicy::Never`] trades machine-crash safety for speed (the
    /// ablation arm — a process crash still loses nothing).
    pub fn with_fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.fsync_policy = policy;
        self
    }

    /// Assemble and start the system.
    pub fn build(self) -> Result<MetaComm> {
        if let Some(err) = self.file_errors.first() {
            return Err(MetaError::Unavailable(err.clone()));
        }
        let suffix = Dn::parse(&self.suffix)?;
        // The directory server, schema-checked, with equality indexes on
        // the hot search attributes (a knob for the scan-only ablation).
        let schema = Arc::new(schema::integrated_schema());
        let dit = match &self.indexed_attrs {
            Some(attrs) => {
                let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                ldap::Dit::with_schema_indexed_compact(schema, &refs, self.compact_store)
            }
            None => ldap::Dit::with_schema_indexed_compact(
                schema,
                ldap::dit::DEFAULT_INDEXED_ATTRS,
                self.compact_store,
            ),
        };
        // Durable deployments recover the previous state before anything
        // else touches the tree, then attach the WAL observer so every
        // commit from here on (starting with the suffix entry) is logged.
        let durability = match &self.persist_dir {
            Some(dir) => {
                let (dur, journals) = Durability::open(dir, self.fsync_policy, &dit)?;
                dur.attach(&dit);
                Some((dur, journals))
            }
            None => None,
        };
        if !ldap::Dit::exists(&dit, &suffix) {
            let suffix_name = suffix
                .rdn()
                .map(|r| r.first().value().to_string())
                .unwrap_or_else(|| "root".into());
            let mut org = Entry::new(suffix.clone());
            org.add_value("objectClass", "top");
            org.add_value("objectClass", "organization");
            org.add_value("o", suffix_name);
            ldap::Dit::add(&dit, org)?;
        }

        // Mapping engine (one compile unit per description file, absorbed
        // into one engine — the runtime-loading path of §4.2).
        let mut engine = Engine::default();
        for (store, glob) in &self.pbxes {
            engine.load(&library::pbx_mappings(store.name(), glob, &self.suffix))?;
        }
        for (store, glob) in &self.msgplats {
            engine.load(&library::msgplat_mappings(store.name(), glob, &self.suffix))?;
        }
        for src in &self.extra_mappings {
            engine.load(src)?;
        }
        let engine = Arc::new(engine);
        let closure = Arc::new(if self.hub_rules {
            Closure::from_source(&library::hub_rules())?
        } else {
            Closure::from_source("")?
        });

        // Error log lives in the directory itself.
        let errorlog = Arc::new(ErrorLog::install(dit.as_ref(), &suffix)?);

        // The metrics registry every component reports into, on the
        // deployment clock.
        let registry = Registry::new(
            self.clock
                .unwrap_or_else(|| SystemClock::new() as Arc<dyn Clock>),
        );
        if let Some((dur, _)) = &durability {
            // WAL write failures now alert through the error log (§4.4) and
            // the durability gauges appear under cn=monitor.
            dur.set_error_log(errorlog.clone(), dit.clone() as Arc<dyn Directory>);
            dur.register_metrics(&registry);
        }
        if let Some(sm) = &self.shard_metrics {
            obs::mirror_shard_metrics(&registry, sm);
        }

        // Filters: protocol converter + mapper per repository. A filter
        // with a fault plan gets the FaultInjector decorator.
        let mut filters: Vec<Arc<dyn DeviceFilter>> = Vec::new();
        let mut fault_handles: HashMap<String, Arc<FaultHandle>> = HashMap::new();
        {
            let mut wrap = |f: Arc<dyn DeviceFilter>| -> Arc<dyn DeviceFilter> {
                match self.fault_plans.get(f.name()) {
                    Some(plan) => {
                        let inj = FaultInjector::new(f, plan.clone()).with_clock(registry.clock());
                        fault_handles.insert(inj.name().to_string(), inj.handle());
                        Arc::new(inj)
                    }
                    None => f,
                }
            };
            for (store, _) in &self.pbxes {
                filters.push(wrap(PbxFilter::new(store.clone())));
            }
            for (store, _) in &self.msgplats {
                filters.push(wrap(MpFilter::new(store.clone())));
            }
        }

        // LTAP gateway in front of the directory.
        let gateway = Gateway::new(dit.clone());

        // The security policy vetoes ahead of the Update Manager.
        if let Some(policy) = self.security {
            gateway.register(
                TriggerSpec::all_updates("metacomm-security", suffix.clone()),
                policy.into_handler(),
            );
        }

        // The Update Manager: trap every person update under the suffix.
        let um_stats = Arc::new(UmStats::default());
        // Pre-resolve the coordinator's and devices' metrics once.
        let um_obs = obs::UmObs::install(&registry, filters.iter().map(|f| f.name().to_string()));
        // Per-device breaker/journal runtimes, shared between the
        // coordinator (records outcomes, journals during outages) and the
        // recovery monitor (probes and drains).
        let mut runtimes: HashMap<String, Arc<DeviceRuntime>> = HashMap::new();
        for f in &filters {
            runtimes.insert(
                f.name().to_string(),
                DeviceRuntime::new(
                    f.name(),
                    self.breaker.clone(),
                    errorlog.clone(),
                    dit.clone() as Arc<dyn Directory>,
                    um_stats.clone(),
                    um_obs.devices[f.name()].clone(),
                ),
            );
        }
        if let Some((dur, journals)) = &durability {
            // Hand each device its recovered outage backlog (the runtime
            // restarts Offline and the monitor drains it), then mirror all
            // further journal mutations into the log. The boot checkpoint
            // makes the recovered state the new baseline: fresh segment
            // with re-logged journal state, fresh snapshot, old generations
            // pruned.
            for (name, rt) in &runtimes {
                if let Some(j) = journals.get(name) {
                    rt.restore_journal(j.ops.clone(), j.overflowed);
                }
                rt.set_journal_sink(dur.clone() as Arc<dyn JournalSink>);
            }
            dur.checkpoint(&dit, &runtimes)?;
        }
        // Live per-device gauges read straight off the runtimes.
        for (name, rt) in &runtimes {
            let comp = registry.component(&format!("device-{name}"));
            let r = rt.clone();
            comp.gauge_callback("journalDepth", move || r.health().queued_ops as i64);
            let r = rt.clone();
            comp.gauge_callback("consecutiveFailures", move || {
                r.health().consecutive_failures as i64
            });
            let r = rt.clone();
            comp.gauge_callback("droppedOps", move || r.health().dropped_ops as i64);
        }
        obs::mirror_um_stats(&registry, &um_stats);
        // Global update sequence counter, shared with the relays so every
        // error-log entry carries a real monotonic sequence number.
        let seq = Arc::new(AtomicU64::new(1));
        let um_workers = self
            .um_workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(4)
            })
            .max(1);
        let um = UpdateManager::start(
            Shared {
                inner: dit.clone() as Arc<dyn Directory>,
                engine: engine.clone(),
                closure,
                filters: filters.clone(),
                errorlog: errorlog.clone(),
                stats: um_stats.clone(),
                saga: self.saga,
                traces: Arc::new(Mutex::new(std::collections::VecDeque::with_capacity(
                    um::TRACE_CAPACITY,
                ))),
                retry: self.retry.clone(),
                runtimes: runtimes.clone(),
                seq: seq.clone(),
                obs: um_obs,
                parallel_fanout: um_workers > 1,
            },
            um_workers,
        );
        gateway.register(
            TriggerSpec::all_updates("metacomm-um", suffix.clone())
                .with_filter(LdapFilter::eq("objectClass", "person")),
            um.handler(),
        );
        // Group-commit barrier: WAL appends on the commit path are async
        // (workers never park in fsync); this after-trigger makes the
        // *client* wait until its records are on stable storage before its
        // update call returns — every acknowledged update is durable.
        if let Some((dur, _)) = &durability {
            let dur = dur.clone();
            gateway.register(
                TriggerSpec::all_updates("metacomm-durability", suffix.clone()).after(),
                Arc::new(move |_ctx: &ltap::TriggerContext<'_>| {
                    dur.commit_barrier();
                    Ok(ltap::Disposition::Proceed)
                }),
            );
        }

        // DDU relays.
        let relay_stats = Arc::new(RelayStats::default());
        let crash_between_pair = Arc::new(AtomicBool::new(false));
        let relays = ddu::spawn_relays(
            gateway.clone(),
            engine.clone(),
            &filters,
            errorlog.clone(),
            relay_stats.clone(),
            crash_between_pair.clone(),
            seq,
            self.retry.clone(),
            registry.clone(),
        );
        obs::mirror_relay_stats(&registry, &relay_stats);
        obs::mirror_gateway_stats(&registry, &gateway);

        // Recovery monitor: probes non-Up devices and reapplies their
        // backlog (journal drain, or full resync after overflow).
        let monitor = resilience::spawn_monitor(
            RecoveryCtx {
                gateway: gateway.clone(),
                engine: engine.clone(),
                suffix: suffix.clone(),
                errorlog: errorlog.clone(),
                stats: um_stats.clone(),
                retry: self.retry.clone(),
            },
            filters
                .iter()
                .map(|f| (f.clone(), runtimes[f.name()].clone()))
                .collect(),
            self.breaker.probe_interval,
        );

        Ok(MetaComm {
            dit,
            gateway,
            engine,
            filters,
            errorlog,
            um: Mutex::new(Some(um)),
            um_stats,
            relays: Mutex::new(Some(relays)),
            relay_stats,
            suffix,
            crash_between_pair,
            durability: durability.map(|(dur, _)| dur),
            retry: self.retry,
            runtimes,
            fault_handles,
            monitor: Mutex::new(Some(monitor)),
            registry,
            wire_workers: self.wire_workers,
            event_loop: self.event_loop,
            idle_timeout: self.idle_timeout,
        })
    }
}

/// A running MetaComm deployment.
pub struct MetaComm {
    dit: Arc<ldap::Dit>,
    gateway: Arc<Gateway>,
    engine: Arc<Engine>,
    filters: Vec<Arc<dyn DeviceFilter>>,
    errorlog: Arc<ErrorLog>,
    um: Mutex<Option<UpdateManager>>,
    um_stats: Arc<UmStats>,
    relays: Mutex<Option<RelayHandles>>,
    relay_stats: Arc<RelayStats>,
    suffix: Dn,
    crash_between_pair: Arc<AtomicBool>,
    durability: Option<Arc<Durability>>,
    retry: RetryPolicy,
    runtimes: HashMap<String, Arc<DeviceRuntime>>,
    fault_handles: HashMap<String, Arc<FaultHandle>>,
    monitor: Mutex<Option<MonitorHandle>>,
    registry: Arc<Registry>,
    wire_workers: Option<usize>,
    event_loop: bool,
    idle_timeout: Option<std::time::Duration>,
}

impl MetaComm {
    /// The client-facing directory: the LTAP gateway (library mode).
    /// Everything written here flows through the Update Manager.
    pub fn directory(&self) -> Arc<Gateway> {
        self.gateway.clone()
    }

    /// The raw directory server behind the gateway (inspection only —
    /// writing here bypasses MetaComm).
    pub fn dit(&self) -> Arc<ldap::Dit> {
        self.dit.clone()
    }

    /// The suffix the deployment is rooted at.
    pub fn suffix(&self) -> &Dn {
        &self.suffix
    }

    /// A Web-Based-Administration front-end over the gateway.
    pub fn wba(&self) -> Wba<Arc<Gateway>> {
        Wba::new(self.gateway.clone(), self.suffix.clone())
    }

    /// Serve the gateway over TCP (the §5.5 network-gateway deployment);
    /// any LDAP client can now administer the telecom devices — and browse
    /// live metrics under the read-only `cn=monitor` subtree. The wire
    /// server's own per-operation metrics register as the `server`
    /// component.
    pub fn serve(&self, addr: &str) -> ldap::Result<ldap::server::Server> {
        let fronted = MonitorDirectory::new(self.gateway.clone(), self.registry.clone());
        let mut builder = ldap::server::Server::builder().with_event_loop(self.event_loop);
        if let Some(w) = self.wire_workers {
            builder = builder.with_wire_workers(w);
        }
        if let Some(t) = self.idle_timeout {
            builder = builder.with_idle_timeout(t);
        }
        let server = builder.start(fronted, addr)?;
        obs::mirror_server_metrics(&self.registry, &server.metrics());
        Ok(server)
    }

    /// The live metrics registry (also served as `cn=monitor`).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A point-in-time snapshot of every metric in the deployment.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Filters, in registration order.
    pub fn filters(&self) -> &[Arc<dyn DeviceFilter>] {
        &self.filters
    }

    /// The mapping engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    pub fn um_stats(&self) -> &Arc<UmStats> {
        &self.um_stats
    }

    /// Number of Update Manager executor workers (0 after shutdown).
    pub fn um_workers(&self) -> usize {
        self.um.lock().as_ref().map(|um| um.workers()).unwrap_or(0)
    }

    /// Recent per-update traces from the coordinator (oldest first) —
    /// "why did my update (not) reach the switch?".
    pub fn recent_traces(&self) -> Vec<um::UpdateTrace> {
        self.um
            .lock()
            .as_ref()
            .map(|um| um.recent_traces())
            .unwrap_or_default()
    }

    pub fn relay_stats(&self) -> &Arc<RelayStats> {
        &self.relay_stats
    }

    pub fn gateway_stats(&self) -> &ltap::Stats {
        self.gateway.stats()
    }

    /// Subscribe to administrator alerts (§4.4 failure notifications).
    pub fn alerts(&self) -> crossbeam::channel::Receiver<AdminAlert> {
        self.errorlog.subscribe()
    }

    /// Browse errors logged into the directory.
    pub fn browse_errors(&self) -> ldap::Result<Vec<Entry>> {
        self.errorlog.browse(self.dit.as_ref())
    }

    /// Synchronize the directory with one device (recovery after
    /// disconnection; §4.4). Runs in isolation under LTAP quiesce.
    pub fn synchronize_device(&self, name: &str) -> Result<SyncReport> {
        let filter = self
            .filters
            .iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| MetaError::Unavailable(format!("no device `{name}`")))?;
        sync::synchronize_device(
            &self.gateway,
            &self.engine,
            filter,
            &self.suffix,
            Some(&self.errorlog),
        )
    }

    /// Reapply the directory's materialization onto one device — the
    /// inverse of [`MetaComm::synchronize_device`], used when a device
    /// missed updates while unreachable (outage recovery).
    pub fn resynchronize_device_from_directory(&self, name: &str) -> Result<SyncReport> {
        let filter = self
            .filters
            .iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| MetaError::Unavailable(format!("no device `{name}`")))?;
        sync::resynchronize_device_from_directory(
            &self.gateway,
            &self.engine,
            filter,
            &self.suffix,
            Some(&self.errorlog),
            &self.retry,
            &self.um_stats,
        )
    }

    /// Initial load / full resynchronization.
    pub fn synchronize_all(&self) -> Result<SyncReport> {
        sync::synchronize_all(
            &self.gateway,
            &self.engine,
            &self.filters,
            &self.suffix,
            Some(&self.errorlog),
        )
    }

    /// Arm the E8 fault injection: the next DDU that produces a
    /// ModifyRDN+Modify pair "crashes" between the two operations.
    pub fn inject_crash_between_pair(&self) {
        self.crash_between_pair.store(true, Ordering::SeqCst);
    }

    /// Health snapshot for one device (breaker state, consecutive failures,
    /// queued ops, last error).
    pub fn device_health(&self, name: &str) -> Option<DeviceHealth> {
        self.runtimes.get(name).map(|r| r.health())
    }

    /// Health snapshots for every device, in filter registration order.
    pub fn device_healths(&self) -> Vec<DeviceHealth> {
        self.filters
            .iter()
            .filter_map(|f| self.runtimes.get(f.name()))
            .map(|r| r.health())
            .collect()
    }

    /// The fault-injection control handle for a device configured with
    /// [`MetaCommBuilder::with_fault_plan`].
    pub fn fault_handle(&self, name: &str) -> Option<Arc<FaultHandle>> {
        self.fault_handles.get(name).cloned()
    }

    /// Probe one device synchronously and run recovery if it answers:
    /// drain its outage journal as conditional reapplies, or full-resync if
    /// the journal overflowed. The background monitor does the same thing
    /// on its probe interval; this entry point makes recovery deterministic
    /// for tests and experiments.
    pub fn probe_device(&self, name: &str) -> Result<RecoveryOutcome> {
        let filter = self
            .filters
            .iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| MetaError::Unavailable(format!("no device `{name}`")))?;
        let runtime = self
            .runtimes
            .get(name)
            .ok_or_else(|| MetaError::Unavailable(format!("no device `{name}`")))?;
        let ctx = RecoveryCtx {
            gateway: self.gateway.clone(),
            engine: self.engine.clone(),
            suffix: self.suffix.clone(),
            errorlog: self.errorlog.clone(),
            stats: self.um_stats.clone(),
            retry: self.retry.clone(),
        };
        resilience::attempt_recovery(&ctx, filter, runtime)
    }

    /// Checkpoint a durable deployment: rotate to a fresh WAL segment,
    /// re-log outage-journal state, write a new checksummed snapshot, and
    /// prune old generations (bounding recovery time). No-op without
    /// durability.
    pub fn checkpoint(&self) -> Result<()> {
        if let Some(dur) = &self.durability {
            dur.checkpoint(&self.dit, &self.runtimes)?;
        }
        Ok(())
    }

    /// What recovery-on-boot found and replayed, for a deployment built
    /// with [`MetaCommBuilder::with_durability`] over an existing state
    /// directory. `None` without durability.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.durability.as_ref().map(|d| d.report().clone())
    }

    /// The configured fsync policy (`None` without durability).
    pub fn fsync_policy(&self) -> Option<FsyncPolicy> {
        self.durability.as_ref().map(|d| d.policy())
    }

    /// Wait until the pipeline is quiescent (no DDUs in flight, the UM
    /// queue drained). Used by tests and the experiment harness; detects
    /// stability rather than relying on fixed sleeps.
    pub fn settle(&self) {
        let snapshot = |mc: &MetaComm| {
            (
                ldap::Dit::seq(&mc.dit),
                mc.um_stats.updates.load(Ordering::SeqCst),
                mc.relay_stats.ddus.load(Ordering::SeqCst),
                mc.relay_stats.ops_sent.load(Ordering::SeqCst),
                mc.relay_stats.errors.load(Ordering::SeqCst),
                mc.relay_stats.injected_crashes.load(Ordering::SeqCst),
                mc.um_stats.queued.load(Ordering::SeqCst),
                mc.um_stats.journal_drained.load(Ordering::SeqCst),
                mc.um_stats.full_resyncs.load(Ordering::SeqCst),
                mc.um_stats.breaker_trips.load(Ordering::SeqCst),
            )
        };
        let mut last = snapshot(self);
        let mut stable = 0;
        for _ in 0..500 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            let now = snapshot(self);
            if now == last {
                stable += 1;
                if stable >= 4 {
                    return;
                }
            } else {
                stable = 0;
                last = now;
            }
        }
    }

    /// Stop the recovery monitor, the relays, and the Update Manager (in
    /// that order: the monitor and relays feed the UM).
    pub fn shutdown(&self) {
        if let Some(monitor) = self.monitor.lock().take() {
            let _ = monitor.shutdown.send(());
            let _ = monitor.thread.join();
        }
        if let Some(relays) = self.relays.lock().take() {
            let _ = relays.shutdown.send(());
            for _ in 1..self.filters.len() {
                let _ = relays.shutdown.send(());
            }
            for t in relays.threads {
                let _ = t.join();
            }
        }
        if let Some(mut um) = self.um.lock().take() {
            um.shutdown();
        }
        // Everything committed is already framed in the log; one last sync
        // covers the Never-policy tail so a clean shutdown loses nothing.
        if let Some(dur) = &self.durability {
            dur.sync();
        }
    }
}

impl Drop for MetaComm {
    fn drop(&mut self) {
        self.shutdown();
    }
}
