//! Synchronization (paper §4.4): "the UM also supports the synchronization
//! of preexisting directories. This is necessary to populate the directory
//! initially and to recover from disconnected operations of devices
//! without logging facilities."
//!
//! A synchronization runs in isolation: it opens an LTAP [`ltap::SyncSession`]
//! (which quiesces all ordinary updates — §5.1's persistent connection +
//! quiesce) and reconciles the directory against the device's full dump.

use crate::errorlog::ErrorLog;
use crate::filter::DeviceFilter;
use crate::image::{diff_mods, image_to_entry};
use crate::schema::LAST_UPDATER;
use crate::um::aux_class_mods;
use ldap::dn::Dn;
use ldap::entry::Modification;
use ldap::{Filter, Scope};
use lexpress::{Engine, Image, OpKind, TargetOp, UpdateDescriptor};
use ltap::Gateway;
use std::sync::Arc;

/// What a synchronization did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Person entries created from device records.
    pub added: usize,
    /// Entries whose device attributes were corrected.
    pub repaired: usize,
    /// Entries already consistent.
    pub unchanged: usize,
    /// Entries whose device attributes were cleared because the device no
    /// longer has the record.
    pub cleared: usize,
    /// Device records that could not be reconciled (logged).
    pub failed: usize,
}

impl SyncReport {
    pub fn merge(&mut self, other: &SyncReport) {
        self.added += other.added;
        self.repaired += other.repaired;
        self.unchanged += other.unchanged;
        self.cleared += other.cleared;
        self.failed += other.failed;
    }
}

/// Synchronize the directory with one device. The device is authoritative
/// for its own attributes (its records were the ones that kept working
/// while the link was down).
pub fn synchronize_device(
    gateway: &Arc<Gateway>,
    engine: &Engine,
    filter: &Arc<dyn DeviceFilter>,
    suffix: &Dn,
    errorlog: Option<&ErrorLog>,
) -> crate::error::Result<SyncReport> {
    let mut session = gateway.begin_sync();
    let mut report = SyncReport::default();
    let mapping = filter.mapping_to_ldap();
    let mut device_keys: Vec<String> = Vec::new();
    // key → normalized DN of the entry that canonically owns the record.
    let mut canonical: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for record in filter.dump() {
        // Translate the device record exactly as a DDU add would be.
        let key = record
            .first(filter.key_attr())
            .unwrap_or_default()
            .to_string();
        device_keys.push(key.clone());
        let d = UpdateDescriptor::add(key.clone(), record.clone(), filter.name());
        let top = match engine.translate(&mapping, &d) {
            Ok(t) => t,
            Err(_) => {
                report.failed += 1;
                continue;
            }
        };
        if top.kind == OpKind::Skip {
            continue;
        }
        let dn = match Dn::parse(top.new_key.as_deref().unwrap_or_default()) {
            Ok(dn) if !dn.is_root() => dn,
            _ => {
                report.failed += 1;
                continue;
            }
        };
        // Two device records mapping to the same person DN cannot both be
        // represented (the integrated schema keys people by name). This
        // happens after half-crashed renames leave duplicate names on the
        // device — the paper's "extreme case": log it for the
        // administrator instead of silently merging (§4.4).
        if let Some((other_key, _)) = canonical
            .iter()
            .find(|(k, v)| **v == dn.norm_key() && **k != key)
            .map(|(k, v)| (k.clone(), v.clone()))
        {
            report.failed += 1;
            if let Some(log) = errorlog {
                log.log(
                    gateway.inner().as_ref(),
                    0,
                    &format!(
                        "sync conflict at {}: device records {other_key} and {key} \
                         both map to {dn}; fix the duplicate name on the device",
                        filter.name()
                    ),
                    &format!("{record}"),
                );
            }
            continue;
        }
        canonical.insert(key.clone(), dn.norm_key());
        match session.get(&dn)? {
            Some(existing) => {
                let mut attrs = top.attrs.clone();
                attrs.remove(LAST_UPDATER); // reconciliation, not an update
                let mut mods = aux_class_mods(&existing, &attrs);
                mods.extend(diff_mods(&existing, &attrs));
                if mods.is_empty() {
                    report.unchanged += 1;
                } else {
                    session.modify(&dn, &mods)?;
                    report.repaired += 1;
                }
            }
            None => {
                let entry = image_to_entry(dn, &top.attrs);
                session.add(entry)?;
                report.added += 1;
            }
        }
    }
    // Stale directory data: entries claiming device data whose key the
    // device no longer has.
    let presence = filter.ldap_presence_attr();
    let holders = session.search(
        suffix,
        Scope::Sub,
        &Filter::parse(&format!("({presence}=*)")).expect("valid filter"),
        &[],
        0,
    )?;
    for entry in holders {
        let key = entry.first(&presence).unwrap_or_default().to_string();
        if device_keys.contains(&key) {
            // The device still has this record — but only ONE entry may
            // claim it. A crashed rename can leave a stale entry under the
            // old name claiming the same key as the canonical entry.
            if canonical.get(&key) == Some(&entry.dn().norm_key()) {
                continue;
            }
        }
        // Respect partitioning: only clear entries THIS device's constraint
        // claims (another switch may own the extension).
        let probe = UpdateDescriptor::delete(
            entry.dn().to_string(),
            crate::image::entry_to_image(&entry),
            filter.name(),
        );
        match engine.translate(&filter.mapping_from_ldap(), &probe) {
            Ok(top) if top.kind == OpKind::Delete => {}
            _ => continue,
        }
        let mods: Vec<Modification> = filter
            .ldap_owned_attrs()
            .iter()
            .filter(|a| entry.has_attr(a))
            .map(|a| Modification::delete_attr(a.clone()))
            .chain(std::iter::once(Modification::set(
                LAST_UPDATER,
                filter.name(),
            )))
            .collect();
        session.modify(entry.dn(), &mods)?;
        report.cleared += 1;
    }
    Ok(report)
}

/// Initial load / full resynchronization across every device.
pub fn synchronize_all(
    gateway: &Arc<Gateway>,
    engine: &Engine,
    filters: &[Arc<dyn DeviceFilter>],
    suffix: &Dn,
    errorlog: Option<&ErrorLog>,
) -> crate::error::Result<SyncReport> {
    let mut total = SyncReport::default();
    for f in filters {
        let r = synchronize_device(gateway, engine, f, suffix, errorlog)?;
        total.merge(&r);
    }
    Ok(total)
}

/// The inverse direction: reapply the directory's current materialization
/// onto a device that missed updates while its circuit breaker was open and
/// whose outage journal overflowed. Here the *directory* is authoritative —
/// the device was unreachable the whole time, so its records are stale, not
/// ahead. Report fields read device-side: `added`/`repaired`/`cleared`
/// count device records created/corrected/removed.
pub fn resynchronize_device_from_directory(
    gateway: &Arc<Gateway>,
    engine: &Engine,
    filter: &Arc<dyn DeviceFilter>,
    suffix: &Dn,
    errorlog: Option<&ErrorLog>,
    retry: &crate::resilience::RetryPolicy,
    stats: &crate::um::UmStats,
) -> crate::error::Result<SyncReport> {
    let mut report = SyncReport::default();
    let dir = gateway.inner();
    let presence = filter.ldap_presence_attr();
    let holders = dir.search(
        suffix,
        Scope::Sub,
        &Filter::parse(&format!("({presence}=*)")).expect("valid filter"),
        &[],
        0,
    )?;
    // Current device state, keyed the way the device keys it.
    let mut device: std::collections::HashMap<String, Image> = filter
        .dump()
        .into_iter()
        .filter_map(|r| {
            let key = r.first(filter.key_attr())?.to_string();
            Some((key, r))
        })
        .collect();
    for entry in holders {
        let d = UpdateDescriptor::add(
            entry.dn().to_string(),
            crate::image::entry_to_image(&entry),
            filter.name(),
        );
        let mut top = match engine.translate(&filter.mapping_from_ldap(), &d) {
            Ok(t) => t,
            Err(_) => {
                report.failed += 1;
                continue;
            }
        };
        if top.kind == OpKind::Skip {
            continue; // another device's partition
        }
        let Some(key) = top.new_key.clone() else {
            report.failed += 1;
            continue;
        };
        let existing = device.remove(&key);
        if let Some(rec) = &existing {
            // The device may carry generated fields the directory never set
            // (defaults filled in at add time) — only the attrs the
            // directory materializes need to match.
            let consistent = top
                .attrs
                .iter()
                .all(|(name, values)| rec.first(name) == values.first().map(String::as_str));
            if consistent {
                report.unchanged += 1;
                continue;
            }
        }
        // §5.4 conditional add: modify-then-add, i.e. an upsert. Retried —
        // a still-flaky link must not silently shrink the resync.
        top.conditional = true;
        match crate::resilience::apply_with_retry(filter, &top, retry, stats) {
            Ok(outcome) => {
                if existing.is_some() {
                    report.repaired += 1;
                } else {
                    report.added += 1;
                }
                // Fold device-generated info back into the directory.
                if let Some(gen) = outcome.generated {
                    let mut mods = aux_class_mods(&entry, &gen);
                    for (name, values) in gen.iter() {
                        if entry.values(name) != values {
                            mods.push(Modification::replace(name.to_string(), values.to_vec()));
                        }
                    }
                    if !mods.is_empty() {
                        let _ = dir.modify(entry.dn(), &mods);
                    }
                }
            }
            Err(e) => {
                report.failed += 1;
                if let Some(log) = errorlog {
                    log.log(
                        dir.as_ref(),
                        0,
                        &format!("resync of {key} to {} failed: {e}", filter.name()),
                        &format!("{top:?}"),
                    );
                }
            }
        }
    }
    // Device records no directory entry claims: the person (or their claim
    // to this device) was removed while the device was unreachable.
    for key in device.into_keys() {
        let top = TargetOp {
            kind: OpKind::Delete,
            conditional: true,
            old_key: Some(key.clone()),
            new_key: None,
            attrs: Image::new(),
            old_attrs: Image::new(),
        };
        match crate::resilience::apply_with_retry(filter, &top, retry, stats) {
            Ok(_) => report.cleared += 1,
            Err(e) => {
                report.failed += 1;
                if let Some(log) = errorlog {
                    log.log(
                        dir.as_ref(),
                        0,
                        &format!("resync removal of {key} at {} failed: {e}", filter.name()),
                        &format!("{top:?}"),
                    );
                }
            }
        }
    }
    Ok(report)
}
