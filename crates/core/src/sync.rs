//! Synchronization (paper §4.4): "the UM also supports the synchronization
//! of preexisting directories. This is necessary to populate the directory
//! initially and to recover from disconnected operations of devices
//! without logging facilities."
//!
//! A synchronization runs in isolation: it opens an LTAP [`ltap::SyncSession`]
//! (which quiesces all ordinary updates — §5.1's persistent connection +
//! quiesce) and reconciles the directory against the device's full dump.

use crate::errorlog::ErrorLog;
use crate::filter::DeviceFilter;
use crate::image::{diff_mods, image_to_entry};
use crate::schema::LAST_UPDATER;
use crate::um::aux_class_mods;
use lexpress::{Engine, OpKind, UpdateDescriptor};
use ldap::dn::Dn;
use ldap::entry::Modification;
use ldap::{Filter, Scope};
use ltap::Gateway;
use std::sync::Arc;

/// What a synchronization did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Person entries created from device records.
    pub added: usize,
    /// Entries whose device attributes were corrected.
    pub repaired: usize,
    /// Entries already consistent.
    pub unchanged: usize,
    /// Entries whose device attributes were cleared because the device no
    /// longer has the record.
    pub cleared: usize,
    /// Device records that could not be reconciled (logged).
    pub failed: usize,
}

impl SyncReport {
    pub fn merge(&mut self, other: &SyncReport) {
        self.added += other.added;
        self.repaired += other.repaired;
        self.unchanged += other.unchanged;
        self.cleared += other.cleared;
        self.failed += other.failed;
    }
}

/// Synchronize the directory with one device. The device is authoritative
/// for its own attributes (its records were the ones that kept working
/// while the link was down).
pub fn synchronize_device(
    gateway: &Arc<Gateway>,
    engine: &Engine,
    filter: &Arc<dyn DeviceFilter>,
    suffix: &Dn,
    errorlog: Option<&ErrorLog>,
) -> crate::error::Result<SyncReport> {
    let mut session = gateway.begin_sync();
    let mut report = SyncReport::default();
    let mapping = filter.mapping_to_ldap();
    let mut device_keys: Vec<String> = Vec::new();
    // key → normalized DN of the entry that canonically owns the record.
    let mut canonical: std::collections::HashMap<String, String> =
        std::collections::HashMap::new();
    for record in filter.dump() {
        // Translate the device record exactly as a DDU add would be.
        let key = record
            .first("Extension")
            .or_else(|| record.first("Mailbox"))
            .unwrap_or_default()
            .to_string();
        device_keys.push(key.clone());
        let d = UpdateDescriptor::add(key.clone(), record.clone(), filter.name());
        let top = match engine.translate(&mapping, &d) {
            Ok(t) => t,
            Err(_) => {
                report.failed += 1;
                continue;
            }
        };
        if top.kind == OpKind::Skip {
            continue;
        }
        let dn = match Dn::parse(top.new_key.as_deref().unwrap_or_default()) {
            Ok(dn) if !dn.is_root() => dn,
            _ => {
                report.failed += 1;
                continue;
            }
        };
        // Two device records mapping to the same person DN cannot both be
        // represented (the integrated schema keys people by name). This
        // happens after half-crashed renames leave duplicate names on the
        // device — the paper's "extreme case": log it for the
        // administrator instead of silently merging (§4.4).
        if let Some((other_key, _)) = canonical
            .iter()
            .find(|(k, v)| **v == dn.norm_key() && **k != key)
            .map(|(k, v)| (k.clone(), v.clone()))
        {
            report.failed += 1;
            if let Some(log) = errorlog {
                log.log(
                    gateway.inner().as_ref(),
                    0,
                    &format!(
                        "sync conflict at {}: device records {other_key} and {key} \
                         both map to {dn}; fix the duplicate name on the device",
                        filter.name()
                    ),
                    &format!("{record}"),
                );
            }
            continue;
        }
        canonical.insert(key.clone(), dn.norm_key());
        match session.get(&dn)? {
            Some(existing) => {
                let mut attrs = top.attrs.clone();
                attrs.remove(LAST_UPDATER); // reconciliation, not an update
                let mut mods = aux_class_mods(&existing, &attrs);
                mods.extend(diff_mods(&existing, &attrs));
                if mods.is_empty() {
                    report.unchanged += 1;
                } else {
                    session.modify(&dn, &mods)?;
                    report.repaired += 1;
                }
            }
            None => {
                let entry = image_to_entry(dn, &top.attrs);
                session.add(entry)?;
                report.added += 1;
            }
        }
    }
    // Stale directory data: entries claiming device data whose key the
    // device no longer has.
    let presence = filter.ldap_presence_attr();
    let holders = session.search(
        suffix,
        Scope::Sub,
        &Filter::parse(&format!("({presence}=*)")).expect("valid filter"),
        &[],
        0,
    )?;
    for entry in holders {
        let key = entry.first(&presence).unwrap_or_default().to_string();
        if device_keys.contains(&key) {
            // The device still has this record — but only ONE entry may
            // claim it. A crashed rename can leave a stale entry under the
            // old name claiming the same key as the canonical entry.
            if canonical.get(&key) == Some(&entry.dn().norm_key()) {
                continue;
            }
        }
        // Respect partitioning: only clear entries THIS device's constraint
        // claims (another switch may own the extension).
        let probe = UpdateDescriptor::delete(
            entry.dn().to_string(),
            crate::image::entry_to_image(&entry),
            filter.name(),
        );
        match engine.translate(&filter.mapping_from_ldap(), &probe) {
            Ok(top) if top.kind == OpKind::Delete => {}
            _ => continue,
        }
        let mods: Vec<Modification> = filter
            .ldap_owned_attrs()
            .iter()
            .filter(|a| entry.has_attr(a))
            .map(|a| Modification::delete_attr(a.clone()))
            .chain(std::iter::once(Modification::set(
                LAST_UPDATER,
                filter.name(),
            )))
            .collect();
        session.modify(entry.dn(), &mods)?;
        report.cleared += 1;
    }
    Ok(report)
}

/// Initial load / full resynchronization across every device.
pub fn synchronize_all(
    gateway: &Arc<Gateway>,
    engine: &Engine,
    filters: &[Arc<dyn DeviceFilter>],
    suffix: &Dn,
    errorlog: Option<&ErrorLog>,
) -> crate::error::Result<SyncReport> {
    let mut total = SyncReport::default();
    for f in filters {
        let r = synchronize_device(gateway, engine, f, suffix, errorlog)?;
        total.merge(&r);
    }
    Ok(total)
}
