//! Device-outage resilience: retry, per-device circuit breaker, and the
//! store-and-forward outage journal.
//!
//! The paper's failure story (§4.4) is abort-log-alert plus full
//! resynchronization after reconnection. This module adds the intermediate
//! regime a production deployment needs: transient device faults are
//! retried with bounded exponential backoff; a device that keeps failing
//! trips a per-device circuit breaker (`Up → Degraded → Offline`); while
//! `Offline`, translated device operations are appended to a bounded
//! outage journal instead of failing the client update — the directory
//! stays authoritative, exactly as during disconnected operation in the
//! paper. A recovery monitor probes offline devices and, on reconnect,
//! drains the journal as *conditional* reapplied operations (§5.4),
//! falling back to a full directory→device resynchronization
//! ([`crate::sync::resynchronize_device_from_directory`]) when the
//! journal overflowed its bound. Every state transition emits a §4.4
//! administrator alert.

use crate::errorlog::ErrorLog;
use crate::filter::DeviceFilter;
use crate::um::UmStats;
use ldap::dn::Dn;
use ldap::Directory;
use lexpress::TargetOp;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded retry with exponential backoff and jitter, applied to transient
/// device faults in both device-apply paths (UM coordinator and DDU relay).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before attempt N+1 is `base_delay * 2^(N-1)`, jittered.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Overall budget across attempts: once this much wall-clock time has
    /// been spent on an operation, remaining attempts are forfeited.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            deadline: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// No retries at all (useful in tests that count device attempts).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff to sleep after failed attempt `attempt` (1-based): capped
    /// exponential with ±50% jitter.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_delay);
        // Jitter source: each `RandomState` is freshly (randomly) keyed, so
        // hashing the attempt number yields a different fraction per call —
        // the core crate deliberately takes no RNG dependency.
        let state = std::collections::hash_map::RandomState::new();
        let frac = (state.hash_one(attempt) % 1000) as f64 / 1000.0; // [0, 1)
        capped.mul_f64(0.5 + frac)
    }
}

/// Apply `op` at `filter`, retrying transient faults per `retry`.
/// Returns the outcome of the first success, or the last error once
/// attempts or the deadline run out. Retries are counted in `stats`.
pub fn apply_with_retry(
    filter: &Arc<dyn DeviceFilter>,
    op: &TargetOp,
    retry: &RetryPolicy,
    stats: &UmStats,
) -> crate::error::Result<crate::filter::ApplyOutcome> {
    let started = Instant::now();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match filter.apply(op) {
            Ok(outcome) => return Ok(outcome),
            Err(e)
                if e.is_transient()
                    && attempt < retry.max_attempts
                    && started.elapsed() < retry.deadline =>
            {
                stats.retried.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(retry.backoff(attempt));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Circuit-breaker thresholds and journal bound for one device.
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive failures before the device is reported `Degraded`.
    pub degraded_after: u32,
    /// Consecutive failures before the breaker opens (`Offline`) and
    /// translated operations start queueing instead of applying.
    pub offline_after: u32,
    /// Outage-journal bound: past this many queued ops the journal is
    /// abandoned and recovery falls back to full resynchronization.
    pub journal_cap: usize,
    /// How often the recovery monitor probes non-`Up` devices.
    pub probe_interval: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            degraded_after: 1,
            offline_after: 3,
            journal_cap: 512,
            probe_interval: Duration::from_millis(25),
        }
    }
}

/// Device health, per the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Normal operation: translated ops apply directly.
    Up,
    /// Recent failures, still applying directly (with retry).
    Degraded,
    /// Breaker open: translated ops queue in the outage journal.
    Offline,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Up => write!(f, "up"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Offline => write!(f, "offline"),
        }
    }
}

/// Snapshot of one device's health (the [`crate::MetaComm::device_health`]
/// API).
#[derive(Debug, Clone)]
pub struct DeviceHealth {
    pub device: String,
    pub state: HealthState,
    pub consecutive_failures: u32,
    /// Translated operations waiting in the outage journal.
    pub queued_ops: usize,
    /// The journal overflowed: recovery will resynchronize instead of
    /// draining.
    pub journal_overflowed: bool,
    /// Operations discarded after the overflow (recovered only by the full
    /// resynchronization).
    pub dropped_ops: usize,
    pub last_error: Option<String>,
}

/// One queued translated operation awaiting reapplication.
#[derive(Debug, Clone)]
struct JournaledOp {
    ticket: u64,
    op: TargetOp,
    /// Directory entry the op concerns (post-update DN), for folding
    /// device-generated information back in when the op finally applies.
    dn: Option<Dn>,
}

/// Observer of outage-journal mutations, implemented by the durability
/// layer to mirror the journal into the write-ahead log. Callbacks are
/// invoked OUTSIDE the runtime's inner lock (the WAL append may fsync and
/// the checkpoint path takes locks of its own), so two racing mutations may
/// reach the log out of order — recovery reconciles by ticket, which is
/// unique per device and assigned in queue order.
pub(crate) trait JournalSink: Send + Sync {
    /// An op entered the journal under `ticket`.
    fn pushed(&self, device: &str, ticket: u64, op: &TargetOp, dn: Option<&Dn>);
    /// Tickets were withdrawn (client update aborted).
    fn discarded(&self, device: &str, tickets: &[u64]);
    /// A ticket drained: its op was reapplied to the device.
    fn popped(&self, device: &str, ticket: u64);
    /// The journal overflowed: queued ops abandoned pending full resync.
    fn overflowed(&self, device: &str);
    /// The backlog is fully resolved (drain or resynchronization done).
    /// `below` is the device's ticket high-water mark, captured under the
    /// same lock that observed the resolution: recovery must only clear
    /// ops whose ticket is below it. If the device relapses immediately, a
    /// newly queued op's `pushed` event can race this one into the log —
    /// its ticket is `>= below`, so the guard keeps it alive at replay.
    fn cleared(&self, device: &str, below: u64);
}

#[derive(Debug)]
struct RuntimeInner {
    state: HealthState,
    consecutive_failures: u32,
    journal: VecDeque<JournaledOp>,
    overflowed: bool,
    dropped_ops: usize,
    draining: bool,
    last_error: Option<String>,
}

/// Per-device breaker state + outage journal. Shared between the UM
/// coordinator (which records outcomes and journals ops) and the recovery
/// monitor (which probes and drains).
pub struct DeviceRuntime {
    name: String,
    policy: BreakerPolicy,
    errorlog: Arc<ErrorLog>,
    dir: Arc<dyn Directory>,
    stats: Arc<UmStats>,
    obs: Arc<crate::obs::DeviceObs>,
    next_ticket: AtomicU64,
    inner: Mutex<RuntimeInner>,
    sink: Mutex<Option<Arc<dyn JournalSink>>>,
}

impl DeviceRuntime {
    pub(crate) fn new(
        name: &str,
        policy: BreakerPolicy,
        errorlog: Arc<ErrorLog>,
        dir: Arc<dyn Directory>,
        stats: Arc<UmStats>,
        obs: Arc<crate::obs::DeviceObs>,
    ) -> Arc<DeviceRuntime> {
        Arc::new(DeviceRuntime {
            name: name.to_string(),
            policy,
            errorlog,
            dir,
            stats,
            obs,
            next_ticket: AtomicU64::new(1),
            inner: Mutex::new(RuntimeInner {
                state: HealthState::Up,
                consecutive_failures: 0,
                journal: VecDeque::new(),
                overflowed: false,
                dropped_ops: 0,
                draining: false,
                last_error: None,
            }),
            sink: Mutex::new(None),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Install the durability observer. At most one; later calls replace it.
    pub(crate) fn set_journal_sink(&self, sink: Arc<dyn JournalSink>) {
        *self.sink.lock() = Some(sink);
    }

    fn with_sink(&self, f: impl FnOnce(&dyn JournalSink)) {
        let sink = self.sink.lock().clone();
        if let Some(s) = sink {
            f(s.as_ref());
        }
    }

    /// A consistent copy of the queued backlog, for checkpointing:
    /// `(ops in queue order, journal overflowed)`.
    pub(crate) fn journal_snapshot(&self) -> (Vec<(u64, TargetOp, Option<Dn>)>, bool) {
        let g = self.inner.lock();
        (
            g.journal
                .iter()
                .map(|j| (j.ticket, j.op.clone(), j.dn.clone()))
                .collect(),
            g.overflowed,
        )
    }

    /// Reload the outage journal after a restart. Ops are sorted by ticket
    /// (WAL record order can race; ticket order is queue order), the ticket
    /// counter resumes above everything seen, and a device with a backlog
    /// (or pending resync) restarts `Offline` so the recovery monitor
    /// probes and drains it — the paper's reconnect flow, not a blind
    /// assumption that the device is fine.
    pub(crate) fn restore_journal(
        &self,
        mut ops: Vec<(u64, TargetOp, Option<Dn>)>,
        overflowed: bool,
    ) {
        ops.sort_by_key(|(ticket, _, _)| *ticket);
        // A checkpoint's STATE record can race an event for the same
        // ticket into the log; replay then recovers the op twice.
        ops.dedup_by_key(|(ticket, _, _)| *ticket);
        let max_ticket = ops.last().map(|(t, _, _)| *t).unwrap_or(0);
        let mut g = self.inner.lock();
        self.next_ticket.fetch_max(max_ticket + 1, Ordering::SeqCst);
        g.journal = ops
            .into_iter()
            .map(|(ticket, op, dn)| JournaledOp { ticket, op, dn })
            .collect();
        g.overflowed = overflowed;
        if overflowed {
            g.journal.clear();
        }
        if !g.journal.is_empty() || g.overflowed {
            g.state = HealthState::Offline;
        }
    }

    pub fn health(&self) -> DeviceHealth {
        let g = self.inner.lock();
        DeviceHealth {
            device: self.name.clone(),
            state: g.state,
            consecutive_failures: g.consecutive_failures,
            queued_ops: g.journal.len(),
            journal_overflowed: g.overflowed,
            dropped_ops: g.dropped_ops,
            last_error: g.last_error.clone(),
        }
    }

    /// Should the coordinator bypass the device and journal this op?
    /// True while the breaker is open — and also while queued ops exist or
    /// a drain is running, so reapplication stays FIFO with live traffic.
    pub(crate) fn should_journal(&self) -> bool {
        let g = self.inner.lock();
        g.state == HealthState::Offline || !g.journal.is_empty() || g.draining
    }

    /// Append a translated op to the outage journal. Returns a ticket that
    /// [`DeviceRuntime::discard_tickets`] can use to withdraw the op if the
    /// surrounding client update later aborts. `None` when the journal has
    /// overflowed (the op is dropped and counted; full resync recovers it).
    pub(crate) fn journal(&self, op: TargetOp, dn: Option<Dn>) -> Option<u64> {
        let mut g = self.inner.lock();
        if g.overflowed {
            g.dropped_ops += 1;
            return None;
        }
        if g.journal.len() >= self.policy.journal_cap {
            g.overflowed = true;
            g.dropped_ops += g.journal.len() + 1;
            g.journal.clear();
            drop(g);
            self.with_sink(|s| s.overflowed(&self.name));
            self.errorlog.log(
                self.dir.as_ref(),
                0,
                &format!(
                    "device {} outage journal overflowed at {} ops; queued ops \
                     abandoned, full resynchronization scheduled on reconnect",
                    self.name, self.policy.journal_cap
                ),
                "journal overflow",
            );
            return None;
        }
        let ticket = self.next_ticket.fetch_add(1, Ordering::SeqCst);
        g.journal.push_back(JournaledOp {
            ticket,
            op: op.clone(),
            dn: dn.clone(),
        });
        drop(g);
        self.with_sink(|s| s.pushed(&self.name, ticket, &op, dn.as_ref()));
        self.stats.queued.fetch_add(1, Ordering::Relaxed);
        self.obs.queued.inc();
        Some(ticket)
    }

    /// Withdraw journaled ops whose client update aborted (the directory
    /// never saw the update either, so reapplying them would diverge).
    pub(crate) fn discard_tickets(&self, tickets: &[u64]) {
        if tickets.is_empty() {
            return;
        }
        {
            let mut g = self.inner.lock();
            g.journal.retain(|j| !tickets.contains(&j.ticket));
        }
        self.with_sink(|s| s.discarded(&self.name, tickets));
    }

    /// Record a failed (post-retry) device apply; advances the breaker and
    /// alerts on each state transition (§4.4).
    pub(crate) fn record_failure(&self, seq: u64, error: &crate::error::MetaError) {
        let transition = {
            let mut g = self.inner.lock();
            g.consecutive_failures += 1;
            g.last_error = Some(error.to_string());
            let next = if g.consecutive_failures >= self.policy.offline_after {
                HealthState::Offline
            } else if g.consecutive_failures >= self.policy.degraded_after {
                HealthState::Degraded
            } else {
                g.state
            };
            if next != g.state {
                let prev = g.state;
                g.state = next;
                Some((prev, next, g.consecutive_failures))
            } else {
                None
            }
        };
        if let Some((prev, next, failures)) = transition {
            if next == HealthState::Offline {
                self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                self.obs.breaker_trips.inc();
            }
            self.errorlog.log(
                self.dir.as_ref(),
                seq,
                &format!(
                    "device {} {prev} -> {next} after {failures} consecutive \
                     failures: {error}{}",
                    self.name,
                    if next == HealthState::Offline {
                        "; translated operations now queue in the outage journal"
                    } else {
                        ""
                    },
                ),
                "device health transition",
            );
        }
    }

    /// Record a successful device apply: closes the breaker (with an alert
    /// if the device was not `Up`).
    pub(crate) fn record_success(&self) {
        let recovered = {
            let mut g = self.inner.lock();
            g.consecutive_failures = 0;
            g.last_error = None;
            if g.state != HealthState::Up && g.journal.is_empty() && !g.draining {
                let prev = g.state;
                g.state = HealthState::Up;
                Some(prev)
            } else {
                if g.state == HealthState::Degraded {
                    g.state = HealthState::Up;
                }
                None
            }
        };
        if let Some(prev) = recovered {
            self.errorlog.log(
                self.dir.as_ref(),
                0,
                &format!("device {} {prev} -> up", self.name),
                "device health transition",
            );
        }
    }
}

/// Everything the recovery path needs to reconcile one device.
pub(crate) struct RecoveryCtx {
    pub gateway: Arc<ltap::Gateway>,
    pub engine: Arc<lexpress::Engine>,
    pub suffix: Dn,
    pub errorlog: Arc<ErrorLog>,
    pub stats: Arc<UmStats>,
    pub retry: RetryPolicy,
}

/// Outcome of one recovery attempt (surfaced by
/// [`crate::MetaComm::probe_device`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Device is `Up` with nothing queued: no work.
    Healthy,
    /// Probe still failing; device remains offline.
    StillDown,
    /// Journal drained: this many ops reapplied (conditionally, §5.4).
    Drained(usize),
    /// Journal had overflowed: full resynchronization ran instead.
    Resynchronized(crate::sync::SyncReport),
}

/// Probe a device and, if it answers, reapply its backlog: drain the
/// journal as conditional ops, or run a full directory→device
/// resynchronization when the journal overflowed. Called by the recovery
/// monitor on its probe interval and synchronously by
/// [`crate::MetaComm::probe_device`].
pub(crate) fn attempt_recovery(
    ctx: &RecoveryCtx,
    filter: &Arc<dyn DeviceFilter>,
    runtime: &Arc<DeviceRuntime>,
) -> crate::error::Result<RecoveryOutcome> {
    // Claim the recovery: the `draining` flag is both the mutual exclusion
    // between concurrent recoveries (monitor vs. explicit probe) and the
    // signal that keeps the coordinator journaling new ops behind the
    // backlog while the drain runs.
    let (overflowed, queued) = {
        let mut g = runtime.inner.lock();
        if g.draining {
            return Ok(RecoveryOutcome::StillDown);
        }
        let needs_work = g.state != HealthState::Up || !g.journal.is_empty() || g.overflowed;
        if !needs_work {
            return Ok(RecoveryOutcome::Healthy);
        }
        g.draining = true;
        (g.overflowed, g.journal.len())
    };
    if let Err(e) = filter.probe() {
        let mut g = runtime.inner.lock();
        g.draining = false;
        g.last_error = Some(e.to_string());
        return Ok(RecoveryOutcome::StillDown);
    }
    ctx.errorlog.log(
        ctx.gateway.inner().as_ref(),
        0,
        &format!(
            "device {} reconnected; {}",
            runtime.name,
            if overflowed {
                "journal overflowed during the outage — running full resynchronization".to_string()
            } else {
                format!("draining {queued} queued ops")
            }
        ),
        "device reconnect",
    );
    if overflowed {
        // Directory→device: the device was unreachable the whole outage, so
        // the directory (which kept taking client updates) is authoritative.
        let report = match crate::sync::resynchronize_device_from_directory(
            &ctx.gateway,
            &ctx.engine,
            filter,
            &ctx.suffix,
            Some(&ctx.errorlog),
            &ctx.retry,
            &ctx.stats,
        ) {
            Ok(r) => r,
            Err(e) => {
                let mut g = runtime.inner.lock();
                g.draining = false;
                g.last_error = Some(e.to_string());
                return Err(e);
            }
        };
        ctx.stats.full_resyncs.fetch_add(1, Ordering::Relaxed);
        runtime.obs.resyncs.inc();
        let below = {
            let mut g = runtime.inner.lock();
            g.journal.clear();
            g.overflowed = false;
            g.dropped_ops = 0;
            g.consecutive_failures = 0;
            g.last_error = None;
            g.draining = false;
            g.state = HealthState::Up;
            // Tickets are allocated under this lock, so everything queued
            // from here on is >= this mark and survives the cleared event.
            runtime.next_ticket.load(Ordering::SeqCst)
        };
        runtime.with_sink(|s| s.cleared(&runtime.name, below));
        ctx.errorlog.log(
            ctx.gateway.inner().as_ref(),
            0,
            &format!(
                "device {} offline -> up (recovered via full resynchronization: \
                 {} added, {} repaired, {} cleared)",
                runtime.name, report.added, report.repaired, report.cleared
            ),
            "device health transition",
        );
        return Ok(RecoveryOutcome::Resynchronized(report));
    }
    // Drain the journal FIFO. New coordinator traffic keeps queueing behind
    // the drain (`should_journal` sees `draining`), so device-visible order
    // is preserved.
    let mut reapplied = 0usize;
    let below = loop {
        // Ok(op) to reapply, or Err(ticket high-water) once the journal is
        // observed empty — both decided under the inner lock.
        let next = {
            let mut g = runtime.inner.lock();
            match g.journal.pop_front() {
                Some(j) => Ok(j),
                None => {
                    // Transition and flag-clear under the same lock as the
                    // emptiness check: no op can slip in unjournaled, and
                    // anything queued after the Up transition gets a ticket
                    // >= this mark, surviving the cleared event at replay.
                    g.draining = false;
                    g.consecutive_failures = 0;
                    g.last_error = None;
                    g.state = HealthState::Up;
                    Err(runtime.next_ticket.load(Ordering::SeqCst))
                }
            }
        };
        let j = match next {
            Ok(j) => j,
            Err(below) => break below,
        };
        // §5.4: reapplication is conditional — the op must tolerate already
        // (or never) applying.
        let mut op = j.op.clone();
        op.conditional = true;
        let t0 = runtime.obs.clock.now_ns();
        let outcome = apply_with_retry(filter, &op, &ctx.retry, &ctx.stats);
        runtime
            .obs
            .reapply
            .record(runtime.obs.clock.now_ns().saturating_sub(t0));
        match outcome {
            Ok(outcome) => {
                reapplied += 1;
                runtime.obs.drained.inc();
                runtime.with_sink(|s| s.popped(&runtime.name, j.ticket));
                ctx.stats.device_ops.fetch_add(1, Ordering::Relaxed);
                if outcome.reapplied {
                    ctx.stats.reapplied.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(gen) = outcome.generated {
                    fold_generated(ctx, &j.dn, &gen);
                }
            }
            Err(e) if e.is_transient() => {
                // Mid-drain relapse: requeue at the front and go back
                // offline; the next probe retries from here.
                {
                    let mut g = runtime.inner.lock();
                    g.journal.push_front(j);
                    g.draining = false;
                    g.consecutive_failures += 1;
                    g.last_error = Some(e.to_string());
                    g.state = HealthState::Offline;
                }
                ctx.stats
                    .journal_drained
                    .fetch_add(reapplied, Ordering::Relaxed);
                ctx.errorlog.log(
                    ctx.gateway.inner().as_ref(),
                    0,
                    &format!(
                        "device {} relapsed mid-drain after {reapplied} ops: {e}",
                        runtime.name
                    ),
                    "device health transition",
                );
                return Ok(RecoveryOutcome::StillDown);
            }
            Err(e) => {
                // Semantic rejection of a queued op: the client saw success
                // long ago, so all that remains is §4.4 log-and-alert. The
                // op leaves the journal permanently — pop it durably too.
                runtime.with_sink(|s| s.popped(&runtime.name, j.ticket));
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                ctx.errorlog.log(
                    ctx.gateway.inner().as_ref(),
                    0,
                    &format!(
                        "device {} rejected queued op during journal drain: {e}",
                        runtime.name
                    ),
                    &format!("{:?}", j.op),
                );
            }
        }
    };
    runtime.with_sink(|s| s.cleared(&runtime.name, below));
    ctx.stats
        .journal_drained
        .fetch_add(reapplied, Ordering::Relaxed);
    ctx.errorlog.log(
        ctx.gateway.inner().as_ref(),
        0,
        &format!(
            "device {} offline -> up (journal drained, {reapplied} ops reapplied)",
            runtime.name
        ),
        "device health transition",
    );
    Ok(RecoveryOutcome::Drained(reapplied))
}

/// Fold device-generated information from a drained op back into the
/// directory (§5.5) — written directly to the server, exactly as the UM
/// coordinator does after a live apply.
fn fold_generated(ctx: &RecoveryCtx, dn: &Option<Dn>, gen: &lexpress::Image) {
    let Some(dn) = dn else { return };
    let dir = ctx.gateway.inner();
    let Ok(Some(entry)) = dir.get(dn) else { return };
    let mut mods = crate::um::aux_class_mods(&entry, gen);
    for (name, values) in gen.iter() {
        if entry.values(name) != values {
            mods.push(ldap::entry::Modification::replace(
                name.to_string(),
                values.to_vec(),
            ));
        }
    }
    if !mods.is_empty() && dir.modify(dn, &mods).is_ok() {
        ctx.stats.generated_merges.fetch_add(1, Ordering::Relaxed);
    }
}

/// Handle to the background recovery monitor.
pub(crate) struct MonitorHandle {
    pub shutdown: crossbeam::channel::Sender<()>,
    pub thread: std::thread::JoinHandle<()>,
}

/// Spawn the recovery monitor: every probe interval, attempt recovery of
/// any device that is not `Up` (or has a backlog).
pub(crate) fn spawn_monitor(
    ctx: RecoveryCtx,
    devices: Vec<(Arc<dyn DeviceFilter>, Arc<DeviceRuntime>)>,
    interval: Duration,
) -> MonitorHandle {
    let (tx, rx) = crossbeam::channel::unbounded::<()>();
    let thread = std::thread::Builder::new()
        .name("device-recovery-monitor".into())
        .spawn(move || loop {
            match rx.recv_timeout(interval) {
                Ok(()) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    for (filter, runtime) in &devices {
                        let _ = attempt_recovery(&ctx, filter, runtime);
                    }
                }
            }
        })
        .expect("spawn recovery monitor");
    MonitorHandle {
        shutdown: tx,
        thread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_grows() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(4),
            max_delay: Duration::from_millis(20),
            deadline: Duration::from_secs(1),
        };
        for attempt in 1..=8 {
            let d = p.backoff(attempt);
            // ±50% jitter around the capped exponential.
            assert!(d <= Duration::from_millis(30), "attempt {attempt}: {d:?}");
            assert!(d >= Duration::from_millis(2), "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn health_state_display() {
        assert_eq!(HealthState::Up.to_string(), "up");
        assert_eq!(HealthState::Degraded.to_string(), "degraded");
        assert_eq!(HealthState::Offline.to_string(), "offline");
    }
}
