//! Failure handling (paper §4.4): "the update is aborted, an error is
//! logged into the directory, and a notification is sent to the
//! administrator. The administrator can browse through the errors and
//! manually fix the resulting inconsistencies at a later time."

use crossbeam::channel::{unbounded, Receiver, Sender};
use ldap::dn::{Dn, Rdn};
use ldap::entry::Entry;
use ldap::{Directory, Filter, Scope};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// An administrator notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminAlert {
    pub id: u64,
    pub text: String,
    pub failed_op: String,
}

/// Error log writing error entries under `cn=errors,<suffix>`.
pub struct ErrorLog {
    base: Dn,
    next_id: AtomicU64,
    alerts: Mutex<Vec<Sender<AdminAlert>>>,
}

impl ErrorLog {
    /// Create the log container entry (idempotent) and the log handle.
    pub fn install(dir: &dyn Directory, suffix: &Dn) -> ldap::Result<ErrorLog> {
        let base = suffix.child(Rdn::new("ou", "errors"));
        if dir.get(&base)?.is_none() {
            let mut container = Entry::new(base.clone());
            container.add_value("objectClass", "top");
            container.add_value("objectClass", "organizationalUnit");
            container.add_value("ou", "errors");
            dir.add(container)?;
        }
        Ok(ErrorLog {
            base,
            next_id: AtomicU64::new(1),
            alerts: Mutex::new(Vec::new()),
        })
    }

    /// Where error entries are written.
    pub fn base(&self) -> &Dn {
        &self.base
    }

    /// Subscribe to administrator alerts.
    pub fn subscribe(&self) -> Receiver<AdminAlert> {
        let (tx, rx) = unbounded();
        self.alerts.lock().push(tx);
        rx
    }

    /// Record a failure: writes an error entry into the directory and
    /// notifies administrators. Logging never fails the caller — if even
    /// the log write fails the alert still goes out.
    pub fn log(&self, dir: &dyn Directory, seq: u64, text: &str, failed_op: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let dn = self.base.child(Rdn::new("metacommErrorId", id.to_string()));
        let mut e = Entry::new(dn);
        e.add_value("objectClass", "top");
        e.add_value("objectClass", "metacommError");
        e.add_value("metacommErrorId", id.to_string());
        e.add_value("metacommErrorText", text);
        e.add_value("metacommFailedOp", failed_op);
        e.add_value("metacommErrorSeq", seq.to_string());
        let _ = dir.add(e);
        let alert = AdminAlert {
            id,
            text: text.to_string(),
            failed_op: failed_op.to_string(),
        };
        self.alerts
            .lock()
            .retain(|tx| tx.send(alert.clone()).is_ok());
        id
    }

    /// Browse the logged errors (paper: "the administrator can browse
    /// through the errors").
    pub fn browse(&self, dir: &dyn Directory) -> ldap::Result<Vec<Entry>> {
        dir.search(
            &self.base,
            Scope::One,
            &Filter::parse("(objectClass=metacommError)").expect("static filter"),
            &[],
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::integrated_schema;
    use ldap::dit::Dit;
    use std::sync::Arc;

    fn dir() -> Arc<Dit> {
        let dit = Dit::with_schema(Arc::new(integrated_schema()));
        let mut lucent = Entry::new(Dn::parse("o=Lucent").unwrap());
        lucent.add_value("objectClass", "top");
        lucent.add_value("objectClass", "organization");
        lucent.add_value("o", "Lucent");
        ldap::Dit::add(&dit, lucent).unwrap();
        dit
    }

    #[test]
    fn log_and_browse() {
        let dit = dir();
        let suffix = Dn::parse("o=Lucent").unwrap();
        let log = ErrorLog::install(dit.as_ref(), &suffix).unwrap();
        let rx = log.subscribe();
        let id1 = log.log(dit.as_ref(), 7, "device rejected update", "modify cn=X");
        let id2 = log.log(dit.as_ref(), 8, "fixpoint not reached", "add cn=Y");
        assert_ne!(id1, id2);
        let alerts: Vec<AdminAlert> = rx.try_iter().collect();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].text, "device rejected update");
        let errors = log.browse(dit.as_ref()).unwrap();
        assert_eq!(errors.len(), 2);
        assert!(errors
            .iter()
            .any(|e| e.first("metacommFailedOp") == Some("modify cn=X")));
    }

    #[test]
    fn install_is_idempotent() {
        let dit = dir();
        let suffix = Dn::parse("o=Lucent").unwrap();
        let a = ErrorLog::install(dit.as_ref(), &suffix).unwrap();
        let b = ErrorLog::install(dit.as_ref(), &suffix).unwrap();
        assert_eq!(a.base(), b.base());
    }
}
