//! The integrated schema (paper §5.2).
//!
//! Design chosen by the paper: a standard X.500 `person` entry extended
//! with **one auxiliary object class per device**, each with
//! device-unique attribute names and *no mandatory attributes* (auxiliary
//! classes cannot have them) — so the presence of `definityUser` only
//! means a person *may* use a PBX; one must check `definityExtension` to
//! know. A `lastUpdater` operational attribute records which repository
//! originated the last write (the lexpress `Originator` mechanism).
//!
//! The *rejected* design — a child entry per device under the person —
//! is also provided ([`child_entry_schema`]) so experiment E9 can
//! demonstrate why it loses without multi-entry transactions.

use ldap::schema::{AttributeType, ClassKind, ObjectClass, Schema, Syntax};

/// Auxiliary class name for Definity PBX users.
pub const DEFINITY_USER: &str = "definityUser";
/// Auxiliary class name for messaging-platform users.
pub const MESSAGING_USER: &str = "messagingUser";
/// Operational attribute recording the source of the last update.
pub const LAST_UPDATER: &str = "lastUpdater";

/// Build the integrated MetaComm schema: X.500 core + device auxiliaries.
pub fn integrated_schema() -> Schema {
    let mut s = Schema::x500_core();
    // Definity attributes (device-unique names, §5.2 footnote 2).
    for at in [
        AttributeType::string("definityExtension").single(),
        AttributeType::string("definityCoveragePath").single(),
        AttributeType::string("definityCor").single(),
        AttributeType::string("definityPort").single(),
        AttributeType::string("definitySetType").single(),
    ] {
        s.add_attribute(at).expect("definity attrs");
    }
    s.add_class(ObjectClass {
        name: DEFINITY_USER.into(),
        kind: ClassKind::Auxiliary,
        superior: Some("top".into()),
        must: vec![], // auxiliary classes cannot have mandatory attributes
        may: vec![
            "definityExtension".into(),
            "definityCoveragePath".into(),
            "definityCor".into(),
            "definityPort".into(),
            "definitySetType".into(),
        ],
    })
    .expect("definityUser class");
    // Messaging-platform attributes.
    for at in [
        AttributeType::string("mpMailbox").single(),
        AttributeType::string("mpMailboxId").single(),
        AttributeType::string("mpClassOfService").single(),
    ] {
        s.add_attribute(at).expect("mp attrs");
    }
    s.add_class(ObjectClass {
        name: MESSAGING_USER.into(),
        kind: ClassKind::Auxiliary,
        superior: Some("top".into()),
        must: vec![],
        may: vec![
            "mpMailbox".into(),
            "mpMailboxId".into(),
            "mpClassOfService".into(),
        ],
    })
    .expect("messagingUser class");
    // Operational attributes.
    s.add_operational(AttributeType::string(LAST_UPDATER).single())
        .expect("lastUpdater");
    // Error-log entries (§4.4 failure handling) live in the directory too.
    for at in [
        AttributeType::string("metacommErrorId").single(),
        AttributeType::string("metacommErrorText"),
        AttributeType::string("metacommFailedOp"),
        AttributeType::string("metacommErrorSeq")
            .single()
            .syntax(Syntax::Integer),
    ] {
        s.add_attribute(at).expect("error attrs");
    }
    s.add_class(ObjectClass {
        name: "metacommError".into(),
        kind: ClassKind::Structural,
        superior: Some("top".into()),
        must: vec!["metacommErrorId".into()],
        may: vec![
            "metacommErrorText".into(),
            "metacommFailedOp".into(),
            "metacommErrorSeq".into(),
        ],
    })
    .expect("error class");
    s
}

/// The rejected child-entry-per-device design: device data lives in a
/// generic `deviceProfile` child entry of the person. Kept for the E9
/// schema ablation.
pub fn child_entry_schema() -> Schema {
    let mut s = Schema::x500_core();
    for at in [
        AttributeType::string("deviceName").single(),
        AttributeType::string("deviceKey").single(),
        AttributeType::string("deviceField1"),
        AttributeType::string("deviceField2"),
        AttributeType::string("deviceField3"),
    ] {
        s.add_attribute(at).expect("profile attrs");
    }
    s.add_class(ObjectClass {
        name: "deviceProfile".into(),
        kind: ClassKind::Structural,
        superior: Some("top".into()),
        must: vec!["deviceName".into()],
        may: vec![
            "deviceKey".into(),
            "deviceField1".into(),
            "deviceField2".into(),
            "deviceField3".into(),
        ],
    })
    .expect("deviceProfile class");
    s.add_operational(AttributeType::string(LAST_UPDATER).single())
        .expect("lastUpdater");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldap::dn::Dn;
    use ldap::entry::Entry;
    use ldap::ResultCode;

    fn person_with_devices() -> Entry {
        Entry::with_attrs(
            Dn::parse("cn=John Doe,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("objectClass", "organizationalPerson"),
                ("objectClass", DEFINITY_USER),
                ("objectClass", MESSAGING_USER),
                ("cn", "John Doe"),
                ("sn", "Doe"),
                ("telephoneNumber", "+1 908 582 9123"),
                ("definityExtension", "9123"),
                ("definityCoveragePath", "1"),
                ("mpMailbox", "9123"),
                ("mpMailboxId", "MB-000001"),
                ("roomNumber", "2B-401"),
                (LAST_UPDATER, "pbx-west"),
            ],
        )
    }

    #[test]
    fn integrated_entry_validates() {
        integrated_schema()
            .validate_entry(&person_with_devices())
            .unwrap();
    }

    #[test]
    fn device_attrs_require_aux_class() {
        let s = integrated_schema();
        let mut e = person_with_devices();
        e.remove_value("objectClass", DEFINITY_USER);
        let err = s.validate_entry(&e).unwrap_err();
        assert_eq!(err.code, ResultCode::ObjectClassViolation);
    }

    #[test]
    fn paper_anomaly_class_without_extension_is_legal() {
        // §5.2: "the presence of an auxiliary objectclass only indicates
        // that a person MAY use a device" — entries with definityUser but no
        // definityExtension validate (and off-the-shelf browsers can create
        // them).
        let s = integrated_schema();
        let mut e = person_with_devices();
        e.remove_attr("definityExtension");
        e.remove_attr("definityCoveragePath");
        s.validate_entry(&e).unwrap();
    }

    #[test]
    fn error_entries_validate() {
        let s = integrated_schema();
        let e = Entry::with_attrs(
            Dn::parse("metacommErrorId=42,cn=errors,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "metacommError"),
                ("metacommErrorId", "42"),
                ("metacommErrorText", "device rejected update"),
                ("metacommErrorSeq", "7"),
            ],
        );
        s.validate_entry(&e).unwrap();
    }

    #[test]
    fn child_entry_schema_validates_profiles() {
        let s = child_entry_schema();
        let e = Entry::with_attrs(
            Dn::parse("deviceName=pbx-west,cn=John Doe,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "deviceProfile"),
                ("deviceName", "pbx-west"),
                ("deviceKey", "9123"),
            ],
        );
        s.validate_entry(&e).unwrap();
    }
}
