//! The Update Manager (paper §4.4): "the central component of the system —
//! it ensures that the data in the devices and in the LDAP server are
//! consistent."
//!
//! Updates enter through LTAP: the UM registers a before-trigger with the
//! gateway; the trigger enqueues the trapped operation and waits; a worker
//! translates it to every relevant device filter (conditional ops for the
//! originating device), folds device-generated information back in, applies
//! the augmented update to the LDAP server, and replies. The trigger then
//! reports `Disposition::Handled`, so the gateway does not re-apply the
//! original.
//!
//! The paper describes a single coordinator thread. We keep its semantics
//! but pipeline it as a **key-ordered executor**: updates are sharded onto
//! N workers by the *post-closure* DN of the entry they touch, so updates
//! to the same entry retain strict FIFO order (one shard = one channel =
//! one worker draining it in order) while updates to distinct entries may
//! proceed concurrently. The per-entry LTAP lock held by the gateway for
//! the whole round trip already serializes racing writes to the same
//! *pre*-update DN; sharding by the *post*-update DN additionally orders a
//! rename into an entry against concurrent writes to that entry. A global
//! `seq` counter is kept so traces and the ErrorLog stay monotonic.
//!
//! Within one update, the fan-out over `shared.filters` may itself run the
//! per-device translate/apply legs concurrently (`parallel_fanout`); the
//! outcomes are folded back **in filter order**, so generated-info merges,
//! abort decisions, and ticket withdrawal are deterministic and identical
//! to the sequential schedule.

use crate::errorlog::ErrorLog;
use crate::filter::DeviceFilter;
use crate::image::{diff_mods_full, entry_to_image, image_to_entry};
use crate::resilience::{apply_with_retry, DeviceRuntime, RetryPolicy};
use crate::schema::LAST_UPDATER;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use ldap::dn::Dn;
use ldap::entry::{Entry, Modification};
use ldap::{Directory, LdapError, ResultCode};
use lexpress::{Closure, Engine, Image, OpKind, TargetOp, UpdateDescriptor};
use ltap::{Disposition, LtapOp, TriggerContext, TriggerHandler};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A per-update trace record: what the Update Manager did with one trapped
/// operation (kept in a bounded ring; see [`UpdateManager`]). This is the
/// observability surface a deployment needs to answer "why did my update
/// (not) reach the switch?".
#[derive(Debug, Clone)]
pub struct UpdateTrace {
    /// Global update sequence number.
    pub seq: u64,
    /// Resolved origin (`ldap`, `wba`, a device name, …).
    pub origin: String,
    /// Operation kind and target DN.
    pub op: String,
    /// Attributes the transitive closure derived (beyond the explicit set).
    pub derived_attrs: Vec<String>,
    /// Per-device outcomes: `(repository, op kind, conditional, applied)`.
    pub device_ops: Vec<(String, String, bool, bool)>,
    /// `Ok` or the error message the client received.
    pub outcome: String,
    /// Stage durations from the worker's span, in first-marked order:
    /// `acquire` (queue wait), `closure`, `translate`, `apply`, `commit`.
    /// Repeated stages (one `translate`/`apply` per device) accumulate; under
    /// parallel fan-out they are summed device-leg durations, so `Σ stage`
    /// can exceed `total` the way CPU time exceeds wall time.
    pub stage_ns: Vec<(String, u64)>,
    /// Total update latency (enqueue → reply), nanoseconds.
    pub total_ns: u64,
}

/// Update Manager statistics (fed into the experiment harness).
#[derive(Debug, Default)]
pub struct UmStats {
    /// Updates that entered through LTAP (clients + relayed DDUs).
    pub updates: AtomicUsize,
    /// Operations applied to devices.
    pub device_ops: AtomicUsize,
    /// Conditional (reapplied) device operations (paper §5.4).
    pub reapplied: AtomicUsize,
    /// Operations skipped by partitioning constraints.
    pub skipped: AtomicUsize,
    /// Device-generated images folded back into the directory (§5.5).
    pub generated_merges: AtomicUsize,
    /// Updates aborted with an error logged.
    pub errors: AtomicUsize,
    /// Saga-style compensating operations applied (our extension of §4.4's
    /// "later version" plan).
    pub undone: AtomicUsize,
    /// Transient device faults masked by retry (each retry attempt counts).
    pub retried: AtomicUsize,
    /// Device operations queued in an outage journal instead of applied.
    pub queued: AtomicUsize,
    /// Circuit-breaker openings (a device going `Offline`).
    pub breaker_trips: AtomicUsize,
    /// Journaled operations reapplied during recovery drains.
    pub journal_drained: AtomicUsize,
    /// Full resynchronizations run because an outage journal overflowed.
    pub full_resyncs: AtomicUsize,
}

enum Request {
    Process {
        op: LtapOp,
        pre: Option<Entry>,
        origin: Option<String>,
        /// Clock reading when the trigger enqueued the request — the span's
        /// `acquire` stage measures from here to coordinator pickup.
        enqueued_ns: u64,
        reply: Sender<ldap::Result<()>>,
    },
    Shutdown,
}

pub(crate) struct Shared {
    pub inner: Arc<dyn Directory>,
    pub engine: Arc<Engine>,
    pub closure: Arc<Closure>,
    pub filters: Vec<Arc<dyn DeviceFilter>>,
    pub errorlog: Arc<ErrorLog>,
    pub stats: Arc<UmStats>,
    /// Attempt compensating (saga-style) undo of already-applied device
    /// operations when a later one fails.
    pub saga: bool,
    /// Bounded ring of recent update traces.
    pub traces: Arc<parking_lot::Mutex<std::collections::VecDeque<UpdateTrace>>>,
    /// Retry policy for transient device faults.
    pub retry: RetryPolicy,
    /// Per-device breaker/journal state, keyed by filter name.
    pub runtimes: HashMap<String, Arc<DeviceRuntime>>,
    /// Global update sequence counter, shared with the DDU relays so
    /// error-log entries carry real monotonic sequence numbers.
    pub seq: Arc<AtomicU64>,
    /// Pre-resolved histograms/counters for the workers' hot path.
    pub obs: Arc<crate::obs::UmObs>,
    /// Run the per-update device fan-out legs concurrently (set when the
    /// UM runs with more than one worker).
    pub parallel_fanout: bool,
}

/// Capacity of the trace ring.
pub(crate) const TRACE_CAPACITY: usize = 256;

/// Deterministically map a post-closure DN key to one of `n` shards.
/// Exposed so tests (and operators reading traces) can predict which
/// worker a given entry's updates serialize on.
pub fn route_shard(norm_key: &str, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    norm_key.hash(&mut h);
    (h.finish() % n as u64) as usize
}

/// The post-update DN that keys an operation's shard: for a rename, the
/// entry's *new* DN (so a rename into an entry orders against concurrent
/// writes to it); otherwise the target DN itself.
fn route_key(op: &LtapOp) -> String {
    match op {
        LtapOp::ModifyRdn {
            dn,
            new_rdn,
            new_superior,
            ..
        } => match new_superior {
            Some(sup) => sup.child(new_rdn.clone()).norm_key(),
            None => dn
                .with_rdn(new_rdn.clone())
                .map(|d| d.norm_key())
                .unwrap_or_else(|_| dn.norm_key()),
        },
        other => other.dn().norm_key(),
    }
}

/// The running Update Manager: a key-ordered executor over N workers.
pub struct UpdateManager {
    txs: Vec<Sender<Request>>,
    stats: Arc<UmStats>,
    traces: Arc<parking_lot::Mutex<std::collections::VecDeque<UpdateTrace>>>,
    /// The deployment clock, for stamping enqueue times in the handler.
    clock: Arc<dyn crate::obs::Clock>,
    workers: Vec<JoinHandle<()>>,
    /// Set before the Shutdown requests go out, so triggers that race a
    /// shutdown get a clean "shut down" error instead of "crashed".
    closing: Arc<AtomicBool>,
}

impl UpdateManager {
    /// Start `workers` executor threads, each owning one shard queue.
    pub(crate) fn start(shared: Shared, workers: usize) -> UpdateManager {
        let workers = workers.max(1);
        let shared = Arc::new(shared);
        let stats = shared.stats.clone();
        let traces = shared.traces.clone();
        let clock = shared.obs.clock.clone();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx): (Sender<Request>, Receiver<Request>) = unbounded();
            let sh = Arc::clone(&shared);
            let h = std::thread::Builder::new()
                .name(format!("um-worker-{i}"))
                .spawn(move || worker_loop(rx, sh))
                .expect("spawn um worker");
            txs.push(tx);
            handles.push(h);
        }
        UpdateManager {
            txs,
            stats,
            traces,
            clock,
            workers: handles,
            closing: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Number of executor workers (shards).
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Most recent update traces, oldest first.
    pub fn recent_traces(&self) -> Vec<UpdateTrace> {
        self.traces.lock().iter().cloned().collect()
    }

    pub fn stats(&self) -> &Arc<UmStats> {
        &self.stats
    }

    /// The LTAP trigger handler funneling trapped operations into the
    /// shard queues: same post-update DN → same shard → FIFO.
    pub(crate) fn handler(&self) -> Arc<dyn TriggerHandler> {
        let txs = self.txs.clone();
        let closing = self.closing.clone();
        let clock = self.clock.clone();
        Arc::new(move |ctx: &TriggerContext<'_>| {
            if closing.load(Ordering::SeqCst) {
                return Err(LdapError::new(
                    ResultCode::Unavailable,
                    "update manager is shut down",
                ));
            }
            let (rtx, rrx) = bounded(1);
            let shard = route_shard(&route_key(ctx.op), txs.len());
            let req = Request::Process {
                op: ctx.op.clone(),
                pre: ctx.pre_image.cloned(),
                origin: ctx.origin.map(str::to_string),
                enqueued_ns: clock.now_ns(),
                reply: rtx,
            };
            if txs[shard].send(req).is_err() {
                return Err(LdapError::new(
                    ResultCode::Unavailable,
                    "update manager is down",
                ));
            }
            match rrx.recv() {
                Ok(Ok(())) => Ok(Disposition::Handled),
                Ok(Err(e)) => Err(e),
                Err(_) if closing.load(Ordering::SeqCst) => Err(LdapError::new(
                    ResultCode::Unavailable,
                    "update manager is shut down",
                )),
                Err(_) => Err(LdapError::new(
                    ResultCode::Unavailable,
                    "update manager crashed while processing",
                )),
            }
        })
    }

    pub fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.closing.store(true, Ordering::SeqCst);
        for tx in &self.txs {
            let _ = tx.send(Request::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for UpdateManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: Receiver<Request>, shared: Arc<Shared>) {
    let seq = shared.seq.clone();
    while let Ok(req) = rx.recv() {
        match req {
            Request::Shutdown => {
                // Drain requests that were already in this shard's queue (or
                // racing the shutdown send): their triggers are blocked in
                // `rrx.recv()` and must get replies, not a hangup.
                while let Ok(req) = rx.recv_timeout(Duration::from_millis(10)) {
                    match req {
                        Request::Shutdown => continue,
                        Request::Process {
                            op,
                            pre,
                            origin,
                            enqueued_ns,
                            reply,
                        } => {
                            let result = process(&shared, &seq, op, pre, origin, enqueued_ns);
                            let _ = reply.send(result.map_err(crate::error::MetaError::into_ldap));
                        }
                    }
                }
                break;
            }
            Request::Process {
                op,
                pre,
                origin,
                enqueued_ns,
                reply,
            } => {
                let result = process(&shared, &seq, op, pre, origin, enqueued_ns);
                let _ = reply.send(result.map_err(crate::error::MetaError::into_ldap));
            }
        }
    }
}

/// Resolve the origin of an update: the LTAP persistent-connection tag wins;
/// otherwise a `lastUpdater` value the client wrote explicitly; otherwise
/// the update is an ordinary LDAP-client write ("ldap").
fn resolve_origin(op: &LtapOp, tagged: Option<String>) -> String {
    if let Some(o) = tagged {
        return o;
    }
    match op {
        LtapOp::Add(e) => e.first(LAST_UPDATER).map(str::to_string),
        LtapOp::Modify(_, mods) => mods
            .iter()
            .rev()
            .find(|m| m.attr.norm() == LAST_UPDATER.to_ascii_lowercase())
            .and_then(|m| m.values.first().cloned()),
        _ => None,
    }
    .unwrap_or_else(|| "ldap".to_string())
}

/// Build the update descriptor for a trapped operation.
fn descriptor_for(
    op: &LtapOp,
    pre: Option<&Entry>,
    origin: &str,
) -> crate::error::Result<UpdateDescriptor> {
    let d = match op {
        LtapOp::Add(e) => UpdateDescriptor::add(e.dn().to_string(), entry_to_image(e), origin),
        LtapOp::Modify(dn, mods) => {
            let pre =
                pre.ok_or_else(|| crate::error::MetaError::Ldap(LdapError::no_such_object(dn)))?;
            let mut post = pre.clone();
            post.apply_modifications(mods)
                .map_err(crate::error::MetaError::Ldap)?;
            UpdateDescriptor::modify(
                dn.to_string(),
                entry_to_image(pre),
                entry_to_image(&post),
                origin,
            )
        }
        LtapOp::Delete(dn) => {
            let pre =
                pre.ok_or_else(|| crate::error::MetaError::Ldap(LdapError::no_such_object(dn)))?;
            UpdateDescriptor::delete(dn.to_string(), entry_to_image(pre), origin)
        }
        LtapOp::ModifyRdn {
            dn,
            new_rdn,
            delete_old,
            new_superior,
        } => {
            let pre =
                pre.ok_or_else(|| crate::error::MetaError::Ldap(LdapError::no_such_object(dn)))?;
            let mut post = pre.clone();
            if *delete_old {
                if let Some(old_rdn) = dn.rdn() {
                    for ava in old_rdn.avas() {
                        post.remove_value(ava.attr(), ava.value());
                    }
                }
            }
            for ava in new_rdn.avas() {
                if !post.has_value(ava.attr(), ava.value()) {
                    post.add_value(ava.attr().to_string(), ava.value().to_string());
                }
            }
            let new_dn = match new_superior {
                Some(sup) => sup.child(new_rdn.clone()),
                None => dn
                    .with_rdn(new_rdn.clone())
                    .map_err(crate::error::MetaError::Ldap)?,
            };
            post.set_dn(new_dn);
            UpdateDescriptor::modify(
                dn.to_string(),
                entry_to_image(pre),
                entry_to_image(&post),
                origin,
            )
        }
    };
    Ok(d)
}

/// The compensating (inverse) operation for an applied device op.
fn inverse_of(op: &TargetOp) -> TargetOp {
    match op.kind {
        OpKind::Skip => op.clone(),
        OpKind::Add => TargetOp {
            kind: OpKind::Delete,
            conditional: true,
            old_key: op.new_key.clone(),
            new_key: None,
            attrs: Image::new(),
            old_attrs: op.attrs.clone(),
        },
        OpKind::Modify => TargetOp {
            kind: OpKind::Modify,
            conditional: true,
            old_key: op.new_key.clone(),
            new_key: op.old_key.clone().or_else(|| op.new_key.clone()),
            attrs: op.old_attrs.clone(),
            old_attrs: op.attrs.clone(),
        },
        OpKind::Delete => TargetOp {
            kind: OpKind::Add,
            conditional: true,
            old_key: None,
            new_key: op.old_key.clone(),
            attrs: op.old_attrs.clone(),
            old_attrs: Image::new(),
        },
    }
}

/// Object-class additions needed so `img`'s attributes validate on `pre`.
pub(crate) fn aux_class_mods(pre: &Entry, img: &Image) -> Vec<Modification> {
    let mut needed = Vec::new();
    let mut has_definity = false;
    let mut has_mp = false;
    for (name, _) in img.iter() {
        let l = name.to_ascii_lowercase();
        if l.starts_with("definity") {
            has_definity = true;
        }
        if l.starts_with("mp") {
            has_mp = true;
        }
    }
    if has_definity && !pre.has_object_class(crate::schema::DEFINITY_USER) {
        needed.push(crate::schema::DEFINITY_USER.to_string());
    }
    if has_mp && !pre.has_object_class(crate::schema::MESSAGING_USER) {
        needed.push(crate::schema::MESSAGING_USER.to_string());
    }
    needed
        .into_iter()
        .map(|c| Modification::add("objectClass", vec![c]))
        .collect()
}

fn process(
    shared: &Shared,
    seq: &AtomicU64,
    op: LtapOp,
    pre: Option<Entry>,
    tagged_origin: Option<String>,
    enqueued_ns: u64,
) -> crate::error::Result<()> {
    let my_seq = seq.fetch_add(1, Ordering::SeqCst);
    shared.stats.updates.fetch_add(1, Ordering::Relaxed);
    let origin = resolve_origin(&op, tagged_origin);
    // The span's first stage is the queue wait (acquisition): trigger
    // enqueue → coordinator pickup, i.e. right now.
    let mut span = crate::obs::Span::start_from(shared.obs.clock.clone(), enqueued_ns, "acquire");
    if let Some((_, wait)) = span.stages().first() {
        shared.obs.acquire.record(*wait);
    }
    let mut trace = UpdateTrace {
        seq: my_seq,
        origin: origin.clone(),
        op: format!("{:?} {}", op.kind(), op.dn()),
        derived_attrs: Vec::new(),
        device_ops: Vec::new(),
        outcome: String::new(),
        stage_ns: Vec::new(),
        total_ns: 0,
    };
    let result = process_inner(shared, my_seq, &op, pre, &origin, &mut trace, &mut span);
    let (stages, total) = span.finish();
    if result.is_ok() {
        shared.obs.update.record(total);
    } else {
        shared.obs.abort.record(total);
    }
    trace.stage_ns = stages;
    trace.total_ns = total;
    trace.outcome = match &result {
        Ok(()) => "ok".to_string(),
        Err(e) => e.to_string(),
    };
    push_trace(shared, trace);
    result
}

/// Insert a fully built trace into the bounded ring. All formatting happens
/// before this call; the mutex covers only an O(1) evict and a push, so
/// trace retention never serializes the workers' hot path.
fn push_trace(shared: &Shared, trace: UpdateTrace) {
    let mut ring = shared.traces.lock();
    if ring.len() >= TRACE_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(trace);
}

/// The outcome of one device filter's leg of the fan-out, produced by
/// [`fan_one`] (possibly on a fan-out thread) and folded back into the
/// update's state strictly in filter order by [`fold_outcome`].
#[derive(Default)]
struct DeviceOutcome {
    /// Trace row for this device, if any.
    row: Option<(String, String, bool, bool)>,
    /// Journal ticket issued on behalf of this update.
    ticket: Option<(Arc<DeviceRuntime>, u64)>,
    /// Compensating op to run if the update later aborts.
    undo: Option<(Arc<dyn DeviceFilter>, TargetOp)>,
    /// Device-generated info to merge into the persistent image (§5.5).
    generated: Option<Image>,
    /// Abort the update: translate error, semantic rejection, or a
    /// transient fault that did not open the breaker.
    failure: Option<crate::error::MetaError>,
    /// Whether `apply_with_retry` actually ran (vs. Skip/journal legs).
    ran_apply: bool,
    translate_ns: u64,
    apply_ns: u64,
}

/// Mutable update state the fold threads through the fan-out.
#[derive(Default)]
struct FanState {
    /// Compensating ops for already-applied device ops, in apply order.
    undo: Vec<(Arc<dyn DeviceFilter>, TargetOp)>,
    /// Journal tickets issued for this update — withdrawn if it later
    /// aborts (the directory never sees the update, so reapplying would
    /// diverge).
    tickets: Vec<(Arc<DeviceRuntime>, u64)>,
    /// First failure in filter order, if any.
    failure: Option<crate::error::MetaError>,
}

/// Run one device filter's leg of the fan-out: translate the descriptor,
/// consult the breaker/journal, apply with retry. Safe to run concurrently
/// with the other filters' legs — it touches only atomics, the per-device
/// runtime, and histograms; every decision that must be deterministic
/// (generated-info merges, the winning failure, ticket withdrawal) is
/// deferred to the in-filter-order fold.
fn fan_one(
    shared: &Shared,
    f: &Arc<dyn DeviceFilter>,
    d: &UpdateDescriptor,
    post_dn: &Option<Dn>,
    my_seq: u64,
) -> DeviceOutcome {
    let clock = &shared.obs.clock;
    let mut out = DeviceOutcome::default();
    let t0 = clock.now_ns();
    let translated = shared.engine.translate(&f.mapping_from_ldap(), d);
    out.translate_ns = clock.now_ns().saturating_sub(t0);
    shared.obs.translate.record(out.translate_ns);
    let top = match translated {
        Ok(t) => t,
        Err(e) => {
            out.failure = Some(e.into());
            return out;
        }
    };
    if top.kind == OpKind::Skip {
        shared.stats.skipped.fetch_add(1, Ordering::Relaxed);
        out.row = Some((f.name().to_string(), "Skip".into(), top.conditional, false));
        return out;
    }
    let runtime = shared.runtimes.get(f.name());
    // Breaker open (or a drain in progress): store-and-forward. The op
    // queues behind everything already journaled so the device sees
    // updates in directory order once it reconnects.
    if let Some(rt) = runtime {
        if rt.should_journal() {
            if let Some(t) = rt.journal(top.clone(), post_dn.clone()) {
                out.ticket = Some((rt.clone(), t));
            }
            out.row = Some((
                f.name().to_string(),
                format!("{:?} (queued)", top.kind),
                top.conditional,
                false,
            ));
            return out;
        }
    }
    let t1 = clock.now_ns();
    let applied = apply_with_retry(f, &top, &shared.retry, &shared.stats);
    out.apply_ns = clock.now_ns().saturating_sub(t1);
    out.ran_apply = true;
    let dev_obs = shared.obs.devices.get(f.name());
    if let Some(o) = dev_obs {
        o.apply.record(out.apply_ns);
    }
    match applied {
        Ok(outcome) => {
            if let Some(o) = dev_obs {
                o.applies.inc();
            }
            if let Some(rt) = runtime {
                rt.record_success();
            }
            shared.stats.device_ops.fetch_add(1, Ordering::Relaxed);
            out.row = Some((
                f.name().to_string(),
                format!("{:?}", top.kind),
                top.conditional,
                outcome.applied,
            ));
            if outcome.reapplied {
                shared.stats.reapplied.fetch_add(1, Ordering::Relaxed);
            }
            out.generated = outcome.generated;
            if outcome.applied {
                out.undo = Some((f.clone(), inverse_of(&top)));
            }
        }
        Err(e) if e.is_transient() => {
            // The device never saw the op. Advance the breaker; if that
            // (or an earlier trip) opened it, queue the op and let the
            // update proceed — the directory stays authoritative.
            if let Some(o) = dev_obs {
                o.failures.inc();
            }
            if let Some(rt) = runtime {
                rt.record_failure(my_seq, &e);
                if rt.should_journal() {
                    if let Some(t) = rt.journal(top.clone(), post_dn.clone()) {
                        out.ticket = Some((rt.clone(), t));
                    }
                    out.row = Some((
                        f.name().to_string(),
                        format!("{:?} (queued)", top.kind),
                        top.conditional,
                        false,
                    ));
                    return out;
                }
            }
            out.failure = Some(e);
        }
        Err(e) => {
            // Semantic rejection: the device is reachable and judged the
            // op invalid — abort the update (§4.4), breaker untouched.
            if let Some(o) = dev_obs {
                o.failures.inc();
            }
            out.failure = Some(e);
        }
    }
    out
}

/// Fold one leg's outcome into the update's state. Called strictly in
/// filter order in both fan-out modes, which is what makes the parallel
/// schedule observably identical to the sequential one: generated info
/// merges in filter order (later filters win conflicts), the first failure
/// in filter order becomes the abort cause, and every issued ticket is
/// collected so an abort withdraws all of them.
fn fold_outcome(
    shared: &Shared,
    out: DeviceOutcome,
    d: &mut UpdateDescriptor,
    trace: &mut UpdateTrace,
    span: &mut crate::obs::Span,
    st: &mut FanState,
) {
    span.add_stage("translate", out.translate_ns);
    if out.ran_apply {
        span.add_stage("apply", out.apply_ns);
    }
    if let Some(row) = out.row {
        trace.device_ops.push(row);
    }
    if let Some(t) = out.ticket {
        st.tickets.push(t);
    }
    if let Some(gen) = out.generated {
        let mut merged = false;
        for (name, values) in gen.iter() {
            if d.new.values(name) != values {
                d.new.set(name.to_string(), values.to_vec());
                merged = true;
            }
        }
        if merged {
            shared
                .stats
                .generated_merges
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(u) = out.undo {
        st.undo.push(u);
    }
    if st.failure.is_none() {
        st.failure = out.failure;
    }
}

fn process_inner(
    shared: &Shared,
    my_seq: u64,
    op: &LtapOp,
    pre: Option<Entry>,
    origin: &str,
    trace: &mut UpdateTrace,
    span: &mut crate::obs::Span,
) -> crate::error::Result<()> {
    let origin = origin.to_string();
    let mut d = descriptor_for(op, pre.as_ref(), &origin)?;
    // Stamp the originator on the persistent image (the lexpress
    // LastUpdater mechanism, §5.4).
    if !d.new.is_empty() {
        d.new.set(LAST_UPDATER, vec![origin]);
    }
    // Transitive closure over the integrated schema (§4.2).
    let before_closure = d.new.clone();
    let augmented = shared.closure.augment(&mut d);
    shared.obs.closure.record(span.mark("closure"));
    if let Err(e) = augmented {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        shared.errorlog.log(
            shared.inner.as_ref(),
            my_seq,
            &format!("transitive closure failed: {e}"),
            &format!("{op:?}"),
        );
        return Err(e.into());
    }
    trace.derived_attrs = before_closure.changed_attrs(&d.new);
    // The directory DN the entry will live at after this update — attached
    // to journaled ops so device-generated info can still be folded back
    // when they finally apply during a recovery drain.
    let post_dn: Option<Dn> = match op {
        LtapOp::Delete(_) => None,
        LtapOp::ModifyRdn {
            dn,
            new_rdn,
            new_superior,
            ..
        } => match new_superior {
            Some(sup) => Some(sup.child(new_rdn.clone())),
            None => dn.with_rdn(new_rdn.clone()).ok(),
        },
        other => Some(other.dn().clone()),
    };
    // Fan out to every device filter; fold generated info back in.
    let mut st = FanState::default();
    if shared.parallel_fanout && shared.filters.len() > 1 {
        // All legs run concurrently against the same post-closure image;
        // outcomes fold back strictly in filter order, so generated-info
        // merges, the winning failure, and ticket bookkeeping are
        // deterministic and independent of leg completion order.
        let outcomes: Vec<DeviceOutcome> = std::thread::scope(|sc| {
            let d_ref = &d;
            let post_ref = &post_dn;
            // Spawn every leg before joining any (collecting lazily would
            // serialize them).
            let mut handles = Vec::with_capacity(shared.filters.len());
            for f in &shared.filters {
                handles.push(sc.spawn(move || fan_one(shared, f, d_ref, post_ref, my_seq)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("device fan-out leg panicked"))
                .collect()
        });
        for out in outcomes {
            fold_outcome(shared, out, &mut d, trace, span, &mut st);
        }
    } else {
        // One leg at a time: a leg's generated info is visible to the next
        // leg's translation, and the first failure stops the fan-out.
        for f in &shared.filters {
            let out = fan_one(shared, f, &d, &post_dn, my_seq);
            fold_outcome(shared, out, &mut d, trace, span, &mut st);
            if st.failure.is_some() {
                break;
            }
        }
    }
    // The fan-out's wall time is accounted for by the folded
    // translate/apply stages; restart the cursor for the commit stage.
    span.skip();
    let FanState {
        undo,
        tickets,
        failure,
    } = st;
    if let Some(e) = failure {
        // Withdraw ops journaled on behalf of this update: it is aborting,
        // so the directory will never reflect it.
        for (rt, t) in &tickets {
            rt.discard_tickets(&[*t]);
        }
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        shared.errorlog.log(
            shared.inner.as_ref(),
            my_seq,
            &e.to_string(),
            &format!("{op:?}"),
        );
        if shared.saga {
            // Compensate already-applied device ops in reverse order.
            for (f, inv) in undo.into_iter().rev() {
                if f.apply(&inv).is_ok() {
                    shared.stats.undone.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        return Err(e);
    }
    // Finally, apply the augmented update to the LDAP server itself
    // ("update the LDAP Server after all other devices are updated", §5.5).
    let ldap_result: ldap::Result<()> = match op {
        LtapOp::Add(e) => {
            let entry = image_to_entry(e.dn().clone(), &d.new);
            shared.inner.add(entry)
        }
        LtapOp::Modify(dn, _) => {
            let pre = pre.as_ref().expect("checked above");
            let mut mods = aux_class_mods(pre, &d.new);
            mods.extend(diff_mods_full(pre, &d.new));
            if mods.is_empty() {
                Ok(())
            } else {
                shared.inner.modify(dn, &mods)
            }
        }
        LtapOp::Delete(dn) => shared.inner.delete(dn),
        LtapOp::ModifyRdn {
            dn,
            new_rdn,
            delete_old,
            new_superior,
        } => shared
            .inner
            .modify_rdn(dn, new_rdn, *delete_old, new_superior.as_ref())
            .and_then(|()| {
                // Apply any closure-derived attribute changes post-rename.
                let new_dn = match new_superior {
                    Some(sup) => sup.child(new_rdn.clone()),
                    None => dn.with_rdn(new_rdn.clone())?,
                };
                if let Some(renamed) = shared.inner.get(&new_dn)? {
                    let mut mods = aux_class_mods(&renamed, &d.new);
                    mods.extend(diff_mods_full(&renamed, &d.new));
                    if !mods.is_empty() {
                        shared.inner.modify(&new_dn, &mods)?;
                    }
                }
                Ok(())
            }),
    };
    shared.obs.commit.record(span.mark("commit"));
    if let Err(e) = ldap_result {
        for (rt, t) in &tickets {
            rt.discard_tickets(&[*t]);
        }
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        shared.errorlog.log(
            shared.inner.as_ref(),
            my_seq,
            &format!("directory apply failed: {e}"),
            &format!("{op:?}"),
        );
        if shared.saga {
            for (f, inv) in undo.into_iter().rev() {
                if f.apply(&inv).is_ok() {
                    shared.stats.undone.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        return Err(e.into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::entry_to_image;
    use crate::schema::integrated_schema;
    use ldap::dn::{Dn, Rdn};
    use lexpress::UpdateKind;

    fn person() -> Entry {
        Entry::with_attrs(
            Dn::parse("cn=John Doe,o=Lucent").unwrap(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("cn", "John Doe"),
                ("sn", "Doe"),
                ("roomNumber", "2B-401"),
            ],
        )
    }

    #[test]
    fn route_shard_is_deterministic_and_in_range() {
        for n in 1..=8usize {
            for key in ["cn=a,o=l", "cn=b,o=l", "cn=c,ou=x,o=l", ""] {
                let s = route_shard(key, n);
                assert!(s < n);
                assert_eq!(s, route_shard(key, n), "same key must re-route identically");
            }
        }
        // One worker degenerates to the single-coordinator schedule.
        assert_eq!(route_shard("anything", 1), 0);
        assert_eq!(route_shard("anything", 0), 0);
    }

    #[test]
    fn route_key_uses_post_rename_dn() {
        let dn = Dn::parse("cn=John Doe,o=Lucent").unwrap();
        // A rename shards on the entry's NEW dn, so it orders against
        // concurrent writes to the entry it becomes.
        let rename = LtapOp::ModifyRdn {
            dn: dn.clone(),
            new_rdn: Rdn::new("cn", "Jack Doe"),
            delete_old: true,
            new_superior: None,
        };
        assert_eq!(
            route_key(&rename),
            Dn::parse("cn=Jack Doe,o=Lucent").unwrap().norm_key()
        );
        // Everything else shards on the target dn itself.
        assert_eq!(route_key(&LtapOp::Delete(dn.clone())), dn.norm_key());
        let moved = LtapOp::ModifyRdn {
            dn,
            new_rdn: Rdn::new("cn", "Jack Doe"),
            delete_old: true,
            new_superior: Some(Dn::parse("ou=Sales,o=Lucent").unwrap()),
        };
        assert_eq!(
            route_key(&moved),
            Dn::parse("cn=Jack Doe,ou=Sales,o=Lucent")
                .unwrap()
                .norm_key()
        );
    }

    #[test]
    fn resolve_origin_priority() {
        let dn = Dn::parse("cn=X,o=L").unwrap();
        // 1. The persistent-connection tag wins.
        let op = LtapOp::Delete(dn.clone());
        assert_eq!(resolve_origin(&op, Some("pbx-west".into())), "pbx-west");
        // 2. Then an explicit lastUpdater value in the op.
        let mut e = person();
        e.add_value(LAST_UPDATER, "wba");
        assert_eq!(resolve_origin(&LtapOp::Add(e), None), "wba");
        let mods = vec![
            Modification::set("roomNumber", "1"),
            Modification::set(LAST_UPDATER, "hoteling"),
        ];
        assert_eq!(
            resolve_origin(&LtapOp::Modify(dn.clone(), mods), None),
            "hoteling"
        );
        // 3. Otherwise the plain-LDAP-client default.
        assert_eq!(resolve_origin(&LtapOp::Delete(dn), None), "ldap");
    }

    #[test]
    fn descriptor_for_modify_builds_old_and_new_images() {
        let pre = person();
        let mods = vec![Modification::set("roomNumber", "9Z-999")];
        let d = descriptor_for(&LtapOp::Modify(pre.dn().clone(), mods), Some(&pre), "wba").unwrap();
        assert_eq!(d.kind, UpdateKind::Modify);
        assert_eq!(d.old.first("roomNumber"), Some("2B-401"));
        assert_eq!(d.new.first("roomNumber"), Some("9Z-999"));
        assert!(d.is_explicit("roomnumber"));
        assert!(!d.is_explicit("sn"));
    }

    #[test]
    fn descriptor_for_modify_requires_pre_image() {
        let dn = Dn::parse("cn=ghost,o=L").unwrap();
        let err = descriptor_for(&LtapOp::Modify(dn, vec![]), None, "wba").unwrap_err();
        assert!(matches!(err, crate::error::MetaError::Ldap(_)));
    }

    #[test]
    fn descriptor_for_modifyrdn_renames_in_the_new_image() {
        let pre = person();
        let d = descriptor_for(
            &LtapOp::ModifyRdn {
                dn: pre.dn().clone(),
                new_rdn: Rdn::new("cn", "Jack Doe"),
                delete_old: true,
                new_superior: None,
            },
            Some(&pre),
            "pbx-west",
        )
        .unwrap();
        assert_eq!(d.kind, UpdateKind::Modify);
        assert_eq!(d.old.first("cn"), Some("John Doe"));
        assert_eq!(d.new.first("cn"), Some("Jack Doe"));
        // Other attributes carried over untouched.
        assert_eq!(d.new.first("roomNumber"), Some("2B-401"));
    }

    #[test]
    fn inverse_of_round_trips_each_kind() {
        let add = TargetOp {
            kind: OpKind::Add,
            conditional: false,
            old_key: None,
            new_key: Some("9123".into()),
            attrs: Image::from_pairs([("Name", "X")]),
            old_attrs: Image::new(),
        };
        let inv = inverse_of(&add);
        assert_eq!(inv.kind, OpKind::Delete);
        assert!(inv.conditional, "compensations must tolerate absence");
        assert_eq!(inv.old_key.as_deref(), Some("9123"));

        let modify = TargetOp {
            kind: OpKind::Modify,
            conditional: false,
            old_key: Some("9123".into()),
            new_key: Some("9200".into()),
            attrs: Image::from_pairs([("Room", "NEW")]),
            old_attrs: Image::from_pairs([("Room", "OLD")]),
        };
        let inv = inverse_of(&modify);
        assert_eq!(inv.kind, OpKind::Modify);
        assert_eq!(inv.old_key.as_deref(), Some("9200"));
        assert_eq!(inv.new_key.as_deref(), Some("9123"));
        assert_eq!(inv.attrs.first("Room"), Some("OLD"));

        let delete = TargetOp {
            kind: OpKind::Delete,
            conditional: false,
            old_key: Some("9123".into()),
            new_key: None,
            attrs: Image::new(),
            old_attrs: Image::from_pairs([("Name", "X")]),
        };
        let inv = inverse_of(&delete);
        assert_eq!(inv.kind, OpKind::Add);
        assert_eq!(inv.new_key.as_deref(), Some("9123"));
        assert_eq!(inv.attrs.first("Name"), Some("X"));

        let skip = TargetOp {
            kind: OpKind::Skip,
            conditional: false,
            old_key: None,
            new_key: None,
            attrs: Image::new(),
            old_attrs: Image::new(),
        };
        assert_eq!(inverse_of(&skip).kind, OpKind::Skip);
    }

    #[test]
    fn aux_class_mods_adds_only_missing_classes() {
        let schema = integrated_schema();
        let pre = person();
        let img = entry_to_image(&Entry::with_attrs(
            pre.dn().clone(),
            [("definityExtension", "9123"), ("mpMailbox", "9123")],
        ));
        let mods = aux_class_mods(&pre, &img);
        assert_eq!(mods.len(), 2);
        // Applying them yields a schema-valid entry.
        let mut e = pre;
        e.add_value("objectClass", "organizationalPerson");
        e.apply_modifications(&mods).unwrap();
        e.add_value("definityExtension", "9123");
        e.add_value("mpMailbox", "9123");
        schema.validate_entry(&e).unwrap();
        // Idempotent: nothing to add the second time.
        assert!(aux_class_mods(&e, &img).is_empty());
    }
}
