//! Per-update tracing spans: a lightweight stage timer the Update Manager
//! threads through one trapped operation — queue acquisition, transitive
//! closure, lexpress translation, each device filter apply, and the final
//! directory commit (plus the abort path). Stage durations land in the
//! owning component's histograms and on the public
//! [`crate::UpdateTrace::stage_ns`] record.

use super::clock::Clock;
use std::sync::Arc;

/// A running span. `mark(stage)` closes the current stage; stages are
/// cumulative and non-overlapping, so `Σ stage ≤ total`.
pub struct Span {
    clock: Arc<dyn Clock>,
    started_ns: u64,
    last_ns: u64,
    stages: Vec<(String, u64)>,
}

impl Span {
    pub fn start(clock: Arc<dyn Clock>) -> Span {
        let now = clock.now_ns();
        Span {
            clock,
            started_ns: now,
            last_ns: now,
            stages: Vec::with_capacity(8),
        }
    }

    /// Start a span whose first stage began earlier (e.g. when the trapped
    /// op was enqueued) — the gap to `origin_ns` becomes stage `stage`.
    pub fn start_from(clock: Arc<dyn Clock>, origin_ns: u64, stage: &str) -> Span {
        let now = clock.now_ns();
        let wait = now.saturating_sub(origin_ns);
        Span {
            clock,
            started_ns: origin_ns.min(now),
            last_ns: now,
            stages: vec![(stage.to_string(), wait)],
        }
    }

    /// Close the current stage under `name` and start the next one.
    /// Returns the closed stage's duration in nanoseconds.
    pub fn mark(&mut self, name: impl Into<String>) -> u64 {
        let now = self.clock.now_ns();
        let d = now.saturating_sub(self.last_ns);
        self.last_ns = now;
        let name = name.into();
        // Repeated marks with the same name (one per device filter)
        // accumulate into one stage.
        if let Some(s) = self.stages.iter_mut().find(|(n, _)| *n == name) {
            s.1 += d;
        } else {
            self.stages.push((name, d));
        }
        d
    }

    /// Fold an externally measured duration into stage `name` without
    /// moving the stage cursor — used when stages run on other threads
    /// (the parallel device fan-out) and report their own timings. Folded
    /// stages may overlap in wall time, so `Σ stage` can exceed `total`
    /// the way CPU time exceeds wall time.
    pub fn add_stage(&mut self, name: impl Into<String>, d: u64) {
        let name = name.into();
        if let Some(s) = self.stages.iter_mut().find(|(n, _)| *n == name) {
            s.1 += d;
        } else {
            self.stages.push((name, d));
        }
    }

    /// Advance the stage cursor to now without recording a stage — the
    /// elapsed wall time was already accounted for by folded stages.
    pub fn skip(&mut self) {
        self.last_ns = self.clock.now_ns();
    }

    /// Total elapsed nanoseconds since the span's origin.
    pub fn total_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.started_ns)
    }

    /// The closed stages so far, in first-marked order.
    pub fn stages(&self) -> &[(String, u64)] {
        &self.stages
    }

    /// Consume the span: `(stage durations, total)`.
    pub fn finish(self) -> (Vec<(String, u64)>, u64) {
        let total = self.total_ns();
        (self.stages, total)
    }
}

#[cfg(test)]
mod tests {
    use super::super::clock::ManualClock;
    use super::*;
    use std::time::Duration;

    #[test]
    fn stages_are_exact_on_a_manual_clock() {
        let clock = ManualClock::new();
        let mut span = Span::start(clock.clone());
        clock.advance(Duration::from_micros(5));
        span.mark("translate");
        clock.advance(Duration::from_micros(2));
        span.mark("apply");
        clock.advance(Duration::from_micros(3));
        span.mark("apply"); // second device: accumulates
        clock.advance(Duration::from_micros(1));
        span.mark("commit");
        let (stages, total) = span.finish();
        assert_eq!(
            stages,
            vec![
                ("translate".to_string(), 5_000),
                ("apply".to_string(), 5_000),
                ("commit".to_string(), 1_000),
            ]
        );
        assert_eq!(total, 11_000);
    }

    #[test]
    fn start_from_records_queue_wait() {
        let clock = ManualClock::new();
        clock.advance(Duration::from_micros(10));
        let enqueued = clock.now_ns();
        clock.advance(Duration::from_micros(4));
        let span = Span::start_from(clock.clone(), enqueued, "acquire");
        assert_eq!(span.stages(), &[("acquire".to_string(), 4_000)]);
        clock.advance(Duration::from_micros(6));
        assert_eq!(span.total_ns(), 10_000);
    }
}
