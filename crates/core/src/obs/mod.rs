//! Dependency-free observability: counters, gauges, log-bucketed latency
//! histograms, per-update tracing spans, an injectable clock, and the
//! live `cn=monitor` LDAP subtree.
//!
//! Layout:
//! - [`metrics`] — the atomic primitives ([`Counter`], [`Gauge`],
//!   [`Histogram`] with p50/p95/p99 snapshots);
//! - [`registry`] — named components aggregating metrics per subsystem;
//! - [`span`] — the stage timer the Update Manager runs per trapped update;
//! - [`clock`] — [`SystemClock`] in production, [`ManualClock`] in tests
//!   (deterministic latencies, virtual fault-injector delays);
//! - [`monitor`] — [`MonitorDirectory`], materializing the registry as a
//!   read-only `cn=monitor` subtree searchable by any LDAP client.
//!
//! Component naming inside a [`crate::MetaComm`] deployment: `um` (the
//! coordinator), one `device-<name>` per device filter, `relay` (DDU
//! relays), `ltap` (gateway), and `server` (wire protocol, registered when
//! [`crate::MetaComm::serve`] starts).

pub mod clock;
pub mod metrics;
pub mod monitor;
pub mod registry;
pub mod span;

pub use clock::{Clock, ManualClock, SystemClock};
pub use metrics::{bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use monitor::{MonitorDirectory, MONITOR_BASE};
pub use registry::{Component, ComponentSnapshot, Registry, RegistrySnapshot};
pub use span::Span;

use std::collections::HashMap;
use std::sync::Arc;

/// Pre-resolved Update Manager instrumentation: the coordinator is the
/// hottest path in the system, so its metrics are looked up once at build
/// time, never per update.
pub(crate) struct UmObs {
    pub clock: Arc<dyn Clock>,
    /// Total latency of successful updates.
    pub update: Arc<Histogram>,
    /// Total latency of aborted updates (the §4.4 abort path).
    pub abort: Arc<Histogram>,
    /// Queue wait: trap enqueue → coordinator pickup (lock + WBA/LTAP
    /// acquisition happens before the trap, queue acquisition after).
    pub acquire: Arc<Histogram>,
    /// Transitive-closure (hub rules) stage.
    pub closure: Arc<Histogram>,
    /// lexpress translation stage, summed over device filters.
    pub translate: Arc<Histogram>,
    /// Final directory commit stage.
    pub commit: Arc<Histogram>,
    /// Per-device instrumentation, keyed by filter name.
    pub devices: HashMap<String, Arc<DeviceObs>>,
}

impl UmObs {
    pub(crate) fn install(
        registry: &Registry,
        device_names: impl IntoIterator<Item = String>,
    ) -> Arc<UmObs> {
        let um = registry.component("um");
        let devices = device_names
            .into_iter()
            .map(|n| {
                let obs = DeviceObs::install(registry, &n);
                (n, obs)
            })
            .collect();
        Arc::new(UmObs {
            clock: registry.clock(),
            update: um.histogram("update"),
            abort: um.histogram("abort"),
            acquire: um.histogram("acquire"),
            closure: um.histogram("closure"),
            translate: um.histogram("translate"),
            commit: um.histogram("commit"),
            devices,
        })
    }
}

/// Per-device instrumentation, shared by the UM coordinator (live applies),
/// the resilience layer (journal, breaker, drains), and the sync paths.
pub(crate) struct DeviceObs {
    pub clock: Arc<dyn Clock>,
    /// Live filter-apply latency (includes retries).
    pub apply: Arc<Histogram>,
    /// Reapply latency during journal drains (the §5.4 conditional path).
    pub reapply: Arc<Histogram>,
    /// Successful applies.
    pub applies: Arc<Counter>,
    /// Post-retry apply failures.
    pub failures: Arc<Counter>,
    /// Ops journaled during outages.
    pub queued: Arc<Counter>,
    /// Ops reapplied by journal drains.
    pub drained: Arc<Counter>,
    /// Breaker openings (device went offline).
    pub breaker_trips: Arc<Counter>,
    /// Full resynchronizations after journal overflow.
    pub resyncs: Arc<Counter>,
}

impl DeviceObs {
    pub(crate) fn install(registry: &Registry, device: &str) -> Arc<DeviceObs> {
        let c = registry.component(&format!("device-{device}"));
        Arc::new(DeviceObs {
            clock: registry.clock(),
            apply: c.histogram("apply"),
            reapply: c.histogram("reapply"),
            applies: c.counter("applies"),
            failures: c.counter("failures"),
            queued: c.counter("queuedTotal"),
            drained: c.counter("drainedTotal"),
            breaker_trips: c.counter("breakerTrips"),
            resyncs: c.counter("fullResyncs"),
        })
    }
}

/// Mirror the long-standing [`crate::UmStats`] atomics into the `um`
/// component as callback gauges — one source of truth, zero double counting.
pub(crate) fn mirror_um_stats(registry: &Registry, stats: &Arc<crate::um::UmStats>) {
    use std::sync::atomic::Ordering;
    let um = registry.component("um");
    macro_rules! mirror {
        ($name:literal, $field:ident) => {
            let s = stats.clone();
            um.gauge_callback($name, move || s.$field.load(Ordering::Relaxed) as i64);
        };
    }
    mirror!("updates", updates);
    mirror!("deviceOps", device_ops);
    mirror!("reapplied", reapplied);
    mirror!("skipped", skipped);
    mirror!("generatedMerges", generated_merges);
    mirror!("errors", errors);
    mirror!("undone", undone);
    mirror!("retried", retried);
    mirror!("queued", queued);
    mirror!("breakerTrips", breaker_trips);
    mirror!("journalDrained", journal_drained);
    mirror!("fullResyncs", full_resyncs);
}

/// Mirror the DDU [`crate::ddu::RelayStats`] into the `relay` component.
pub(crate) fn mirror_relay_stats(registry: &Registry, stats: &Arc<crate::ddu::RelayStats>) {
    use std::sync::atomic::Ordering;
    let relay = registry.component("relay");
    macro_rules! mirror {
        ($name:literal, $field:ident) => {
            let s = stats.clone();
            relay.gauge_callback($name, move || s.$field.load(Ordering::Relaxed) as i64);
        };
    }
    mirror!("ddus", ddus);
    mirror!("opsSent", ops_sent);
    mirror!("renamePairs", rename_pairs);
    mirror!("errors", errors);
    mirror!("injectedCrashes", injected_crashes);
    mirror!("retried", retried);
}

/// Mirror the LTAP gateway's [`ltap::Stats`] (counts and cumulative
/// latencies) into the `ltap` component.
pub(crate) fn mirror_gateway_stats(registry: &Registry, gateway: &Arc<ltap::Gateway>) {
    use std::sync::atomic::Ordering;
    let comp = registry.component("ltap");
    macro_rules! mirror {
        ($name:literal, $field:ident) => {
            let gw = gateway.clone();
            comp.gauge_callback($name, move || {
                gw.stats().$field.load(Ordering::Relaxed) as i64
            });
        };
    }
    mirror!("reads", reads);
    mirror!("updates", updates);
    mirror!("triggersFired", triggers_fired);
    mirror!("vetoed", vetoed);
    mirror!("handledByTrigger", handled_by_trigger);
    mirror!("updateNsTotal", update_ns);
    mirror!("readNsTotal", read_ns);
}

/// Register a shard router's fan-out counters as the `shard` component —
/// visible under `cn=monitor` like every other component. A router
/// deployment calls this itself (or sets
/// [`crate::MetaCommBuilder::with_shard_metrics`]); single-node
/// deployments have no `shard` component at all.
pub fn mirror_shard_metrics(registry: &Registry, metrics: &Arc<ldap::ShardMetrics>) {
    use std::sync::atomic::Ordering;
    let comp = registry.component("shard");
    macro_rules! mirror {
        ($name:literal, $field:ident) => {
            let m = metrics.clone();
            comp.gauge_callback($name, move || m.$field.load(Ordering::Relaxed) as i64);
        };
    }
    mirror!("searchesSingle", searches_single);
    mirror!("searchesFanout", searches_fanout);
    mirror!("fanoutSubqueries", fanout_subqueries);
    mirror!("limitProbes", limit_probes);
    mirror!("renamesRefused", renames_refused);
    let shards = metrics.ops_routed.len();
    comp.gauge_callback("shards", move || shards as i64);
    let m = metrics.clone();
    comp.gauge_callback("opsRouted", move || m.ops_total() as i64);
    for i in 0..shards {
        let m = metrics.clone();
        comp.gauge_callback(&format!("opsRoutedShard{i}"), move || {
            m.ops_routed[i].load(Ordering::Relaxed) as i64
        });
    }
}

/// Result codes tallied individually on the `server` component; anything
/// else lands in `resultCodeOther`. Fixed so the `cn=monitor` entry shape
/// is deterministic.
pub(crate) const TALLIED_RESULT_CODES: &[u32] = &[0, 32, 49, 52, 53, 68, 80];

/// Register the wire server's per-operation metrics as the `server`
/// component (called when [`crate::MetaComm::serve`] starts; idempotent).
pub(crate) fn mirror_server_metrics(
    registry: &Registry,
    metrics: &Arc<ldap::server::ServerMetrics>,
) {
    use std::sync::atomic::Ordering;
    let comp = registry.component("server");
    macro_rules! mirror {
        ($name:literal, $field:ident) => {
            let m = metrics.clone();
            comp.gauge_callback($name, move || m.$field.load(Ordering::Relaxed) as i64);
        };
    }
    mirror!("binds", binds);
    mirror!("searches", searches);
    mirror!("compares", compares);
    mirror!("adds", adds);
    mirror!("modifies", modifies);
    mirror!("modifyDns", modify_dns);
    mirror!("deletes", deletes);
    mirror!("unbinds", unbinds);
    mirror!("decodeFailures", decode_failures);
    mirror!("entriesReturned", entries_returned);
    mirror!("connectionsOpen", connections_open);
    mirror!("connectionsTotal", connections_total);
    mirror!("disconnectNotices", disconnect_notices);
    mirror!("disconnectIdle", disconnect_idle);
    mirror!("acceptPauses", accept_pauses);
    for &code in TALLIED_RESULT_CODES {
        let m = metrics.clone();
        comp.gauge_callback(&format!("resultCode{code}"), move || {
            m.result_code_count(code) as i64
        });
    }
    let m = metrics.clone();
    comp.gauge_callback("resultCodeOther", move || {
        m.result_code_other(TALLIED_RESULT_CODES) as i64
    });
}
