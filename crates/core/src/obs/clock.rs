//! The injectable clock every latency measurement goes through.
//!
//! Production uses [`SystemClock`] (a monotonic `Instant` base). Tests and
//! the experiment harness can substitute a [`ManualClock`], which only
//! moves when explicitly advanced — so span durations, histogram
//! percentiles, and even the [`crate::FaultInjector`]'s injected latency
//! become exact, deterministic numbers instead of wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock. `sleep` exists so fault-injected latency
/// can be made virtual: a [`ManualClock`] "sleeps" by advancing itself.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch. Monotonic.
    fn now_ns(&self) -> u64;

    /// Pause for `d` — real time by default, virtual on a [`ManualClock`].
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// The production clock: nanoseconds since the clock was created.
pub struct SystemClock {
    base: Instant,
}

impl SystemClock {
    pub fn new() -> Arc<SystemClock> {
        Arc::new(SystemClock {
            base: Instant::now(),
        })
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }
}

/// A clock that only moves when told to — deterministic time for tests.
#[derive(Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Arc<ManualClock> {
        Arc::new(ManualClock::default())
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.ns.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }

    /// Virtual sleep: time passes, no thread blocks.
    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance_or_sleep() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_micros(5));
        assert_eq!(c.now_ns(), 5_000);
        c.sleep(Duration::from_nanos(7));
        assert_eq!(c.now_ns(), 5_007);
    }
}
