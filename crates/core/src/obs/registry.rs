//! The metrics registry: named components, each holding named counters,
//! gauges, and histograms. One registry per [`crate::MetaComm`] deployment.
//!
//! Metric names are LDAP-attribute-safe camelCase identifiers — the same
//! name appears as an attribute of the component's `cn=monitor` entry
//! (histograms expand to `<name>Count`, `<name>MeanNs`, `<name>P50Ns`,
//! `<name>P95Ns`, `<name>P99Ns`, `<name>MaxNs`), as a key in
//! [`RegistrySnapshot::to_json`], and in [`crate::MetaComm::metrics_snapshot`].

use super::clock::{Clock, SystemClock};
use super::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One named component ("um", "ltap", "relay", "server", "device-pbx-west").
pub struct Component {
    name: String,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Component {
    fn new(name: &str) -> Arc<Component> {
        Arc::new(Component {
            name: name.to_string(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Get-or-register a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Get-or-register a stored gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::stored()))
            .clone()
    }

    /// Register (or replace) a callback gauge computed at read time.
    pub fn gauge_callback(&self, name: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.gauges
            .write()
            .insert(name.to_string(), Arc::new(Gauge::callback(f)));
    }

    /// Get-or-register a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    pub fn snapshot(&self) -> ComponentSnapshot {
        ComponentSnapshot {
            name: self.name.clone(),
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The per-deployment registry.
pub struct Registry {
    clock: Arc<dyn Clock>,
    components: RwLock<BTreeMap<String, Arc<Component>>>,
}

impl Registry {
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Registry> {
        Arc::new(Registry {
            clock,
            components: RwLock::new(BTreeMap::new()),
        })
    }

    /// A registry on the real (monotonic) clock.
    pub fn system() -> Arc<Registry> {
        Registry::new(SystemClock::new())
    }

    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    /// Get-or-register a component.
    pub fn component(&self, name: &str) -> Arc<Component> {
        if let Some(c) = self.components.read().get(name) {
            return c.clone();
        }
        self.components
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Component::new(name))
            .clone()
    }

    /// Component names, sorted.
    pub fn component_names(&self) -> Vec<String> {
        self.components.read().keys().cloned().collect()
    }

    /// A consistent-enough point-in-time view of every metric: each
    /// histogram snapshot is internally consistent; counters are read once.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            components: self
                .components
                .read()
                .values()
                .map(|c| c.snapshot())
                .collect(),
        }
    }
}

/// Snapshot of one component.
#[derive(Debug, Clone)]
pub struct ComponentSnapshot {
    pub name: String,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl ComponentSnapshot {
    /// A counter or gauge value by name (gauges clamp at 0).
    pub fn value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .or_else(|| {
                self.gauges
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| (*v).max(0) as u64)
            })
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

/// Snapshot of the whole registry (the [`crate::MetaComm::metrics_snapshot`]
/// return type).
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    pub components: Vec<ComponentSnapshot>,
}

impl RegistrySnapshot {
    pub fn component(&self, name: &str) -> Option<&ComponentSnapshot> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Shorthand: `value("um", "updates")`.
    pub fn value(&self, component: &str, metric: &str) -> Option<u64> {
        self.component(component)?.value(metric)
    }

    /// Hand-rolled JSON (the workspace has no serde): components →
    /// counters/gauges/histograms. Metric names are already JSON-safe
    /// identifiers; string values are escaped anyway.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{{", json_str(&c.name)));
            let mut first = true;
            for (k, v) in &c.counters {
                push_kv(&mut out, &mut first, k, &v.to_string());
            }
            for (k, v) in &c.gauges {
                push_kv(&mut out, &mut first, k, &v.to_string());
            }
            for (k, h) in &c.histograms {
                let val = format!(
                    "{{\"count\":{},\"sumNs\":{},\"meanNs\":{:.1},\"p50Ns\":{},\"p95Ns\":{},\"p99Ns\":{},\"maxNs\":{}}}",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                );
                push_kv(&mut out, &mut first, k, &val);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

fn push_kv(out: &mut String, first: &mut bool, key: &str, raw_value: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(&json_str(key));
    out.push(':');
    out.push_str(raw_value);
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_metric() {
        let r = Registry::system();
        let c1 = r.component("um").counter("updates");
        let c2 = r.component("um").counter("updates");
        c1.inc();
        assert_eq!(c2.get(), 1);
        assert_eq!(r.component_names(), vec!["um".to_string()]);
    }

    #[test]
    fn snapshot_and_lookup() {
        let r = Registry::system();
        r.component("um").counter("updates").add(3);
        r.component("um").gauge_callback("depth", || 7);
        r.component("um").histogram("update").record(100);
        let s = r.snapshot();
        assert_eq!(s.value("um", "updates"), Some(3));
        assert_eq!(s.value("um", "depth"), Some(7));
        let h = s.component("um").unwrap().histogram("update").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(s.value("um", "missing"), None);
        assert!(s.component("nope").is_none());
    }

    #[test]
    fn json_is_well_formed_and_non_empty() {
        let r = Registry::system();
        r.component("a").counter("x").inc();
        r.component("a").histogram("lat").record(42);
        let j = r.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a\""));
        assert!(j.contains("\"x\":1"));
        assert!(j.contains("\"p95Ns\""));
        // Balanced braces (crude well-formedness check, no serde available).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
    }
}
