//! The `cn=monitor` subtree: the registry exported live through LDAP, the
//! way real directory servers (OpenLDAP's back-monitor) expose theirs.
//!
//! [`MonitorDirectory`] decorates any [`Directory`] (in MetaComm: the LTAP
//! gateway). Searches based under `cn=monitor` are answered from entries
//! materialized on the fly out of the [`Registry`] — one entry per
//! component, one attribute per counter/gauge, six attributes per
//! histogram (`<name>Count`, `<name>MeanNs`, `<name>P50Ns`, `<name>P95Ns`,
//! `<name>P99Ns`, `<name>MaxNs`) — searchable with ordinary RFC 2254
//! filters, scopes, projections, and size limits. Everything else
//! passes through to the wrapped directory; writes under `cn=monitor` are
//! refused with `unwillingToPerform`.

use super::registry::{ComponentSnapshot, Registry};
use ldap::dit::Scope;
use ldap::dn::{Dn, Rdn};
use ldap::entry::{Entry, Modification};
use ldap::filter::Filter;
use ldap::{Directory, LdapError, Result, ResultCode};
use std::sync::Arc;

/// DN of the monitor subtree root.
pub const MONITOR_BASE: &str = "cn=monitor";

/// The decorator serving `cn=monitor` in front of a real directory.
pub struct MonitorDirectory {
    inner: Arc<dyn Directory>,
    registry: Arc<Registry>,
    base: Dn,
}

impl MonitorDirectory {
    pub fn new(inner: Arc<dyn Directory>, registry: Arc<Registry>) -> Arc<MonitorDirectory> {
        Arc::new(MonitorDirectory {
            inner,
            registry,
            base: Dn::parse(MONITOR_BASE).expect("static DN"),
        })
    }

    /// The monitor subtree materialized from the current registry state:
    /// the root entry first, then one entry per component (sorted).
    pub fn materialize(&self) -> Vec<Entry> {
        let snap = self.registry.snapshot();
        let mut root = Entry::new(self.base.clone());
        root.add_value("objectClass", "top");
        root.add_value("objectClass", "monitorServer");
        root.add_value("cn", "monitor");
        root.add_value(
            "description",
            "MetaComm live metrics (read-only; values materialized per search)",
        );
        let mut out = vec![];
        let mut components = Vec::new();
        for c in &snap.components {
            root.add_value("monitorComponent", c.name.clone());
            components.push(self.component_entry(c));
        }
        out.push(root);
        out.extend(components);
        out
    }

    fn component_entry(&self, c: &ComponentSnapshot) -> Entry {
        let mut e = Entry::new(self.base.child(Rdn::new("cn", c.name.clone())));
        e.add_value("objectClass", "top");
        e.add_value("objectClass", "monitorComponent");
        e.add_value("cn", c.name.clone());
        for (k, v) in &c.counters {
            e.add_value(k.clone(), v.to_string());
        }
        for (k, v) in &c.gauges {
            e.add_value(k.clone(), v.to_string());
        }
        for (k, h) in &c.histograms {
            e.add_value(format!("{k}Count"), h.count.to_string());
            e.add_value(format!("{k}MeanNs"), format!("{:.0}", h.mean()));
            e.add_value(format!("{k}P50Ns"), h.p50.to_string());
            e.add_value(format!("{k}P95Ns"), h.p95.to_string());
            e.add_value(format!("{k}P99Ns"), h.p99.to_string());
            e.add_value(format!("{k}MaxNs"), h.max.to_string());
        }
        e
    }

    fn refuse_write(&self, dn: &Dn) -> Result<()> {
        if dn.is_within(&self.base) {
            Err(LdapError::new(
                ResultCode::UnwillingToPerform,
                "cn=monitor is read-only",
            ))
        } else {
            Ok(())
        }
    }
}

impl Directory for MonitorDirectory {
    fn add(&self, entry: Entry) -> Result<()> {
        self.refuse_write(entry.dn())?;
        self.inner.add(entry)
    }

    fn delete(&self, dn: &Dn) -> Result<()> {
        self.refuse_write(dn)?;
        self.inner.delete(dn)
    }

    fn modify(&self, dn: &Dn, mods: &[Modification]) -> Result<()> {
        self.refuse_write(dn)?;
        self.inner.modify(dn, mods)
    }

    fn modify_rdn(
        &self,
        dn: &Dn,
        new_rdn: &Rdn,
        delete_old: bool,
        new_superior: Option<&Dn>,
    ) -> Result<()> {
        self.refuse_write(dn)?;
        if let Some(sup) = new_superior {
            self.refuse_write(&sup.child(new_rdn.clone()))?;
        }
        self.inner.modify_rdn(dn, new_rdn, delete_old, new_superior)
    }

    fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<Vec<Entry>> {
        if !base.is_within(&self.base) {
            return self.inner.search(base, scope, filter, attrs, size_limit);
        }
        let entries = self.materialize();
        let base_key = base.norm_key();
        if !entries.iter().any(|e| e.dn().norm_key() == base_key) {
            return Err(LdapError::no_such_object(base));
        }
        let mut out = Vec::new();
        for e in &entries {
            let in_scope = match scope {
                Scope::Base => e.dn().norm_key() == base_key,
                Scope::One => e.dn().parent().is_some_and(|p| p.norm_key() == base_key),
                Scope::Sub => e.dn().is_within(base),
            };
            if !in_scope || !filter.matches(e) {
                continue;
            }
            if size_limit != 0 && out.len() >= size_limit {
                return Err(LdapError::new(
                    ResultCode::SizeLimitExceeded,
                    format!("more than {size_limit} entries match"),
                ));
            }
            out.push(e.project(attrs));
        }
        Ok(out)
    }

    fn search_capped(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
    ) -> Result<(Vec<Entry>, bool)> {
        if !base.is_within(&self.base) {
            // Forward so a capped inner directory keeps its single-pass path.
            return self
                .inner
                .search_capped(base, scope, filter, attrs, size_limit);
        }
        let entries = self.materialize();
        let base_key = base.norm_key();
        if !entries.iter().any(|e| e.dn().norm_key() == base_key) {
            return Err(LdapError::no_such_object(base));
        }
        let mut out = Vec::new();
        for e in &entries {
            let in_scope = match scope {
                Scope::Base => e.dn().norm_key() == base_key,
                Scope::One => e.dn().parent().is_some_and(|p| p.norm_key() == base_key),
                Scope::Sub => e.dn().is_within(base),
            };
            if !in_scope || !filter.matches(e) {
                continue;
            }
            if size_limit != 0 && out.len() >= size_limit {
                return Ok((out, true));
            }
            out.push(e.project(attrs));
        }
        Ok((out, false))
    }

    fn search_visit(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &[String],
        size_limit: usize,
        visit: &mut dyn FnMut(&Entry),
    ) -> Result<(usize, bool)> {
        if !base.is_within(&self.base) {
            // Forward so the inner directory's zero-copy path stays intact.
            return self
                .inner
                .search_visit(base, scope, filter, attrs, size_limit, visit);
        }
        let (entries, truncated) = self.search_capped(base, scope, filter, attrs, size_limit)?;
        for e in &entries {
            visit(e);
        }
        Ok((entries.len(), truncated))
    }

    fn compare(&self, dn: &Dn, attr: &str, value: &str) -> Result<bool> {
        if !dn.is_within(&self.base) {
            return self.inner.compare(dn, attr, value);
        }
        let entries = self.materialize();
        let key = dn.norm_key();
        match entries.iter().find(|e| e.dn().norm_key() == key) {
            Some(e) => Ok(e.has_value(attr, value)),
            None => Err(LdapError::no_such_object(dn)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldap::dit::{figure2_tree, Dit};

    fn rig() -> (Arc<MonitorDirectory>, Arc<Registry>) {
        let dit = Dit::new();
        figure2_tree(&dit).unwrap();
        let registry = Registry::system();
        registry.component("um").counter("updates").add(5);
        registry.component("um").histogram("update").record(1_000);
        registry.component("relay").counter("ddus").add(2);
        (MonitorDirectory::new(dit, registry.clone()), registry)
    }

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    #[test]
    fn subtree_search_returns_root_and_components() {
        let (m, _r) = rig();
        let hits = m
            .search(&dn("cn=monitor"), Scope::Sub, &Filter::match_all(), &[], 0)
            .unwrap();
        let dns: Vec<String> = hits.iter().map(|e| e.dn().to_string()).collect();
        assert_eq!(
            dns,
            vec!["cn=monitor", "cn=relay,cn=monitor", "cn=um,cn=monitor"]
        );
        let um = &hits[2];
        assert_eq!(um.first("updates"), Some("5"));
        assert_eq!(um.first("updateCount"), Some("1"));
        assert!(um.first("updateP95Ns").is_some());
    }

    #[test]
    fn rfc2254_filters_and_scopes_apply() {
        let (m, _r) = rig();
        let f = Filter::parse("(cn=um)").unwrap();
        let hits = m.search(&dn("cn=monitor"), Scope::One, &f, &[], 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn().to_string(), "cn=um,cn=monitor");
        // Base scope on a component entry.
        let hits = m
            .search(
                &dn("cn=um,cn=monitor"),
                Scope::Base,
                &Filter::match_all(),
                &["updates".into()],
                0,
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].first("updates"), Some("5"));
        assert!(hits[0].first("cn").is_none(), "projection must apply");
        // Missing base errors like a real server.
        let err = m
            .search(
                &dn("cn=ghost,cn=monitor"),
                Scope::Base,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap_err();
        assert_eq!(err.code, ResultCode::NoSuchObject);
    }

    #[test]
    fn values_are_live_not_cached() {
        let (m, r) = rig();
        let before = m
            .search(
                &dn("cn=um,cn=monitor"),
                Scope::Base,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(before[0].first("updates"), Some("5"));
        r.component("um").counter("updates").add(10);
        let after = m
            .search(
                &dn("cn=um,cn=monitor"),
                Scope::Base,
                &Filter::match_all(),
                &[],
                0,
            )
            .unwrap();
        assert_eq!(after[0].first("updates"), Some("15"));
    }

    #[test]
    fn writes_under_monitor_are_refused_and_passthrough_works() {
        let (m, _r) = rig();
        let err = m.delete(&dn("cn=um,cn=monitor")).unwrap_err();
        assert_eq!(err.code, ResultCode::UnwillingToPerform);
        let err = m.add(Entry::new(dn("cn=new,cn=monitor"))).unwrap_err();
        assert_eq!(err.code, ResultCode::UnwillingToPerform);
        // Pass-through read of the real tree underneath.
        let hits = m
            .search(&dn("o=Lucent"), Scope::Sub, &Filter::match_all(), &[], 0)
            .unwrap();
        assert_eq!(hits.len(), 9);
        // Compare against a monitor entry.
        assert!(m.compare(&dn("cn=um,cn=monitor"), "updates", "5").unwrap());
        assert!(!m.compare(&dn("cn=um,cn=monitor"), "updates", "6").unwrap());
    }
}
