//! The metric primitives: atomics-based counters, gauges, and log-bucketed
//! latency histograms. Hand-rolled — the workspace takes no new
//! dependencies for observability.
//!
//! All three types are lock-free on the write path; snapshots are
//! internally consistent by construction (a histogram snapshot derives its
//! count from the bucket array it just read, so `count == Σ buckets` holds
//! even while writers race the reader).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Where a gauge's value comes from.
enum GaugeSource {
    /// A stored value, settable from anywhere.
    Stored(AtomicI64),
    /// Computed at read time — used to export live state (journal depth,
    /// breaker state) and to mirror pre-existing stats structs without
    /// double-counting.
    Callback(Box<dyn Fn() -> i64 + Send + Sync>),
}

/// A point-in-time value that can go up or down.
pub struct Gauge {
    src: GaugeSource,
}

impl Gauge {
    pub fn stored() -> Gauge {
        Gauge {
            src: GaugeSource::Stored(AtomicI64::new(0)),
        }
    }

    pub fn callback(f: impl Fn() -> i64 + Send + Sync + 'static) -> Gauge {
        Gauge {
            src: GaugeSource::Callback(Box::new(f)),
        }
    }

    /// Set a stored gauge (no-op on a callback gauge).
    pub fn set(&self, v: i64) {
        if let GaugeSource::Stored(a) = &self.src {
            a.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust a stored gauge (no-op on a callback gauge).
    pub fn add(&self, d: i64) {
        if let GaugeSource::Stored(a) = &self.src {
            a.fetch_add(d, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        match &self.src {
            GaugeSource::Stored(a) => a.load(Ordering::Relaxed),
            GaugeSource::Callback(f) => f(),
        }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Number of log2 buckets. Bucket `i` (for `i > 0`) holds values whose bit
/// length is `i`, i.e. the range `[2^(i-1), 2^i - 1]`; bucket 0 holds 0.
/// 50 buckets cover up to ~2^49 ns ≈ 6.5 days of latency — beyond that the
/// last bucket absorbs everything.
pub const BUCKETS: usize = 50;

/// Upper bound (inclusive) of bucket `i` in recorded units.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// A log-bucketed histogram of nanosecond latencies (or any u64 sample).
/// Writers touch two atomics; readers assemble a consistent
/// [`HistogramSnapshot`] with p50/p95/p99.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let pct = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile sample (1-based), then the upper bound
            // of the bucket containing it.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={}, p95={}, p99={}, max={})",
            s.count, s.p50, s.p95, s.p99, s.max
        )
    }
}

/// A consistent point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Upper bound of the bucket holding the median sample (capped at max).
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    /// Raw bucket counts (`count == buckets.iter().sum()` by construction).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_stored_and_callback() {
        let g = Gauge::stored();
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let cb = Gauge::callback(|| 123);
        assert_eq!(cb.get(), 123);
        cb.set(0); // no-op
        assert_eq!(cb.get(), 123);
    }

    #[test]
    fn bucket_index_and_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(3), 7);
        // Everything past the last bucket folds in.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_order_and_totals() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500500);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        // Rank 500 falls in the bucket [256, 511] (cumulative 511 ≥ 500).
        assert_eq!(s.p50, 511);
        // Rank 950 falls in [512, 1023], capped at the observed max.
        assert_eq!(s.p95, 1000);
        assert_eq!(s.count, s.buckets.iter().sum::<u64>());
    }

    #[test]
    fn empty_histogram_snapshot_is_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (s.count, s.sum, s.max, s.p50, s.p95, s.p99),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean(), 0.0);
    }
}
