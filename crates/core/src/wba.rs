//! Web-Based Administration (paper Figure 1 / §4.5): "a single point of
//! administration for the telecom devices … an authorized user/program can
//! easily redirect a telephone extension to a port in another room."
//!
//! This is the programmatic core of the WBA: high-level administrative
//! verbs over any [`Directory`] (normally the LTAP gateway). The
//! `examples/wba_admin.rs` binary puts a terminal UI on top — the paper's
//! point being that *any* LDAP tool works here.

use crate::schema::LAST_UPDATER;
use ldap::dn::{Dn, Rdn};
use ldap::entry::{Entry, Modification};
use ldap::{Directory, Filter, Scope};

/// The administration front-end. All writes are labelled `wba` in
/// `lastUpdater` so origin tracking distinguishes them from device echoes.
pub struct Wba<D: Directory> {
    dir: D,
    suffix: Dn,
}

impl<D: Directory> Wba<D> {
    pub fn new(dir: D, suffix: Dn) -> Wba<D> {
        Wba { dir, suffix }
    }

    pub fn suffix(&self) -> &Dn {
        &self.suffix
    }

    pub fn directory(&self) -> &D {
        &self.dir
    }

    fn person_dn(&self, cn: &str) -> Dn {
        self.suffix.child(Rdn::new("cn", cn))
    }

    /// Create a person entry (no device data yet).
    pub fn add_person(&self, cn: &str, sn: &str) -> ldap::Result<Dn> {
        let dn = self.person_dn(cn);
        let e = Entry::with_attrs(
            dn.clone(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("objectClass", "organizationalPerson"),
                ("cn", cn),
                ("sn", sn),
                (LAST_UPDATER, "wba"),
            ],
        );
        self.dir.add(e)?;
        Ok(dn)
    }

    /// Create a person complete with a PBX extension (and so a station).
    pub fn add_person_with_extension(
        &self,
        cn: &str,
        sn: &str,
        extension: &str,
        room: &str,
    ) -> ldap::Result<Dn> {
        let dn = self.person_dn(cn);
        let e = Entry::with_attrs(
            dn.clone(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("objectClass", "organizationalPerson"),
                ("objectClass", crate::schema::DEFINITY_USER),
                ("cn", cn),
                ("sn", sn),
                ("definityExtension", extension),
                ("telephoneNumber", &format!("+1 908 582 {extension}")),
                ("roomNumber", room),
                (LAST_UPDATER, "wba"),
            ],
        );
        self.dir.add(e)?;
        Ok(dn)
    }

    fn modify_as_wba(&self, dn: &Dn, mut mods: Vec<Modification>) -> ldap::Result<()> {
        mods.push(Modification::set(LAST_UPDATER, "wba"));
        self.dir.modify(dn, &mods)
    }

    /// Change a person's telephone number — the paper's flagship update:
    /// the transitive closure adjusts the extension, partitioning may move
    /// the station between switches.
    pub fn set_phone(&self, cn: &str, number: &str) -> ldap::Result<()> {
        self.modify_as_wba(
            &self.person_dn(cn),
            vec![Modification::set("telephoneNumber", number)],
        )
    }

    /// Assign (or reassign) a PBX extension.
    pub fn set_extension(&self, cn: &str, extension: &str) -> ldap::Result<()> {
        let dn = self.person_dn(cn);
        let mut mods = vec![Modification::set("definityExtension", extension)];
        let entry = self
            .dir
            .get(&dn)?
            .ok_or_else(|| ldap::LdapError::no_such_object(&dn))?;
        if !entry.has_object_class(crate::schema::DEFINITY_USER) {
            mods.insert(
                0,
                Modification::add("objectClass", vec![crate::schema::DEFINITY_USER.into()]),
            );
        }
        self.modify_as_wba(&dn, mods)
    }

    /// Hoteling (paper §4.5): "redirect a telephone extension to a port in
    /// another room" — reassign the person's room; their extension follows.
    pub fn assign_room(&self, cn: &str, room: &str) -> ldap::Result<()> {
        self.modify_as_wba(
            &self.person_dn(cn),
            vec![Modification::set("roomNumber", room)],
        )
    }

    /// Give a person a voice mailbox.
    pub fn assign_mailbox(&self, cn: &str, mailbox: &str, cos: &str) -> ldap::Result<()> {
        let dn = self.person_dn(cn);
        let entry = self
            .dir
            .get(&dn)?
            .ok_or_else(|| ldap::LdapError::no_such_object(&dn))?;
        let mut mods = vec![
            Modification::set("mpMailbox", mailbox),
            Modification::set("mpClassOfService", cos),
        ];
        if !entry.has_object_class(crate::schema::MESSAGING_USER) {
            mods.insert(
                0,
                Modification::add("objectClass", vec![crate::schema::MESSAGING_USER.into()]),
            );
        }
        self.modify_as_wba(&dn, mods)
    }

    /// Create a *location entry* for a person — the paper's §5.3 workaround
    /// for LDAP's uncorrelatable set-valued attributes: "we require that a
    /// given person have a different directory entry for each location
    /// associated with that person". The entry is named by a multi-AVA RDN
    /// (`cn=<name>+l=<location>`) so each location carries its own phone
    /// and room without colliding with the primary entry.
    pub fn add_person_location(
        &self,
        cn: &str,
        sn: &str,
        location: &str,
        phone: &str,
        room: &str,
    ) -> ldap::Result<Dn> {
        let rdn = Rdn::multi(vec![
            ldap::Ava::new("cn", cn),
            ldap::Ava::new("l", location),
        ])?;
        let dn = self.suffix.child(rdn);
        let e = Entry::with_attrs(
            dn.clone(),
            [
                ("objectClass", "top"),
                ("objectClass", "person"),
                ("objectClass", "organizationalPerson"),
                ("cn", cn),
                ("sn", sn),
                ("l", location),
                ("telephoneNumber", phone),
                ("roomNumber", room),
                (LAST_UPDATER, "wba"),
            ],
        );
        self.dir.add(e)?;
        Ok(dn)
    }

    /// All entries (primary + locations) for a person.
    pub fn person_locations(&self, cn: &str) -> ldap::Result<Vec<Entry>> {
        self.find(&format!("(cn={cn})"))
    }

    /// Rename a person (a ModifyRDN through the gateway).
    pub fn rename_person(&self, cn: &str, new_cn: &str) -> ldap::Result<Dn> {
        let dn = self.person_dn(cn);
        self.dir
            .modify_rdn(&dn, &Rdn::new("cn", new_cn), true, None)?;
        Ok(self.person_dn(new_cn))
    }

    /// Remove a person entirely (devices included, via the UM fan-out).
    pub fn remove_person(&self, cn: &str) -> ldap::Result<()> {
        self.dir.delete(&self.person_dn(cn))
    }

    /// Fetch one person.
    pub fn person(&self, cn: &str) -> ldap::Result<Option<Entry>> {
        self.dir.get(&self.person_dn(cn))
    }

    /// Search people with an RFC 2254 filter string.
    pub fn find(&self, filter: &str) -> ldap::Result<Vec<Entry>> {
        let f = Filter::parse(filter)?;
        let f = Filter::And(vec![Filter::eq("objectClass", "person"), f]);
        self.dir.search(&self.suffix, Scope::Sub, &f, &[], 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::integrated_schema;
    use ldap::dit::Dit;
    use std::sync::Arc;

    /// WBA straight against a schema-checked DIT (no UM) — verifies the
    /// front-end emits valid LDAP independent of the meta-directory.
    fn wba() -> Wba<Arc<Dit>> {
        let dit = Dit::with_schema(Arc::new(integrated_schema()));
        let mut org = Entry::new(Dn::parse("o=Lucent").unwrap());
        org.add_value("objectClass", "top");
        org.add_value("objectClass", "organization");
        org.add_value("o", "Lucent");
        Dit::add(&dit, org).unwrap();
        Wba::new(dit, Dn::parse("o=Lucent").unwrap())
    }

    #[test]
    fn add_and_fetch_person() {
        let w = wba();
        let dn = w.add_person("John Doe", "Doe").unwrap();
        assert_eq!(dn.to_string(), "cn=John Doe,o=Lucent");
        let e = w.person("John Doe").unwrap().unwrap();
        assert_eq!(e.first("sn"), Some("Doe"));
        assert_eq!(e.first(LAST_UPDATER), Some("wba"));
        assert!(w.person("Nobody").unwrap().is_none());
    }

    #[test]
    fn add_person_with_extension_is_schema_valid() {
        let w = wba();
        w.add_person_with_extension("John Doe", "Doe", "9123", "2B-401")
            .unwrap();
        let e = w.person("John Doe").unwrap().unwrap();
        assert!(e.has_object_class("definityUser"));
        assert_eq!(e.first("telephoneNumber"), Some("+1 908 582 9123"));
    }

    #[test]
    fn set_extension_adds_aux_class_when_missing() {
        let w = wba();
        w.add_person("Plain Person", "Person").unwrap();
        w.set_extension("Plain Person", "9200").unwrap();
        let e = w.person("Plain Person").unwrap().unwrap();
        assert!(e.has_object_class("definityUser"));
        assert_eq!(e.first("definityExtension"), Some("9200"));
        // Second call must not try to re-add the class.
        w.set_extension("Plain Person", "9300").unwrap();
        assert_eq!(
            w.person("Plain Person")
                .unwrap()
                .unwrap()
                .first("definityExtension"),
            Some("9300")
        );
    }

    #[test]
    fn assign_mailbox_adds_aux_class() {
        let w = wba();
        w.add_person("John Doe", "Doe").unwrap();
        w.assign_mailbox("John Doe", "9123", "executive").unwrap();
        let e = w.person("John Doe").unwrap().unwrap();
        assert!(e.has_object_class("messagingUser"));
        assert_eq!(e.first("mpClassOfService"), Some("executive"));
    }

    #[test]
    fn rename_and_remove() {
        let w = wba();
        w.add_person("John Doe", "Doe").unwrap();
        let new_dn = w.rename_person("John Doe", "Jack Doe").unwrap();
        assert_eq!(new_dn.to_string(), "cn=Jack Doe,o=Lucent");
        assert!(w.person("John Doe").unwrap().is_none());
        assert!(w.person("Jack Doe").unwrap().is_some());
        w.remove_person("Jack Doe").unwrap();
        assert!(w.person("Jack Doe").unwrap().is_none());
    }

    #[test]
    fn find_composes_filters() {
        let w = wba();
        w.add_person_with_extension("John Doe", "Doe", "9100", "2B")
            .unwrap();
        w.add_person_with_extension("Pat Smith", "Smith", "9200", "2C")
            .unwrap();
        let hits = w.find("(definityExtension=91*)").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].first("cn"), Some("John Doe"));
        // The person-class conjunct keeps org entries out.
        let all = w.find("(cn=*)").unwrap();
        assert_eq!(all.len(), 2);
        assert!(w.find("(((").is_err());
    }

    #[test]
    fn errors_surface_as_ldap_codes() {
        let w = wba();
        assert_eq!(
            w.set_phone("Nobody", "+1 908 582 9000").unwrap_err().code,
            ldap::ResultCode::NoSuchObject
        );
        assert_eq!(
            w.set_extension("Nobody", "9123").unwrap_err().code,
            ldap::ResultCode::NoSuchObject
        );
        w.add_person("John Doe", "Doe").unwrap();
        assert_eq!(
            w.add_person("John Doe", "Doe").unwrap_err().code,
            ldap::ResultCode::EntryAlreadyExists
        );
    }
}

#[cfg(test)]
mod location_tests {
    use super::*;
    use crate::schema::integrated_schema;
    use ldap::dit::Dit;
    use std::sync::Arc;

    #[test]
    fn one_entry_per_location_per_the_papers_workaround() {
        // §5.3: set-valued attributes cannot correlate phone↔address, so a
        // person gets one entry per location, each with its own values.
        let dit = Dit::with_schema(Arc::new(integrated_schema()));
        let mut org = Entry::new(Dn::parse("o=Lucent").unwrap());
        org.add_value("objectClass", "top");
        org.add_value("objectClass", "organization");
        org.add_value("o", "Lucent");
        Dit::add(&dit, org).unwrap();
        let w = Wba::new(dit, Dn::parse("o=Lucent").unwrap());

        w.add_person("John Doe", "Doe").unwrap();
        let mh = w
            .add_person_location(
                "John Doe",
                "Doe",
                "Murray Hill",
                "+1 908 582 9123",
                "2B-401",
            )
            .unwrap();
        let wm = w
            .add_person_location("John Doe", "Doe", "Westminster", "+1 303 538 1000", "W-100")
            .unwrap();
        assert_ne!(mh, wm, "locations are distinct entries");

        // Three entries share the cn; each location correlates its own
        // phone with its own room — impossible with set-valued attributes.
        let all = w.person_locations("John Doe").unwrap();
        assert_eq!(all.len(), 3);
        let mh_entry = all
            .iter()
            .find(|e| e.first("l") == Some("Murray Hill"))
            .unwrap();
        assert_eq!(mh_entry.first("telephoneNumber"), Some("+1 908 582 9123"));
        assert_eq!(mh_entry.first("roomNumber"), Some("2B-401"));
        let wm_entry = all
            .iter()
            .find(|e| e.first("l") == Some("Westminster"))
            .unwrap();
        assert_eq!(wm_entry.first("telephoneNumber"), Some("+1 303 538 1000"));

        // Multi-AVA RDN is order-insensitive: both spellings address it.
        let alt = Dn::parse("l=Murray Hill+cn=John Doe,o=Lucent").unwrap();
        assert!(w.directory().get(&alt).unwrap().is_some());
    }
}
