//! Whole-deployment crash safety: the durability engine.
//!
//! The ldap crate provides the mechanisms — a group-commit [`Wal`],
//! checksummed snapshot rotation ([`SnapshotStore`]), and committed-prefix
//! replay. This module composes them into one engine that makes *all* of a
//! deployment's hard state survive `kill -9`:
//!
//! - **DIT commits** — every directory commit appends a
//!   [`backup::TAG_DIT_CHANGE`] frame before the client sees success.
//! - **Per-device outage journals** — the store-and-forward backlog from
//!   [`crate::resilience`] is mirrored into the log (push/discard/pop/
//!   overflow events), so a node that crashes mid-outage resumes draining
//!   instead of silently forgetting queued device operations.
//!
//! ## Recovery order (DESIGN §12)
//!
//! 1. newest snapshot whose checksum footer verifies (fall back one
//!    generation on a torn write);
//! 2. WAL segments in generation order, applying exactly the committed
//!    prefix of DIT records and reducing journal events to per-device
//!    backlogs;
//! 3. outage journals handed back to their [`DeviceRuntime`]s, which
//!    restart `Offline` so the recovery monitor probes and drains them.
//!
//! ## Checkpoint protocol
//!
//! Rotate first, snapshot second: a new WAL segment is opened *before* the
//! export, so every record in the old segment has a commit sequence ≤ the
//! snapshot's — the old segment is then redundant and prunable. Journal
//! state is re-logged into the fresh segment so it never depends on pruned
//! history. The previous snapshot generation is kept as the torn-write
//! fallback.

use crate::error::{MetaError, Result};
use crate::errorlog::ErrorLog;
use crate::obs::Registry;
use crate::resilience::{DeviceRuntime, JournalSink};
use ldap::backup::{self, SnapshotStore};
use ldap::dit::Dit;
use ldap::dn::Dn;
use ldap::wal::{self, FsyncPolicy, Wal, WalStats};
use ldap::Directory;
use lexpress::{Image, OpKind, TargetOp};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// WAL frame tags owned by this layer. Tag 1 is the DIT change record
// (owned by ldap::backup); journal mirroring uses a disjoint range.
const TAG_JOURNAL_PUSH: u8 = 16;
const TAG_JOURNAL_DISCARD: u8 = 17;
const TAG_JOURNAL_POP: u8 = 18;
const TAG_JOURNAL_OVERFLOW: u8 = 19;
const TAG_JOURNAL_CLEARED: u8 = 20;
const TAG_JOURNAL_STATE: u8 = 21;

/// What recovery-on-boot found and replayed (exposed through
/// [`crate::MetaComm::recovery_report`] and as `cn=monitor` gauges).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Generation of the snapshot recovery started from (0 = none).
    pub snapshot_generation: u64,
    /// Entries loaded from that snapshot.
    pub snapshot_entries: usize,
    /// DIT change records applied from the WAL (the committed suffix).
    pub wal_records_applied: usize,
    /// DIT records skipped because the snapshot already covered them.
    pub wal_records_skipped: usize,
    /// DIT records discarded past a torn frame's sequence gap.
    pub wal_records_discarded: usize,
    /// WAL segments that ended in a torn frame.
    pub torn_segments: usize,
    /// Outage-journal ops recovered across all devices.
    pub journal_ops: usize,
    /// State was migrated from the legacy LDIF snapshot + change journal.
    pub legacy_migration: bool,
    /// Wall-clock time recovery took, in microseconds.
    pub replay_micros: u64,
}

/// One device's outage journal as reduced from the log.
#[derive(Debug, Clone, Default)]
pub(crate) struct RecoveredJournal {
    pub ops: Vec<(u64, TargetOp, Option<Dn>)>,
    pub overflowed: bool,
}

type ErrorCtx = Arc<Mutex<Option<(Arc<ErrorLog>, Arc<dyn Directory>)>>>;

/// The durability engine: owns the snapshot store and the current WAL
/// segment, observes DIT commits and journal mutations, and runs the
/// checkpoint protocol.
pub(crate) struct Durability {
    store: SnapshotStore,
    policy: FsyncPolicy,
    /// Current segment; swapped under this lock at checkpoint.
    wal: Mutex<Arc<Wal>>,
    /// Cumulative across segment rotations.
    wal_stats: Arc<WalStats>,
    generation: AtomicU64,
    snapshots_written: AtomicU64,
    checkpoint_lock: Mutex<()>,
    report: RecoveryReport,
    /// Where WAL write failures are alerted once the deployment's error
    /// log exists (installed after build wires it up).
    error_ctx: ErrorCtx,
}

impl Durability {
    /// Recover the DIT (and the reduced outage journals) from `dir`, then
    /// open a fresh WAL segment for new commits. The caller attaches the
    /// commit observer, hands journals to their runtimes, and checkpoints.
    pub(crate) fn open(
        dir: &Path,
        policy: FsyncPolicy,
        dit: &Arc<Dit>,
    ) -> Result<(Arc<Durability>, HashMap<String, RecoveredJournal>)> {
        let started = std::time::Instant::now();
        std::fs::create_dir_all(dir).map_err(|e| MetaError::Unavailable(e.to_string()))?;
        let store = SnapshotStore::new(dir);
        let mut report = RecoveryReport::default();
        let mut journals: HashMap<String, RecoveredJournal> = HashMap::new();

        let legacy_snap = dir.join("directory.ldif");
        let legacy_journal = dir.join("changes.ldif");
        // One bulk-load window around the whole recovery (snapshot load AND
        // WAL replay): on the compact backing, per-insert index and
        // sibling-order maintenance is suspended and rebuilt once when the
        // window closes — a single linear pass instead of a million
        // incremental updates. Nestable, so the snapshot loader's own
        // window composes; a no-op on the legacy backing.
        dit.begin_bulk();
        let recovery = (|| -> Result<()> {
            if store.latest_generation() == 0 && (legacy_snap.exists() || legacy_journal.exists()) {
                // Pre-WAL layout: LDIF snapshot + change journal. Load it once;
                // the boot checkpoint writes generation 1 and the legacy files
                // are never consulted again.
                let (s, j) = backup::recover(dit, &legacy_snap, &legacy_journal)?;
                report.legacy_migration = true;
                report.snapshot_entries = s;
                report.wal_records_applied = j;
            } else {
                let snap_seq = match store.restore_latest(dit)? {
                    Some((generation, seq, entries)) => {
                        report.snapshot_generation = generation;
                        report.snapshot_entries = entries;
                        dit.set_seq(seq);
                        seq
                    }
                    None => 0,
                };
                // Replay every segment in generation order: DIT records are
                // collected (they carry their own commit sequence and are
                // sorted globally), journal events reduce in scan order.
                let mut dit_records: Vec<(u64, String)> = Vec::new();
                for generation in store.wal_generations() {
                    let summary = wal::replay(&store.wal_path(generation), |tag, payload| {
                        match tag {
                            backup::TAG_DIT_CHANGE => {
                                let (seq, text) = backup::decode_wal_payload(payload)?;
                                dit_records.push((seq, text.to_string()));
                            }
                            _ => reduce_journal_event(&mut journals, tag, payload)
                                .map_err(ldap_decode_error)?,
                        }
                        Ok(())
                    })?;
                    if summary.torn {
                        report.torn_segments += 1;
                    }
                }
                let replay = backup::apply_wal_records(dit, dit_records, snap_seq)?;
                report.wal_records_applied = replay.applied;
                report.wal_records_skipped = replay.skipped;
                report.wal_records_discarded = replay.discarded;
            }
            Ok(())
        })();
        dit.finish_bulk();
        recovery?;
        report.journal_ops = journals.values().map(|j| j.ops.len()).sum();
        report.replay_micros = started.elapsed().as_micros() as u64;

        // New commits go to a fresh segment: the previous one may end in a
        // torn frame, and appending past torn bytes would hide everything
        // after them from the next replay.
        let generation = store.latest_generation() + 1;
        let wal_stats = Arc::new(WalStats::default());
        let wal = Wal::open_with_stats(&store.wal_path(generation), policy, wal_stats.clone())?;
        let error_ctx: ErrorCtx = Arc::new(Mutex::new(None));
        install_error_sink(&wal, &error_ctx);

        Ok((
            Arc::new(Durability {
                store,
                policy,
                wal: Mutex::new(wal),
                wal_stats,
                generation: AtomicU64::new(generation),
                snapshots_written: AtomicU64::new(0),
                checkpoint_lock: Mutex::new(()),
                report,
                error_ctx,
            }),
            journals,
        ))
    }

    pub(crate) fn report(&self) -> &RecoveryReport {
        &self.report
    }

    pub(crate) fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Route WAL write failures to the deployment's error log (§4.4
    /// log-and-alert); called once the error log exists.
    pub(crate) fn set_error_log(&self, errorlog: Arc<ErrorLog>, dir: Arc<dyn Directory>) {
        *self.error_ctx.lock() = Some((errorlog, dir));
    }

    fn wal(&self) -> Arc<Wal> {
        self.wal.lock().clone()
    }

    /// Append a record to the current segment without waiting for
    /// durability — the async half of group commit. The gateway's
    /// after-trigger runs [`Durability::commit_barrier`] on the client
    /// thread before the update call returns, so UM workers never park in
    /// an fsync wait and concurrent commits coalesce into large batches.
    /// Failures degrade durability, not availability: they are counted and
    /// alerted by the WAL's sink, and the in-memory commit stands.
    fn append(&self, tag: u8, payload: &[u8]) {
        let wal = self.wal();
        let _ = wal.append_nowait(tag, payload);
        // A checkpoint may have synced this segment and swapped in its
        // successor between the clone above and the write — in which case
        // the frame landed in the old segment *after* its final sync, and
        // the client's commit_barrier would sync only the new one. Re-check
        // after the write: if the segment changed, sync the one we wrote
        // inline so acknowledged still implies durable. (If the re-check
        // still sees our segment, the swap — and the checkpoint's sync —
        // strictly follow our write, which they therefore cover.)
        if self.policy != FsyncPolicy::Never && !Arc::ptr_eq(&wal, &self.wal()) {
            let _ = wal.sync();
        }
    }

    /// Block until everything appended so far is on stable storage (group
    /// policy only — Always synced inline, Never opted out). Runs on the
    /// client thread after its update completes: the client's own records
    /// were appended before the UM replied, so the barrier covers them.
    pub(crate) fn commit_barrier(&self) {
        if self.policy == FsyncPolicy::Group {
            // Errors are counted and alerted by the WAL's sink.
            let _ = self.wal().sync();
        }
    }

    /// Observe every DIT commit into the log. The observer runs before the
    /// client's update call returns (Dit::emit is synchronous), so with the
    /// after-trigger barrier an acknowledged update is on stable storage
    /// under Always/Group.
    pub(crate) fn attach(self: &Arc<Self>, dit: &Arc<Dit>) {
        let dur = self.clone();
        dit.observe(move |rec| {
            dur.append(backup::TAG_DIT_CHANGE, &backup::wal_payload(rec));
        });
    }

    /// Write a consistent checkpoint and bound the log: rotate to a new
    /// segment, re-log outage-journal state, export + write the snapshot,
    /// prune generations older than the previous snapshot.
    pub(crate) fn checkpoint(
        &self,
        dit: &Dit,
        runtimes: &HashMap<String, Arc<DeviceRuntime>>,
    ) -> Result<()> {
        let _only_one = self.checkpoint_lock.lock();
        let generation = self.generation.load(Ordering::SeqCst) + 1;
        let new_wal = Wal::open_with_stats(
            &self.store.wal_path(generation),
            self.policy,
            self.wal_stats.clone(),
        )?;
        install_error_sink(&new_wal, &self.error_ctx);
        {
            // Swap under the wal lock: appenders racing the swap land in
            // either segment; their DIT records carry commit sequences ≤
            // the export below (old segment) or replay idempotently by
            // sequence guard (new segment), and journal events re-reduce.
            let mut w = self.wal.lock();
            let _ = w.sync();
            *w = new_wal;
        }
        self.generation.store(generation, Ordering::SeqCst);
        // Journal state must not depend on pruned history: re-log every
        // device's backlog into the fresh segment. Recovery dedupes by
        // ticket, so events racing this snapshot are harmless.
        let mut names: Vec<&String> = runtimes.keys().collect();
        names.sort();
        for name in names {
            let (ops, overflowed) = runtimes[name].journal_snapshot();
            self.append(
                TAG_JOURNAL_STATE,
                &encode_journal_state(name, overflowed, &ops),
            );
        }
        // Streamed on the compact backing: the export never materializes
        // (one entry of LDIF text in memory at a time).
        self.store.write_snapshot_streamed(dit, generation)?;
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        // Keep the newest two snapshots (torn-write fallback) and every
        // segment from the older one forward.
        let snaps = self.store.snapshot_generations();
        if snaps.len() >= 2 {
            self.store.prune_below(snaps[snaps.len() - 2]);
        }
        Ok(())
    }

    /// Force the current segment to stable storage (shutdown path).
    pub(crate) fn sync(&self) {
        let _ = self.wal().sync();
    }

    /// Register the `durability` component in `cn=monitor`.
    pub(crate) fn register_metrics(self: &Arc<Self>, registry: &Registry) {
        let comp = registry.component("durability");
        let s = self.wal_stats.clone();
        comp.gauge_callback("walAppends", move || {
            s.appends.load(Ordering::Relaxed) as i64
        });
        let s = self.wal_stats.clone();
        comp.gauge_callback("walBytes", move || s.bytes.load(Ordering::Relaxed) as i64);
        let s = self.wal_stats.clone();
        comp.gauge_callback("walFsyncs", move || s.fsyncs.load(Ordering::Relaxed) as i64);
        let s = self.wal_stats.clone();
        comp.gauge_callback("walWriteErrors", move || {
            s.write_errors.load(Ordering::Relaxed) as i64
        });
        let d = self.clone();
        comp.gauge_callback("walSegmentBytes", move || d.wal().len_bytes() as i64);
        let d = self.clone();
        comp.gauge_callback("generation", move || {
            d.generation.load(Ordering::SeqCst) as i64
        });
        let d = self.clone();
        comp.gauge_callback("snapshots", move || {
            d.snapshots_written.load(Ordering::Relaxed) as i64
        });
        let r = self.report.clone();
        comp.gauge_callback("recoveredSnapshotEntries", move || {
            r.snapshot_entries as i64
        });
        let r = self.report.clone();
        comp.gauge_callback("recoveredWalRecords", move || r.wal_records_applied as i64);
        let r = self.report.clone();
        comp.gauge_callback("recoveredJournalOps", move || r.journal_ops as i64);
        let r = self.report.clone();
        comp.gauge_callback("recoveryReplayMicros", move || r.replay_micros as i64);
    }
}

fn install_error_sink(wal: &Arc<Wal>, ctx: &ErrorCtx) {
    let ctx = ctx.clone();
    wal.set_error_sink(move |msg| {
        if let Some((log, dir)) = ctx.lock().as_ref() {
            log.log(dir.as_ref(), 0, msg, "wal write failure");
        }
    });
}

/// The outage journal mirrors into the log through this sink; callbacks
/// arrive OUTSIDE the runtime's inner lock (see [`JournalSink`]) and
/// recovery reconciles by ticket.
impl JournalSink for Durability {
    fn pushed(&self, device: &str, ticket: u64, op: &TargetOp, dn: Option<&Dn>) {
        let mut buf = Vec::new();
        put_str(&mut buf, device);
        buf.extend_from_slice(&ticket.to_le_bytes());
        put_opt_str(&mut buf, dn.map(|d| d.to_string()).as_deref());
        put_target_op(&mut buf, op);
        self.append(TAG_JOURNAL_PUSH, &buf);
    }

    fn discarded(&self, device: &str, tickets: &[u64]) {
        let mut buf = Vec::new();
        put_str(&mut buf, device);
        buf.extend_from_slice(&(tickets.len() as u32).to_le_bytes());
        for t in tickets {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        self.append(TAG_JOURNAL_DISCARD, &buf);
    }

    fn popped(&self, device: &str, ticket: u64) {
        let mut buf = Vec::new();
        put_str(&mut buf, device);
        buf.extend_from_slice(&ticket.to_le_bytes());
        self.append(TAG_JOURNAL_POP, &buf);
    }

    fn overflowed(&self, device: &str) {
        let mut buf = Vec::new();
        put_str(&mut buf, device);
        self.append(TAG_JOURNAL_OVERFLOW, &buf);
    }

    fn cleared(&self, device: &str, below: u64) {
        let mut buf = Vec::new();
        put_str(&mut buf, device);
        buf.extend_from_slice(&below.to_le_bytes());
        self.append(TAG_JOURNAL_CLEARED, &buf);
    }
}

/// Fold one journal WAL record into the per-device reduction.
fn reduce_journal_event(
    journals: &mut HashMap<String, RecoveredJournal>,
    tag: u8,
    payload: &[u8],
) -> std::result::Result<(), String> {
    let mut r = Reader {
        bytes: payload,
        at: 0,
    };
    let device = r.str()?;
    let j = journals.entry(device).or_default();
    match tag {
        TAG_JOURNAL_PUSH => {
            let ticket = r.u64()?;
            let dn = match r.opt_str()? {
                Some(s) => Some(Dn::parse(&s).map_err(|e| e.to_string())?),
                None => None,
            };
            let op = r.target_op()?;
            j.ops.push((ticket, op, dn));
        }
        TAG_JOURNAL_DISCARD => {
            let n = r.u32()?;
            let mut tickets = Vec::with_capacity(n as usize);
            for _ in 0..n {
                tickets.push(r.u64()?);
            }
            j.ops.retain(|(t, _, _)| !tickets.contains(t));
        }
        TAG_JOURNAL_POP => {
            let ticket = r.u64()?;
            j.ops.retain(|(t, _, _)| *t != ticket);
        }
        TAG_JOURNAL_OVERFLOW => {
            j.ops.clear();
            j.overflowed = true;
        }
        TAG_JOURNAL_CLEARED => {
            // Only ops below the event's ticket high-water are resolved: a
            // push racing an immediate relapse can land in the log ahead of
            // this event, and its (higher) ticket must survive. Records
            // without the mark clear everything, the pre-mark semantics.
            let below = r.u64().unwrap_or(u64::MAX);
            j.ops.retain(|(t, _, _)| *t >= below);
            j.overflowed = false;
        }
        TAG_JOURNAL_STATE => {
            j.overflowed = r.u8()? != 0;
            let n = r.u32()?;
            let mut ops = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let ticket = r.u64()?;
                let dn = match r.opt_str()? {
                    Some(s) => Some(Dn::parse(&s).map_err(|e| e.to_string())?),
                    None => None,
                };
                ops.push((ticket, r.target_op()?, dn));
            }
            j.ops = ops;
        }
        // Unknown tag: a future version's record. Skip, don't fail —
        // forward compatibility matters more than completeness here.
        _ => {}
    }
    Ok(())
}

fn encode_journal_state(
    device: &str,
    overflowed: bool,
    ops: &[(u64, TargetOp, Option<Dn>)],
) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, device);
    buf.push(overflowed as u8);
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for (ticket, op, dn) in ops {
        buf.extend_from_slice(&ticket.to_le_bytes());
        put_opt_str(&mut buf, dn.as_ref().map(|d| d.to_string()).as_deref());
        put_target_op(&mut buf, op);
    }
    buf
}

fn ldap_decode_error(what: String) -> ldap::LdapError {
    ldap::LdapError::new(
        ldap::ResultCode::Other,
        format!("journal wal record: {what}"),
    )
}

// --- binary codec -----------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
    }
}

fn put_image(buf: &mut Vec<u8>, img: &Image) {
    let pairs: Vec<(&str, &[String])> = img.iter().collect();
    buf.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (name, values) in pairs {
        put_str(buf, name);
        buf.extend_from_slice(&(values.len() as u32).to_le_bytes());
        for v in values {
            put_str(buf, v);
        }
    }
}

fn put_target_op(buf: &mut Vec<u8>, op: &TargetOp) {
    buf.push(match op.kind {
        OpKind::Add => 0,
        OpKind::Modify => 1,
        OpKind::Delete => 2,
        OpKind::Skip => 3,
    });
    buf.push(op.conditional as u8);
    put_opt_str(buf, op.old_key.as_deref());
    put_opt_str(buf, op.new_key.as_deref());
    put_image(buf, &op.attrs);
    put_image(buf, &op.old_attrs);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|e| *e <= self.bytes.len());
        let end = end.ok_or_else(|| "truncated record".to_string())?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> std::result::Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> std::result::Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> std::result::Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> std::result::Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "non-UTF8 string".to_string())
    }

    fn opt_str(&mut self) -> std::result::Result<Option<String>, String> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.str()?)),
        }
    }

    fn image(&mut self) -> std::result::Result<Image, String> {
        let n = self.u32()?;
        let mut img = Image::new();
        for _ in 0..n {
            let name = self.str()?;
            let n_values = self.u32()?;
            let mut values = Vec::with_capacity(n_values as usize);
            for _ in 0..n_values {
                values.push(self.str()?);
            }
            img.set(name, values);
        }
        Ok(img)
    }

    fn target_op(&mut self) -> std::result::Result<TargetOp, String> {
        let kind = match self.u8()? {
            0 => OpKind::Add,
            1 => OpKind::Modify,
            2 => OpKind::Delete,
            3 => OpKind::Skip,
            k => return Err(format!("unknown op kind {k}")),
        };
        Ok(TargetOp {
            kind,
            conditional: self.u8()? != 0,
            old_key: self.opt_str()?,
            new_key: self.opt_str()?,
            attrs: self.image()?,
            old_attrs: self.image()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_op() -> TargetOp {
        let mut attrs = Image::new();
        attrs.set("ext", vec!["9123".into()]);
        attrs.set("name", vec!["John Doe".into(), "J. Doe".into()]);
        let mut old = Image::new();
        old.set("ext", vec!["9000".into()]);
        TargetOp {
            kind: OpKind::Modify,
            conditional: true,
            old_key: Some("9000".into()),
            new_key: Some("9123".into()),
            attrs,
            old_attrs: old,
        }
    }

    #[test]
    fn target_op_codec_round_trip() {
        let op = sample_op();
        let mut buf = Vec::new();
        put_target_op(&mut buf, &op);
        let mut r = Reader { bytes: &buf, at: 0 };
        let back = r.target_op().unwrap();
        assert_eq!(back, op);
        assert_eq!(r.at, buf.len(), "codec consumes exactly its bytes");
        // Every truncation fails cleanly, never panics.
        for cut in 0..buf.len() {
            let mut r = Reader {
                bytes: &buf[..cut],
                at: 0,
            };
            assert!(r.target_op().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn journal_reduction_push_pop_discard() {
        let mut journals = HashMap::new();
        let dur_push = |journals: &mut HashMap<String, RecoveredJournal>, ticket: u64| {
            let mut buf = Vec::new();
            put_str(&mut buf, "pbx-west");
            buf.extend_from_slice(&ticket.to_le_bytes());
            put_opt_str(&mut buf, Some("cn=J,o=L"));
            put_target_op(&mut buf, &sample_op());
            reduce_journal_event(journals, TAG_JOURNAL_PUSH, &buf).unwrap();
        };
        for t in 1..=4u64 {
            dur_push(&mut journals, t);
        }
        // Discard 2, pop 1.
        let mut buf = Vec::new();
        put_str(&mut buf, "pbx-west");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        reduce_journal_event(&mut journals, TAG_JOURNAL_DISCARD, &buf).unwrap();
        let mut buf = Vec::new();
        put_str(&mut buf, "pbx-west");
        buf.extend_from_slice(&1u64.to_le_bytes());
        reduce_journal_event(&mut journals, TAG_JOURNAL_POP, &buf).unwrap();

        let j = &journals["pbx-west"];
        let tickets: Vec<u64> = j.ops.iter().map(|(t, _, _)| *t).collect();
        assert_eq!(tickets, vec![3, 4]);
        assert!(!j.overflowed);

        // STATE replaces everything.
        let state = encode_journal_state("pbx-west", false, &j.ops[..1]);
        reduce_journal_event(&mut journals, TAG_JOURNAL_STATE, &state).unwrap();
        assert_eq!(journals["pbx-west"].ops.len(), 1);

        // Overflow clears and flags.
        let mut buf = Vec::new();
        put_str(&mut buf, "pbx-west");
        reduce_journal_event(&mut journals, TAG_JOURNAL_OVERFLOW, &buf).unwrap();
        assert!(journals["pbx-west"].ops.is_empty());
        assert!(journals["pbx-west"].overflowed);
    }

    #[test]
    fn cleared_resolves_only_ops_below_its_high_water() {
        let mut journals = HashMap::new();
        let push = |journals: &mut HashMap<String, RecoveredJournal>, ticket: u64| {
            let mut buf = Vec::new();
            put_str(&mut buf, "pbx-east");
            buf.extend_from_slice(&ticket.to_le_bytes());
            put_opt_str(&mut buf, None);
            put_target_op(&mut buf, &sample_op());
            reduce_journal_event(journals, TAG_JOURNAL_PUSH, &buf).unwrap();
        };
        push(&mut journals, 1);
        push(&mut journals, 2);
        // The device relapsed right after draining: op 3 was queued after
        // the Up transition and its pushed event raced ahead of the
        // drain's cleared event into the log.
        push(&mut journals, 3);
        let mut buf = Vec::new();
        put_str(&mut buf, "pbx-east");
        buf.extend_from_slice(&3u64.to_le_bytes());
        reduce_journal_event(&mut journals, TAG_JOURNAL_CLEARED, &buf).unwrap();
        let tickets: Vec<u64> = journals["pbx-east"]
            .ops
            .iter()
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(tickets, vec![3], "racing post-clear push survives");

        // A mark-less cleared record (pre-high-water format) clears all.
        let mut buf = Vec::new();
        put_str(&mut buf, "pbx-east");
        reduce_journal_event(&mut journals, TAG_JOURNAL_CLEARED, &buf).unwrap();
        assert!(journals["pbx-east"].ops.is_empty());
    }
}
